//! The ForkBase data-access API: keys, branches, versions, and the verb
//! set of the paper's API layer (Fig. 1), organized in four layers:
//!
//! * [`mod@self`] — the [`ForkBase`] engine itself: branch-head state, the
//!   striped commit locks, the GC gate, and ref persistence;
//! * [`verbs`] — the Git-like verb set (`Put Get List Branch Merge Select
//!   Stat Export Diff Head Rename Latest Meta`);
//! * [`snapshot`] — [`Snapshot`]: an immutable, cheaply-clonable view of
//!   one version, the basis every read verb is built on;
//! * [`cursor_ext`] — streaming reads ([`MapRange`], [`ListStream`],
//!   [`BlobReader`]) that scan large values in O(chunk) memory;
//! * [`batch`] — [`WriteBatch`]: atomic multi-key commits.
//!
//! # Model
//!
//! * every **key** names an object;
//! * a key has one or more **branches**; each branch has a mutable *head*
//!   pointing at an immutable **version** (an [`FNode`] in the chunk
//!   store, identified by its tamper-evident uid);
//! * `Put` appends a version to a branch (bases = previous head);
//! * `Merge` joins two branches with a three-way POS-Tree merge, creating
//!   a version with two bases;
//! * branch heads are the only mutable state — everything else is
//!   immutable and content-addressed, exactly like Git refs vs objects.

pub mod batch;
pub mod cursor_ext;
pub mod snapshot;
pub mod verbs;

pub use batch::{BatchOutcome, WriteBatch};
pub use cursor_ext::{BlobReader, ListStream, MapRange};
pub use snapshot::Snapshot;
pub use verbs::ValueDiff;

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use forkbase_postree::{TreeConfig, TreeRef};
use forkbase_store::{ChunkStore, StoreStats, SweepStore};
use forkbase_types::{Value, ValueType};
use parking_lot::{Mutex, RwLock};

use crate::error::{DbError, DbResult};
use crate::fnode::{FNode, Uid};

/// The branch created implicitly by the first `Put` on a key.
pub const DEFAULT_BRANCH: &str = "master";

/// Options accompanying a `Put`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PutOptions {
    /// Target branch (created implicitly if absent).
    pub branch: String,
    /// Author recorded in the FNode.
    pub author: String,
    /// Commit message recorded in the FNode.
    pub message: String,
}

impl Default for PutOptions {
    fn default() -> Self {
        PutOptions {
            branch: DEFAULT_BRANCH.to_string(),
            author: "anonymous".to_string(),
            message: String::new(),
        }
    }
}

impl PutOptions {
    /// Options targeting `branch` with default author/message.
    #[must_use = "builds options by value; assign or pass the result"]
    pub fn on_branch(branch: impl Into<String>) -> Self {
        PutOptions {
            branch: branch.into(),
            ..Default::default()
        }
    }

    /// Set the author.
    #[must_use = "returns the modified options; the original is consumed"]
    pub fn author(mut self, author: impl Into<String>) -> Self {
        self.author = author.into();
        self
    }

    /// Set the commit message.
    #[must_use = "returns the modified options; the original is consumed"]
    pub fn message(mut self, message: impl Into<String>) -> Self {
        self.message = message.into();
        self
    }
}

/// Result of a successful commit (`Put` or `Merge`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitResult {
    /// The new version's uid.
    pub uid: Uid,
    /// The branch whose head now points at `uid`.
    pub branch: String,
}

/// Result of a `Get`.
#[derive(Clone, Debug, PartialEq)]
pub struct GetResult {
    /// The value at the requested version.
    pub value: Value,
    /// The version uid it came from.
    pub uid: Uid,
}

/// Identifies a version: by branch head or explicitly by uid.
///
/// The default is the head of [`DEFAULT_BRANCH`] (`master`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VersionSpec {
    /// The head of a branch.
    Branch(String),
    /// An explicit version uid.
    Version(Uid),
}

impl Default for VersionSpec {
    fn default() -> Self {
        VersionSpec::Branch(DEFAULT_BRANCH.to_string())
    }
}

impl VersionSpec {
    /// Convenience constructor from a branch name.
    #[must_use = "builds a spec by value; assign or pass the result"]
    pub fn branch(name: impl Into<String>) -> Self {
        VersionSpec::Branch(name.into())
    }
}

/// A branch and its current head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchInfo {
    /// Branch name.
    pub name: String,
    /// Head version uid.
    pub head: Uid,
}

/// One entry of a version history walk.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryEntry {
    /// Version uid.
    pub uid: Uid,
    /// Author recorded at commit time.
    pub author: String,
    /// Commit message.
    pub message: String,
    /// Logical commit counter.
    pub logical_time: u64,
    /// Parent uids.
    pub bases: Vec<Uid>,
    /// Type of the value at this version.
    pub value_type: ValueType,
}

/// Database statistics (the `Stat` verb).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbStat {
    /// Number of keys.
    pub keys: u64,
    /// Total branches across keys.
    pub branches: u64,
    /// Chunk-store counters.
    pub store: StoreStats,
}

impl std::fmt::Display for DbStat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "keys:          {}", self.keys)?;
        writeln!(f, "branches:      {}", self.branches)?;
        write!(f, "{}", self.store)
    }
}

/// Number of striped head locks. Power of two and comfortably above the
/// bench thread counts, so commits to distinct (key, branch) pairs rarely
/// share a stripe.
const HEAD_STRIPES: usize = 64;

/// The ForkBase database engine.
///
/// Generic over the chunk store so the same engine runs on [`forkbase_store::MemStore`],
/// [`forkbase_store::FileStore`], or any custom backend.
///
/// # Concurrency model
///
/// * A commit's head read-modify-write holds one of `HEAD_STRIPES` (64)
///   striped locks, selected by hashing `(key, branch)`. Commits to
///   different keys or branches proceed in parallel; commits to the same
///   branch serialize, which is what makes each branch a linear chain.
/// * Merges and [`WriteBatch`] commits lock the stripes of every touched
///   branch in stripe-index order, so crossing multi-stripe writers cannot
///   deadlock.
/// * Every mutating verb holds the GC gate shared; [`crate::gc::collect`]
///   holds it exclusive, so mark-and-sweep sees quiescent heads and never
///   races an in-flight commit's freshly written chunks.
pub struct ForkBase<S> {
    pub(crate) store: S,
    pub(crate) cfg: TreeConfig,
    /// key → branch → head uid. The only mutable state.
    pub(crate) branches: RwLock<HashMap<String, BTreeMap<String, Uid>>>,
    /// Monotone logical clock stamped into FNodes.
    pub(crate) clock: AtomicU64,
    /// Striped per-(key, branch) commit locks (head read-modify-write).
    pub(crate) head_locks: Vec<Mutex<()>>,
    /// Commits and ref updates hold this shared; GC holds it exclusive.
    pub(crate) gc_gate: RwLock<()>,
}

impl<S: ChunkStore> ForkBase<S> {
    /// Open a database over `store` with default chunking.
    pub fn new(store: S) -> Self {
        Self::with_config(store, TreeConfig::default_config())
    }

    /// Open with explicit chunking configuration.
    pub fn with_config(store: S, cfg: TreeConfig) -> Self {
        ForkBase {
            store,
            cfg,
            branches: RwLock::new(HashMap::new()),
            clock: AtomicU64::new(1),
            head_locks: (0..HEAD_STRIPES).map(|_| Mutex::new(())).collect(),
            gc_gate: RwLock::new(()),
        }
    }

    /// The stripe guarding the head of `(key, branch)`.
    pub(crate) fn head_stripe(key: &str, branch: &str) -> usize {
        use std::hash::{Hash as _, Hasher as _};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        branch.hash(&mut h);
        h.finish() as usize % HEAD_STRIPES
    }

    /// Block all mutating verbs for the guard's lifetime. Used by GC so the
    /// mark phase sees quiescent heads and no commit can publish chunks
    /// between mark and sweep.
    pub(crate) fn gc_exclusive(&self) -> parking_lot::RwLockWriteGuard<'_, ()> {
        self.gc_gate.write()
    }

    /// Hold the GC gate shared for a multi-step write sequence (e.g. bundle
    /// import: store chunks, verify, install refs). While held, a concurrent
    /// [`crate::gc::collect`] cannot sweep the not-yet-referenced chunks.
    ///
    /// The gate is NOT re-entrant: while holding this guard call only verbs
    /// that do not themselves take the gate (`install_ref`, read verbs).
    pub(crate) fn gc_shared(&self) -> parking_lot::RwLockReadGuard<'_, ()> {
        self.gc_gate.read()
    }

    /// The underlying chunk store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// The chunking configuration.
    pub fn config(&self) -> TreeConfig {
        self.cfg
    }

    pub(crate) fn validate_name(kind: &str, name: &str) -> DbResult<()> {
        if name.is_empty() {
            return Err(DbError::InvalidInput(format!("{kind} must not be empty")));
        }
        if name.len() > 4096 {
            return Err(DbError::InvalidInput(format!("{kind} too long")));
        }
        Ok(())
    }

    /// Resolve a [`VersionSpec`] against a key.
    pub fn resolve(&self, key: &str, spec: &VersionSpec) -> DbResult<Uid> {
        match spec {
            VersionSpec::Branch(b) => self.head(key, b),
            VersionSpec::Version(u) => Ok(*u),
        }
    }

    /// `Head`: the uid a branch currently points at.
    pub fn head(&self, key: &str, branch: &str) -> DbResult<Uid> {
        let branches = self.branches.read();
        let key_branches = branches
            .get(key)
            .ok_or_else(|| DbError::NoSuchKey(key.to_string()))?;
        key_branches
            .get(branch)
            .copied()
            .ok_or_else(|| DbError::NoSuchBranch {
                key: key.to_string(),
                branch: branch.to_string(),
            })
    }

    /// Read several branch heads under one consistent view of the ref
    /// table: the returned uids all coexisted at a single instant, so a
    /// concurrent [`WriteBatch::commit`] is observed either entirely or
    /// not at all — never torn across keys.
    pub fn heads(&self, pairs: &[(&str, &str)]) -> DbResult<Vec<Uid>> {
        let branches = self.branches.read();
        pairs
            .iter()
            .map(|(key, branch)| {
                branches
                    .get(*key)
                    .ok_or_else(|| DbError::NoSuchKey(key.to_string()))?
                    .get(*branch)
                    .copied()
                    .ok_or_else(|| DbError::NoSuchBranch {
                        key: key.to_string(),
                        branch: branch.to_string(),
                    })
            })
            .collect()
    }

    /// `Latest`: every branch head of a key.
    pub fn latest(&self, key: &str) -> DbResult<Vec<BranchInfo>> {
        let branches = self.branches.read();
        let key_branches = branches
            .get(key)
            .ok_or_else(|| DbError::NoSuchKey(key.to_string()))?;
        Ok(key_branches
            .iter()
            .map(|(name, head)| BranchInfo {
                name: name.clone(),
                head: *head,
            })
            .collect())
    }

    /// `List`: all keys, sorted.
    pub fn list_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.branches.read().keys().cloned().collect();
        keys.sort();
        keys
    }

    /// All branches of a key, sorted by name.
    pub fn list_branches(&self, key: &str) -> DbResult<Vec<BranchInfo>> {
        self.latest(key)
    }

    /// `Stat`: database and store statistics.
    pub fn stat(&self) -> DbStat {
        let branches = self.branches.read();
        DbStat {
            keys: branches.len() as u64,
            branches: branches.values().map(|b| b.len() as u64).sum(),
            store: self.store.stats(),
        }
    }

    /// Run a full garbage-collection pass: mark every chunk reachable from
    /// a branch head, sweep the rest, and — on segmented stores like
    /// [`forkbase_store::FileStore`] — physically compact low-utilization
    /// segments so the reclaimed bytes are returned to the operating
    /// system. Stops the world for writers (see [`crate::gc::collect`]);
    /// readers keep running. The report includes reclaimed chunk/byte
    /// counts and the on-disk footprint before and after.
    pub fn gc(&self) -> DbResult<crate::gc::GcReport>
    where
        S: SweepStore,
    {
        crate::gc::collect(self)
    }

    /// Advance the logical clock past `time` (no-op if already ahead).
    /// Bundle import and refs loading call this so commits made after
    /// adopting external history are never stamped earlier than it.
    pub(crate) fn bump_clock_past(&self, time: u64) {
        self.clock.fetch_max(time + 1, Ordering::Relaxed);
    }

    /// Drop every branch ref of `key` in one step. Used by cluster
    /// rebalance after a key's full history has been imported (and
    /// verified) on its new owner servelet; the versions remain as
    /// unreferenced chunks until the next [`crate::gc::collect`].
    pub(crate) fn forget_key(&self, key: &str) {
        let _gc = self.gc_gate.read();
        self.branches.write().remove(key);
    }

    /// Install a branch ref directly (bundle import). The caller must have
    /// verified that `uid` resolves to a valid FNode of `key`, and must
    /// already hold the GC gate ([`Self::gc_shared`]) so the chunks backing
    /// `uid` cannot be swept before the ref is published.
    pub(crate) fn install_ref(&self, key: &str, branch: &str, uid: Uid) -> DbResult<()> {
        Self::validate_name("key", key)?;
        Self::validate_name("branch", branch)?;
        self.branches
            .write()
            .entry(key.to_string())
            .or_default()
            .insert(branch.to_string(), uid);
        Ok(())
    }

    /// Replace **every** branch ref of `key` with exactly `refs` in one
    /// atomic step (replication import: a replica's branch set must mirror
    /// its primary's, including branches the primary deleted). Same caller
    /// contract as [`Self::install_ref`]: every uid verified, GC gate held.
    pub(crate) fn replace_key_refs(&self, key: &str, refs: Vec<(String, Uid)>) -> DbResult<()> {
        Self::validate_name("key", key)?;
        let mut set = BTreeMap::new();
        for (branch, uid) in refs {
            Self::validate_name("branch", &branch)?;
            set.insert(branch, uid);
        }
        self.branches.write().insert(key.to_string(), set);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Ref persistence (CLI / restart support)
    // ------------------------------------------------------------------

    /// Serialize all branch heads as stable text (`key\tbranch\tuid_hex`
    /// lines, sorted). Branch heads are the only mutable state, so this
    /// plus the chunk store is a complete database image.
    pub fn dump_refs(&self) -> String {
        let branches = self.branches.read();
        let mut keys: Vec<&String> = branches.keys().collect();
        keys.sort();
        let mut out = String::new();
        for key in keys {
            for (branch, head) in &branches[key] {
                out.push_str(key);
                out.push('\t');
                out.push_str(branch);
                out.push('\t');
                out.push_str(&head.to_hex());
                out.push('\n');
            }
        }
        out
    }

    /// Restore branch heads from [`Self::dump_refs`] output. Each head is
    /// validated to exist in the chunk store (a malicious/corrupt refs
    /// file cannot point at garbage silently). Also advances the logical
    /// clock past every referenced commit.
    pub fn load_refs(&self, text: &str) -> DbResult<()> {
        // Hold the GC gate across validation AND installation: a collector
        // running in the gap could sweep the (still unreferenced) FNodes
        // this refs file points at, leaving dangling refs.
        let _gc = self.gc_gate.read();
        let mut parsed: Vec<(String, String, Uid)> = Vec::new();
        let mut max_time = 0u64;
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (Some(key), Some(branch), Some(hex)) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(DbError::InvalidInput(format!(
                    "refs line {} is malformed",
                    i + 1
                )));
            };
            let uid = Uid::from_hex(hex)
                .ok_or_else(|| DbError::InvalidInput(format!("refs line {}: bad uid", i + 1)))?;
            let fnode = FNode::load(&self.store, &uid)?;
            if fnode.key != key {
                return Err(DbError::TamperDetected(format!(
                    "refs line {}: uid belongs to key {:?}, not {key:?}",
                    i + 1,
                    fnode.key
                )));
            }
            max_time = max_time.max(fnode.logical_time);
            parsed.push((key.to_string(), branch.to_string(), uid));
        }
        let mut branches = self.branches.write();
        for (key, branch, uid) in parsed {
            branches.entry(key).or_default().insert(branch, uid);
        }
        self.clock.fetch_max(max_time + 1, Ordering::Relaxed);
        Ok(())
    }
}

/// The map/set tree reference inside a value, or a type-mismatch error.
pub(crate) fn expect_map(value: &Value) -> DbResult<TreeRef> {
    match value {
        Value::Map(t) | Value::Set(t) => Ok(*t),
        other => Err(DbError::TypeMismatch {
            expected: "map or set",
            found: other.value_type().name(),
        }),
    }
}

/// Wrap an I/O error from an export sink as a store error.
pub(crate) fn store_io(e: std::io::Error) -> DbError {
    DbError::Store(forkbase_store::StoreError::Io(e))
}
