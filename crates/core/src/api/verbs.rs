//! The Git-like verb set of the paper's API layer (Fig. 1):
//! `Put Get List Branch Merge Select Stat Export Diff Head Rename Latest
//! Meta`.
//!
//! Since PR 4, every read verb here is a thin wrapper: point reads resolve
//! a [`Snapshot`](super::Snapshot) and delegate, and scans
//! (`map_entries`, `map_select`, `list_elements`, `blob_read`) drive the
//! streaming cursors of [`super::cursor_ext`], so they share one code path
//! with [`Snapshot::map_range`](super::Snapshot::map_range),
//! [`Snapshot::list_iter`](super::Snapshot::list_iter), and
//! [`Snapshot::blob_reader`](super::Snapshot::blob_reader). Signatures and
//! behavior are unchanged from the pre-snapshot API.

use std::collections::{HashSet, VecDeque};
use std::io::Write;
use std::sync::atomic::Ordering;

use bytes::Bytes;
use forkbase_postree::diff::diff_maps;
use forkbase_postree::merge::{merge_maps, MergePolicy};
use forkbase_postree::{MapDiff, MapEdit, PosBlob, PosList, PosMap};
use forkbase_store::ChunkStore;
use forkbase_types::Value;

use super::{cursor_ext, expect_map};
use super::{CommitResult, ForkBase, GetResult, HistoryEntry, PutOptions, VersionSpec};
use crate::error::{DbError, DbResult};
use crate::fnode::{FNode, Uid};

/// Differences between two versions of a key.
#[derive(Clone, Debug)]
pub enum ValueDiff {
    /// The versions hold identical values.
    Identical,
    /// Primitive (or type-changed) values; shown whole.
    Primitive {
        /// Value on the "from" side.
        from: Value,
        /// Value on the "to" side.
        to: Value,
    },
    /// Entry-level differences of map/set values.
    Map(MapDiff),
    /// Chunk-level similarity summary of blob/list values.
    Chunked {
        /// Byte (blob) or element (list) count on the "from" side.
        from_len: u64,
        /// Byte or element count on the "to" side.
        to_len: u64,
        /// Chunks of "from" also present in "to".
        shared_chunks: u64,
        /// Bytes of "from" shared with "to".
        shared_bytes: u64,
        /// Total chunks on the "from" side.
        from_chunks: u64,
        /// Total chunks on the "to" side.
        to_chunks: u64,
    },
}

impl ValueDiff {
    /// Whether the two versions were identical.
    pub fn is_identical(&self) -> bool {
        matches!(self, ValueDiff::Identical)
    }
}

impl<S: ChunkStore> ForkBase<S> {
    // ------------------------------------------------------------------
    // Core verbs
    // ------------------------------------------------------------------

    /// `Put`: commit `value` as the new head of `opts.branch`, creating the
    /// branch if needed. Returns the new version uid.
    ///
    /// Commits to distinct `(key, branch)` pairs proceed in parallel;
    /// commits to the same branch serialize on its head-lock stripe.
    pub fn put(&self, key: &str, value: Value, opts: &PutOptions) -> DbResult<CommitResult> {
        Self::validate_name("key", key)?;
        Self::validate_name("branch", &opts.branch)?;
        let _gc = self.gc_gate.read();
        self.put_inner(key, value, opts)
    }

    /// `put` minus validation and the GC gate (the caller holds it).
    pub(crate) fn put_inner(
        &self,
        key: &str,
        value: Value,
        opts: &PutOptions,
    ) -> DbResult<CommitResult> {
        let _head = self.head_locks[Self::head_stripe(key, &opts.branch)].lock();
        self.commit_locked(key, value, opts)
    }

    /// Append a version to `opts.branch`. The caller must hold the head
    /// stripe for `(key, opts.branch)` — that lock is what makes the
    /// read-head / store-FNode / advance-head sequence atomic per branch.
    fn commit_locked(&self, key: &str, value: Value, opts: &PutOptions) -> DbResult<CommitResult> {
        let bases = {
            let branches = self.branches.read();
            branches
                .get(key)
                .and_then(|b| b.get(&opts.branch))
                .map(|h| vec![*h])
                .unwrap_or_default()
        };
        let fnode = FNode {
            key: key.to_string(),
            value,
            bases,
            author: opts.author.clone(),
            message: opts.message.clone(),
            logical_time: self.clock.fetch_add(1, Ordering::Relaxed),
        };
        let uid = fnode.store(&self.store)?;
        self.branches
            .write()
            .entry(key.to_string())
            .or_default()
            .insert(opts.branch.clone(), uid);
        Ok(CommitResult {
            uid,
            branch: opts.branch.clone(),
        })
    }

    /// Compound commit: chunk `content` into a `Blob` value and commit it
    /// in one step. The whole pipeline — content-defined chunking, batched
    /// chunk stores, head update — runs under a single GC gate, so it is
    /// safe against a concurrent [`crate::gc::collect`], unlike a separate
    /// [`Self::new_blob_bytes`] + [`Self::put`] sequence.
    pub fn put_blob(&self, key: &str, content: Bytes, opts: &PutOptions) -> DbResult<CommitResult> {
        Self::validate_name("key", key)?;
        Self::validate_name("branch", &opts.branch)?;
        let _gc = self.gc_gate.read();
        let blob = PosBlob::new(&self.store, self.cfg);
        let value = Value::Blob(blob.write_bytes(content)?);
        self.put_inner(key, value, opts)
    }

    /// `Get`: the value at a branch head.
    pub fn get(&self, key: &str, branch: &str) -> DbResult<GetResult> {
        Ok(self
            .snapshot(key, &VersionSpec::Branch(branch.to_string()))?
            .into_get_result())
    }

    /// `Get` by explicit version uid (any historical version).
    pub fn get_version(&self, uid: &Uid) -> DbResult<GetResult> {
        Ok(self.snapshot_version(uid)?.into_get_result())
    }

    /// `Meta`: commit metadata of a version.
    pub fn meta(&self, uid: &Uid) -> DbResult<HistoryEntry> {
        Ok(self.snapshot_version(uid)?.meta())
    }

    /// `Branch`: create `new_branch` pointing at the head of `from_branch`.
    pub fn branch(&self, key: &str, from_branch: &str, new_branch: &str) -> DbResult<()> {
        Self::validate_name("branch", new_branch)?;
        let _gc = self.gc_gate.read();
        let head = self.head(key, from_branch)?;
        self.branch_from_version_inner(key, &head, new_branch)
    }

    /// `Branch` from an explicit historical version.
    pub fn branch_from_version(&self, key: &str, uid: &Uid, new_branch: &str) -> DbResult<()> {
        let _gc = self.gc_gate.read();
        self.branch_from_version_inner(key, uid, new_branch)
    }

    fn branch_from_version_inner(&self, key: &str, uid: &Uid, new_branch: &str) -> DbResult<()> {
        Self::validate_name("branch", new_branch)?;
        // The version must exist and belong to this key.
        let fnode = FNode::load(&self.store, uid)?;
        if fnode.key != key {
            return Err(DbError::InvalidInput(format!(
                "version {uid} belongs to key {:?}, not {key:?}",
                fnode.key
            )));
        }
        let mut branches = self.branches.write();
        let key_branches = branches
            .get_mut(key)
            .ok_or_else(|| DbError::NoSuchKey(key.to_string()))?;
        if key_branches.contains_key(new_branch) {
            return Err(DbError::BranchExists {
                key: key.to_string(),
                branch: new_branch.to_string(),
            });
        }
        key_branches.insert(new_branch.to_string(), *uid);
        Ok(())
    }

    /// `Rename`: rename a branch.
    pub fn rename_branch(&self, key: &str, old: &str, new: &str) -> DbResult<()> {
        Self::validate_name("branch", new)?;
        let _gc = self.gc_gate.read();
        let mut branches = self.branches.write();
        let key_branches = branches
            .get_mut(key)
            .ok_or_else(|| DbError::NoSuchKey(key.to_string()))?;
        if key_branches.contains_key(new) {
            return Err(DbError::BranchExists {
                key: key.to_string(),
                branch: new.to_string(),
            });
        }
        let head = key_branches
            .remove(old)
            .ok_or_else(|| DbError::NoSuchBranch {
                key: key.to_string(),
                branch: old.to_string(),
            })?;
        key_branches.insert(new.to_string(), head);
        Ok(())
    }

    /// Delete a branch (the versions remain; only the ref goes away).
    pub fn delete_branch(&self, key: &str, branch: &str) -> DbResult<()> {
        let _gc = self.gc_gate.read();
        let mut branches = self.branches.write();
        let key_branches = branches
            .get_mut(key)
            .ok_or_else(|| DbError::NoSuchKey(key.to_string()))?;
        key_branches
            .remove(branch)
            .ok_or_else(|| DbError::NoSuchBranch {
                key: key.to_string(),
                branch: branch.to_string(),
            })?;
        // Deleting the last branch deletes the key: a branchless key is
        // unreachable through every verb, and leaving the empty entry
        // would let high-churn branch users (the fork-sandbox reaper in
        // particular) grow `list_keys` with phantom names forever.
        if key_branches.is_empty() {
            branches.remove(key);
        }
        Ok(())
    }

    /// Walk history from a version, following first parents.
    pub fn history(&self, key: &str, spec: &VersionSpec) -> DbResult<Vec<HistoryEntry>> {
        let mut uid = self.resolve(key, spec)?;
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        loop {
            if !seen.insert(uid) {
                return Err(DbError::TamperDetected(format!(
                    "cycle in version history at {uid}"
                )));
            }
            let entry = self.meta(&uid)?;
            let next = entry.bases.first().copied();
            out.push(entry);
            match next {
                Some(parent) => uid = parent,
                None => break,
            }
        }
        Ok(out)
    }

    /// Produce a Merkle proof that `entry_key` maps to its value (or is
    /// absent) in the map value at `spec`. A light client holding only the
    /// version uid can check the result with [`ForkBase::verify_entry_proof`].
    pub fn prove_entry(
        &self,
        key: &str,
        spec: &VersionSpec,
        entry_key: &[u8],
    ) -> DbResult<(forkbase_postree::MerkleProof, Uid)> {
        let snap = self.snapshot(key, spec)?;
        let proof = snap.prove_entry(entry_key)?;
        Ok((proof, snap.uid()))
    }

    /// Light-client verification: given a trusted version `uid`, check an
    /// entry proof without trusting the store. Fetches only the FNode (hash
    /// checked against `uid`) and replays the proof against the value root.
    pub fn verify_entry_proof(
        &self,
        uid: &Uid,
        entry_key: &[u8],
        proof: &forkbase_postree::MerkleProof,
    ) -> DbResult<Option<Bytes>> {
        let fnode = FNode::load(&self.store, uid)?; // authenticated by uid
        let tree = expect_map(&fnode.value)?;
        forkbase_postree::verify_proof(&tree.root, entry_key, proof)
            .map_err(|e| DbError::TamperDetected(e.to_string()))
    }

    // ------------------------------------------------------------------
    // Collection value constructors and accessors
    // ------------------------------------------------------------------

    /// Build a `Map` value from key/value pairs.
    ///
    /// The returned value is unreferenced until committed with
    /// [`Self::put`]; if a concurrent [`crate::gc::collect`] may run, use a
    /// compound verb ([`Self::put_map_edits`], [`Self::put_blob`]) instead
    /// of a two-step construct-then-put (see README "Concurrency model").
    /// The same caveat applies to every `new_*` constructor below.
    pub fn new_map(&self, pairs: Vec<(Bytes, Bytes)>) -> DbResult<Value> {
        let map = PosMap::build_from_pairs(&self.store, self.cfg.node, pairs)?;
        Ok(Value::Map(map.tree()))
    }

    /// Build a `Set` value from members.
    pub fn new_set(&self, members: Vec<Bytes>) -> DbResult<Value> {
        let pairs = members.into_iter().map(|m| (m, Bytes::new())).collect();
        let map = PosMap::build_from_pairs(&self.store, self.cfg.node, pairs)?;
        Ok(Value::Set(map.tree()))
    }

    /// Build a `List` value from elements.
    pub fn new_list(&self, elements: Vec<Bytes>) -> DbResult<Value> {
        let list = PosList::build(&self.store, self.cfg.node, elements)?;
        Ok(Value::List(list.tree()))
    }

    /// Build a `Blob` value from raw content (copies once; prefer
    /// [`Self::new_blob_bytes`] when a `Bytes` is already at hand).
    pub fn new_blob(&self, content: &[u8]) -> DbResult<Value> {
        self.new_blob_bytes(Bytes::copy_from_slice(content))
    }

    /// Build a `Blob` value from shared content, zero-copy: every stored
    /// chunk is a slice view of `content`, and boundary detection uses the
    /// bulk scanner instead of the per-byte state machine.
    pub fn new_blob_bytes(&self, content: Bytes) -> DbResult<Value> {
        let blob = PosBlob::new(&self.store, self.cfg);
        Ok(Value::Blob(blob.write_bytes(content)?))
    }

    /// Look up one entry of a `Map` value.
    pub fn map_get(&self, value: &Value, entry_key: &[u8]) -> DbResult<Option<Bytes>> {
        let tree = expect_map(value)?;
        Ok(PosMap::open(&self.store, self.cfg.node, tree).get(entry_key)?)
    }

    /// All entries of a `Map` value (O(N) output; the scan itself streams
    /// through [`super::MapRange`] in O(chunk) working memory).
    pub fn map_entries(&self, value: &Value) -> DbResult<Vec<(Bytes, Bytes)>> {
        let tree = expect_map(value)?;
        cursor_ext::MapRange::open(&self.store, tree, None, None)?.collect()
    }

    /// `Select`: entries of a `Map` value with `start ≤ key < end`.
    pub fn map_select(
        &self,
        value: &Value,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> DbResult<Vec<(Bytes, Bytes)>> {
        let tree = expect_map(value)?;
        cursor_ext::MapRange::open(&self.store, tree, start, end)?.collect()
    }

    /// Apply edits to a `Map`/`Set` value, returning the updated value.
    /// Same GC caveat as [`Self::new_map`]: commit the result before a
    /// collector can run, or use [`Self::put_map_edits`].
    pub fn map_apply(&self, value: &Value, edits: Vec<MapEdit>) -> DbResult<Value> {
        let tree = expect_map(value)?;
        let updated = PosMap::open(&self.store, self.cfg.node, tree).apply(edits)?;
        Ok(match value {
            Value::Set(_) => Value::Set(updated.tree()),
            _ => Value::Map(updated.tree()),
        })
    }

    /// Read a whole `Blob` value (O(N) output; streams chunk-at-a-time
    /// through [`forkbase_postree::BlobCursor`] — use
    /// [`super::Snapshot::blob_reader`] to avoid materializing at all).
    pub fn blob_read(&self, value: &Value) -> DbResult<Vec<u8>> {
        let r = value.blob_ref().ok_or(DbError::TypeMismatch {
            expected: "blob",
            found: value.value_type().name(),
        })?;
        cursor_ext::read_blob_to_vec(&self.store, &r)
    }

    /// Elements of a `List` value (O(N) output; the scan streams through
    /// [`super::ListStream`]).
    pub fn list_elements(&self, value: &Value) -> DbResult<Vec<Bytes>> {
        match value {
            Value::List(t) => cursor_ext::ListStream::open(&self.store, *t)?.collect(),
            other => Err(DbError::TypeMismatch {
                expected: "list",
                found: other.value_type().name(),
            }),
        }
    }

    /// Commit a batch of map edits on a branch head in one step: read the
    /// head map value, apply, put. The workhorse of the table layer.
    ///
    /// The head stripe is held across the read-apply-commit sequence, so
    /// two concurrent edit batches on the same branch serialize instead of
    /// silently dropping one another's updates, and the GC gate is held
    /// throughout so the freshly built tree cannot be swept before the
    /// head advances to it.
    pub fn put_map_edits(
        &self,
        key: &str,
        edits: Vec<MapEdit>,
        opts: &PutOptions,
    ) -> DbResult<CommitResult> {
        Self::validate_name("key", key)?;
        Self::validate_name("branch", &opts.branch)?;
        let _gc = self.gc_gate.read();
        let _head = self.head_locks[Self::head_stripe(key, &opts.branch)].lock();
        let head = self.get(key, &opts.branch)?;
        let updated = self.map_apply(&head.value, edits)?;
        self.commit_locked(key, updated, opts)
    }

    // ------------------------------------------------------------------
    // Diff / Merge
    // ------------------------------------------------------------------

    /// `Diff`: differences between two versions of a key (§III-B).
    pub fn diff(&self, key: &str, from: &VersionSpec, to: &VersionSpec) -> DbResult<ValueDiff> {
        let from_uid = self.resolve(key, from)?;
        let to_uid = self.resolve(key, to)?;
        if from_uid == to_uid {
            return Ok(ValueDiff::Identical);
        }
        let from_snap = self.snapshot_version(&from_uid)?;
        let to_snap = self.snapshot_version(&to_uid)?;
        from_snap.diff(&to_snap)
    }

    /// Diff two values directly.
    pub fn diff_values(&self, from: &Value, to: &Value) -> DbResult<ValueDiff> {
        match (from, to) {
            (Value::Map(a), Value::Map(b)) | (Value::Set(a), Value::Set(b)) => {
                if a == b {
                    return Ok(ValueDiff::Identical);
                }
                Ok(ValueDiff::Map(diff_maps(&self.store, *a, *b)?))
            }
            (Value::Blob(a), Value::Blob(b)) => {
                if a == b {
                    return Ok(ValueDiff::Identical);
                }
                let blob = PosBlob::new(&self.store, self.cfg);
                let refs_a = blob.chunk_refs(a)?;
                let refs_b = blob.chunk_refs(b)?;
                let (shared_chunks, shared_bytes) = blob.shared_chunks(a, b)?;
                Ok(ValueDiff::Chunked {
                    from_len: a.len,
                    to_len: b.len,
                    shared_chunks,
                    shared_bytes,
                    from_chunks: refs_a.len() as u64,
                    to_chunks: refs_b.len() as u64,
                })
            }
            (Value::List(a), Value::List(b)) => {
                if a == b {
                    return Ok(ValueDiff::Identical);
                }
                // Lists diff at chunk granularity (leaf-node hashes).
                let la = PosList::open(&self.store, self.cfg.node, *a);
                let lb = PosList::open(&self.store, self.cfg.node, *b);
                let chunks_a = list_leaf_hashes(&la)?;
                let chunks_b: HashSet<_> = list_leaf_hashes(&lb)?.into_iter().collect();
                let shared = chunks_a.iter().filter(|h| chunks_b.contains(*h)).count() as u64;
                Ok(ValueDiff::Chunked {
                    from_len: a.count,
                    to_len: b.count,
                    shared_chunks: shared,
                    shared_bytes: 0,
                    from_chunks: chunks_a.len() as u64,
                    to_chunks: chunks_b.len() as u64,
                })
            }
            (a, b) => {
                if a == b {
                    Ok(ValueDiff::Identical)
                } else {
                    Ok(ValueDiff::Primitive {
                        from: a.clone(),
                        to: b.clone(),
                    })
                }
            }
        }
    }

    /// Find the lowest common ancestor of two versions by walking bases.
    pub fn common_ancestor(&self, a: &Uid, b: &Uid) -> DbResult<Option<Uid>> {
        if a == b {
            return Ok(Some(*a));
        }
        // BFS ancestor set of `a`, then BFS from `b` until a hit.
        let mut ancestors_a = HashSet::new();
        let mut queue = VecDeque::from([*a]);
        while let Some(u) = queue.pop_front() {
            if !ancestors_a.insert(u) {
                continue;
            }
            let f = FNode::load(&self.store, &u)?;
            queue.extend(f.bases);
        }
        let mut seen_b = HashSet::new();
        let mut queue = VecDeque::from([*b]);
        while let Some(u) = queue.pop_front() {
            if ancestors_a.contains(&u) {
                return Ok(Some(u));
            }
            if !seen_b.insert(u) {
                continue;
            }
            let f = FNode::load(&self.store, &u)?;
            queue.extend(f.bases);
        }
        Ok(None)
    }

    /// Whether `ancestor` is reachable from `descendant` through bases.
    fn is_ancestor(&self, ancestor: &Uid, descendant: &Uid) -> DbResult<bool> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([*descendant]);
        while let Some(u) = queue.pop_front() {
            if u == *ancestor {
                return Ok(true);
            }
            if !seen.insert(u) {
                continue;
            }
            let f = FNode::load(&self.store, &u)?;
            queue.extend(f.bases);
        }
        Ok(false)
    }

    /// `Merge`: three-way merge `src_branch` into `dst_branch` (§II-B).
    ///
    /// Fast-forwards when one head is an ancestor of the other. Otherwise
    /// the values are merged (maps/sets: POS-Tree sub-tree merge;
    /// primitives/blobs: must agree or the policy picks a side) and a
    /// merge FNode with two bases is committed to `dst_branch`.
    pub fn merge(
        &self,
        key: &str,
        dst_branch: &str,
        src_branch: &str,
        policy: MergePolicy,
        opts: &PutOptions,
    ) -> DbResult<CommitResult> {
        let _gc = self.gc_gate.read();
        // Lock both branches' stripes in index order (deduplicated when
        // they collide) so concurrent merges in opposite directions cannot
        // deadlock. Holding the src stripe keeps the source head from
        // advancing mid-merge.
        let si = Self::head_stripe(key, dst_branch);
        let sj = Self::head_stripe(key, src_branch);
        let (lo, hi) = (si.min(sj), si.max(sj));
        let _lo_guard = self.head_locks[lo].lock();
        let _hi_guard = (hi != lo).then(|| self.head_locks[hi].lock());
        let ours_uid = self.head(key, dst_branch)?;
        let theirs_uid = self.head(key, src_branch)?;
        if ours_uid == theirs_uid || self.is_ancestor(&theirs_uid, &ours_uid)? {
            // src already contained in dst.
            return Ok(CommitResult {
                uid: ours_uid,
                branch: dst_branch.to_string(),
            });
        }
        if self.is_ancestor(&ours_uid, &theirs_uid)? {
            // Fast-forward dst to src.
            self.branches
                .write()
                .get_mut(key)
                .expect("key exists")
                .insert(dst_branch.to_string(), theirs_uid);
            return Ok(CommitResult {
                uid: theirs_uid,
                branch: dst_branch.to_string(),
            });
        }

        let base_uid = self
            .common_ancestor(&ours_uid, &theirs_uid)?
            .ok_or(DbError::NoCommonAncestor(ours_uid, theirs_uid))?;
        let ours = FNode::load(&self.store, &ours_uid)?.value;
        let theirs = FNode::load(&self.store, &theirs_uid)?.value;
        let base = FNode::load(&self.store, &base_uid)?.value;

        let merged_value = self.merge_values(&base, &ours, &theirs, policy)?;

        let fnode = FNode {
            key: key.to_string(),
            value: merged_value,
            bases: vec![ours_uid, theirs_uid],
            author: opts.author.clone(),
            message: if opts.message.is_empty() {
                format!("merge {src_branch} into {dst_branch}")
            } else {
                opts.message.clone()
            },
            logical_time: self.clock.fetch_add(1, Ordering::Relaxed),
        };
        let uid = fnode.store(&self.store)?;
        self.branches
            .write()
            .get_mut(key)
            .expect("key exists")
            .insert(dst_branch.to_string(), uid);
        Ok(CommitResult {
            uid,
            branch: dst_branch.to_string(),
        })
    }

    fn merge_values(
        &self,
        base: &Value,
        ours: &Value,
        theirs: &Value,
        policy: MergePolicy,
    ) -> DbResult<Value> {
        match (base, ours, theirs) {
            (Value::Map(b), Value::Map(o), Value::Map(t))
            | (Value::Set(b), Value::Set(o), Value::Set(t)) => {
                let base_m = PosMap::open(&self.store, self.cfg.node, *b);
                let ours_m = PosMap::open(&self.store, self.cfg.node, *o);
                let theirs_m = PosMap::open(&self.store, self.cfg.node, *t);
                let out = merge_maps(&base_m, &ours_m, &theirs_m, policy)?;
                Ok(match base {
                    Value::Set(_) => Value::Set(out.merged.tree()),
                    _ => Value::Map(out.merged.tree()),
                })
            }
            _ => {
                // Non-mergeable types: both sides must agree, or the policy
                // picks one wholesale.
                if ours == theirs {
                    Ok(ours.clone())
                } else {
                    match policy {
                        MergePolicy::Ours => Ok(ours.clone()),
                        MergePolicy::Theirs => Ok(theirs.clone()),
                        MergePolicy::Fail => Err(DbError::MergeConflicts(vec![
                            forkbase_postree::merge::MergeConflict {
                                key: Bytes::from_static(b"<whole value>"),
                                base: Some(Bytes::from(base.encode())),
                                ours: Some(Bytes::from(ours.encode())),
                                theirs: Some(Bytes::from(theirs.encode())),
                            },
                        ])),
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Export / verification
    // ------------------------------------------------------------------

    /// `Export`: write a version's content to `out`. Blobs and strings are
    /// written raw; maps/sets/lists as line-oriented text. Returns bytes
    /// written.
    pub fn export(&self, key: &str, spec: &VersionSpec, out: &mut dyn Write) -> DbResult<u64> {
        self.snapshot(key, spec)?.export(out)
    }

    /// Verify a single version: the FNode authenticates against its uid
    /// and its value trees fully verify (§II-D, §III-C).
    pub fn verify_version(&self, uid: &Uid) -> DbResult<()> {
        let fnode = FNode::load(&self.store, uid)?; // uid ↔ content check
        self.verify_value(&fnode.value)
    }

    /// Verify a value's underlying trees.
    pub fn verify_value(&self, value: &Value) -> DbResult<()> {
        match value {
            Value::Map(t) | Value::Set(t) => {
                forkbase_postree::verify::verify_map(&self.store, *t, self.cfg.node, false)?;
                Ok(())
            }
            Value::List(t) => {
                // Lists reuse the map walk minus key ordering, which the
                // verifier relaxes for empty keys.
                forkbase_postree::verify::verify_map(&self.store, *t, self.cfg.node, false)?;
                Ok(())
            }
            Value::Blob(r) => {
                PosBlob::new(&self.store, self.cfg).verify(r)?;
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Verify a whole branch: head version, full ancestry chain, and every
    /// ancestor's value trees. Returns the number of versions checked.
    pub fn verify_branch(&self, key: &str, branch: &str) -> DbResult<u64> {
        let mut uid = self.head(key, branch)?;
        let mut checked = 0u64;
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([uid]);
        while let Some(u) = queue.pop_front() {
            if !seen.insert(u) {
                continue;
            }
            uid = u;
            let fnode = FNode::load(&self.store, &uid)?;
            if fnode.key != key {
                return Err(DbError::TamperDetected(format!(
                    "version {uid} claims key {:?} on branch of {key:?}",
                    fnode.key
                )));
            }
            self.verify_value(&fnode.value)?;
            queue.extend(fnode.bases);
            checked += 1;
        }
        Ok(checked)
    }
}

pub(crate) fn list_leaf_hashes<S: ChunkStore>(
    list: &PosList<'_, S>,
) -> DbResult<Vec<forkbase_crypto::Hash>> {
    // Walk leaf node hashes via the cursor.
    let mut cursor = forkbase_postree::cursor::LeafCursor::new(list.store_ref(), list.tree())?;
    let mut out = Vec::new();
    while let Some(r) = cursor.leaf_ref() {
        out.push(r.hash);
        if cursor.leaf_is_last() {
            break;
        }
        cursor.skip_leaf()?;
    }
    Ok(out)
}
