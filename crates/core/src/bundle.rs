//! Portable branch bundles — `git bundle` for data.
//!
//! A bundle is a self-contained byte stream holding every chunk reachable
//! from selected branch heads plus the head refs themselves. Because all
//! chunks are content-addressed, import is *verifying by construction*:
//! each chunk is re-hashed on the way in, refs must resolve to FNodes of
//! the right key, and a final `verify_branch` pass seals the deal. A
//! tampered bundle cannot be imported.
//!
//! Format:
//!
//! ```text
//! magic "FKBBNDL1"
//! u32 ref_count     { u32 key_len, key, u32 branch_len, branch, 32B uid }*
//! u32 chunk_count   { 32B hash, u32 len, payload }*
//! ```

use std::collections::HashSet;
use std::io::{Read, Write};

use bytes::Bytes;
use forkbase_crypto::{sha256, Hash};
use forkbase_store::ChunkStore;

use crate::db::ForkBase;
use crate::error::{DbError, DbResult};
use crate::fnode::FNode;
use crate::gc;

const MAGIC: &[u8; 8] = b"FKBBNDL1";

/// One exported branch head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BundleRef {
    /// Object key.
    pub key: String,
    /// Branch name.
    pub branch: String,
    /// Head uid.
    pub uid: Hash,
}

fn io_err(e: std::io::Error) -> DbError {
    DbError::Store(forkbase_store::StoreError::Io(e))
}

/// Export `branches` of `key` (or every branch if `branches` is empty)
/// into `out`. Returns the number of chunks written.
pub fn export_bundle<S: ChunkStore>(
    db: &ForkBase<S>,
    key: &str,
    branches: &[&str],
    out: &mut dyn Write,
) -> DbResult<u64> {
    // Resolve the heads to ship.
    let all = db.list_branches(key)?;
    let selected: Vec<BundleRef> = all
        .into_iter()
        .filter(|b| branches.is_empty() || branches.contains(&b.name.as_str()))
        .map(|b| BundleRef {
            key: key.to_string(),
            branch: b.name,
            uid: b.head,
        })
        .collect();
    if selected.is_empty() {
        return Err(DbError::InvalidInput(format!(
            "no matching branches on {key:?}"
        )));
    }
    export_refs(db, selected, out)
}

/// Export **every branch of every listed key** into one bundle. This is
/// the unit of cluster rebalance: all keys moving from one servelet to
/// another travel as a single bundle, so their chunks are written (and
/// later installed) once even when histories share content. Returns the
/// number of chunks written.
pub fn export_bundle_keys<S: ChunkStore>(
    db: &ForkBase<S>,
    keys: &[String],
    out: &mut dyn Write,
) -> DbResult<u64> {
    let mut selected = Vec::new();
    for key in keys {
        for b in db.list_branches(key)? {
            selected.push(BundleRef {
                key: key.clone(),
                branch: b.name,
                uid: b.head,
            });
        }
    }
    if selected.is_empty() {
        return Err(DbError::InvalidInput(
            "no branches on any of the selected keys".into(),
        ));
    }
    export_refs(db, selected, out)
}

/// Shared bundle writer: mark everything reachable from `selected` heads
/// and stream refs + chunks in the `FKBBNDL1` format.
fn export_refs<S: ChunkStore>(
    db: &ForkBase<S>,
    selected: Vec<BundleRef>,
    out: &mut dyn Write,
) -> DbResult<u64> {
    // Mark reachable chunks from the selected heads only.
    let mut live: HashSet<Hash> = HashSet::new();
    let mut order: Vec<Hash> = Vec::new();
    let mut frontier: Vec<Hash> = selected.iter().map(|r| r.uid).collect();
    while let Some(uid) = frontier.pop() {
        if !live.insert(uid) {
            continue;
        }
        order.push(uid);
        let fnode = FNode::load(db.store(), &uid)?;
        frontier.extend(fnode.bases.iter().copied());
        let before = live.len();
        gc::mark_value_into(db, &fnode.value, &mut live, &mut order)?;
        debug_assert!(live.len() >= before);
    }

    out.write_all(MAGIC).map_err(io_err)?;
    out.write_all(&(selected.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    for r in &selected {
        out.write_all(&(r.key.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        out.write_all(r.key.as_bytes()).map_err(io_err)?;
        out.write_all(&(r.branch.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        out.write_all(r.branch.as_bytes()).map_err(io_err)?;
        out.write_all(r.uid.as_bytes()).map_err(io_err)?;
    }
    out.write_all(&(order.len() as u32).to_le_bytes())
        .map_err(io_err)?;
    for hash in &order {
        let bytes = db.store().get(hash)?.ok_or(DbError::NoSuchVersion(*hash))?;
        out.write_all(hash.as_bytes()).map_err(io_err)?;
        out.write_all(&(bytes.len() as u32).to_le_bytes())
            .map_err(io_err)?;
        out.write_all(&bytes).map_err(io_err)?;
    }
    Ok(order.len() as u64)
}

/// Import a bundle into `db`, creating/updating the contained branches.
/// Every chunk is hash-verified; every imported branch is fully verified
/// before its ref is installed. Returns the installed refs.
///
/// An existing branch whose head **differs** from the bundle's is refused
/// ([`DbError::BranchExists`]) — importing must never discard local work.
/// Replication wants the opposite contract; see
/// [`import_bundle_replace`].
pub fn import_bundle<S: ChunkStore>(
    db: &ForkBase<S>,
    input: &mut dyn Read,
) -> DbResult<Vec<BundleRef>> {
    // Hold the GC gate across the whole write-verify-install sequence: the
    // imported chunks are unreachable from any branch head until the refs
    // are installed, so a concurrent gc::collect in between would sweep
    // them and publish a branch with unreadable history. (install_ref
    // deliberately does not take the gate itself — we hold it here.)
    let _gc = db.gc_shared();
    let (refs, max_time) = verify_bundle(db, input)?;
    for r in &refs {
        // Create the key/branch (overwriting an existing branch head would
        // discard local work; require it to be absent or identical).
        match db.head(&r.key, &r.branch) {
            Ok(existing) if existing == r.uid => {}
            Ok(_) => {
                return Err(DbError::BranchExists {
                    key: r.key.clone(),
                    branch: r.branch.clone(),
                })
            }
            Err(_) => {
                db.install_ref(&r.key, &r.branch, r.uid)?;
            }
        }
    }
    db.bump_clock_past(max_time);
    Ok(refs)
}

/// Import a bundle with **replace** semantics: after the same chunk-hash
/// and history verification as [`import_bundle`], each key appearing in
/// the bundle has its branch set replaced to exactly match the bundle —
/// existing heads are overwritten and local branches of those keys that
/// the bundle lacks are dropped. Keys absent from the bundle are
/// untouched.
///
/// This is the replication apply path: a replica must mirror its
/// primary, so "local work" on a replica is by definition stale. Never
/// use this on a database whose branches are authoritative.
pub fn import_bundle_replace<S: ChunkStore>(
    db: &ForkBase<S>,
    input: &mut dyn Read,
) -> DbResult<Vec<BundleRef>> {
    // Same GC-gate discipline as `import_bundle` (see comment there).
    let _gc = db.gc_shared();
    let (refs, max_time) = verify_bundle(db, input)?;
    let mut by_key: std::collections::BTreeMap<String, Vec<(String, Hash)>> =
        std::collections::BTreeMap::new();
    for r in &refs {
        by_key
            .entry(r.key.clone())
            .or_default()
            .push((r.branch.clone(), r.uid));
    }
    for (key, branches) in by_key {
        db.replace_key_refs(&key, branches)?;
    }
    db.bump_clock_past(max_time);
    Ok(refs)
}

/// Shared import front half: parse the stream, hash-verify and stage
/// every chunk, and walk every ref's full history before anything is
/// published. Returns the verified refs plus the highest logical time
/// seen (callers advance the clock past it). The caller must hold the GC
/// gate.
fn verify_bundle<S: ChunkStore>(
    db: &ForkBase<S>,
    input: &mut dyn Read,
) -> DbResult<(Vec<BundleRef>, u64)> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(DbError::InvalidInput("not a ForkBase bundle".into()));
    }
    let read_u32 = |input: &mut dyn Read| -> DbResult<u32> {
        let mut b = [0u8; 4];
        input.read_exact(&mut b).map_err(io_err)?;
        Ok(u32::from_le_bytes(b))
    };
    let read_hash = |input: &mut dyn Read| -> DbResult<Hash> {
        let mut b = [0u8; 32];
        input.read_exact(&mut b).map_err(io_err)?;
        Ok(Hash::from_bytes(b))
    };
    let read_string = |input: &mut dyn Read| -> DbResult<String> {
        let len = read_u32(input)? as usize;
        if len > 1 << 20 {
            return Err(DbError::InvalidInput("implausible string length".into()));
        }
        let mut b = vec![0u8; len];
        input.read_exact(&mut b).map_err(io_err)?;
        String::from_utf8(b).map_err(|_| DbError::InvalidInput("non-UTF-8 name".into()))
    };

    let ref_count = read_u32(input)? as usize;
    if ref_count == 0 || ref_count > 1 << 16 {
        return Err(DbError::InvalidInput("implausible ref count".into()));
    }
    let mut refs = Vec::with_capacity(ref_count);
    for _ in 0..ref_count {
        let key = read_string(input)?;
        let branch = read_string(input)?;
        let uid = read_hash(input)?;
        refs.push(BundleRef { key, branch, uid });
    }

    // Chunks are staged and installed via `put_batch` so the store's group
    // commit amortizes locking and fsync (one fsync per batch on
    // FileStore instead of one per chunk).
    const IMPORT_BATCH: usize = 256;
    let chunk_count = read_u32(input)? as usize;
    let mut staged: Vec<(forkbase_crypto::Hash, Bytes)> = Vec::new();
    for _ in 0..chunk_count {
        let hash = read_hash(input)?;
        let len = read_u32(input)? as usize;
        if len > 1 << 28 {
            return Err(DbError::InvalidInput("implausible chunk length".into()));
        }
        let mut payload = vec![0u8; len];
        input.read_exact(&mut payload).map_err(io_err)?;
        // Hash verification on the way in: tampered bundles die here.
        let actual = sha256(&payload);
        if actual != hash {
            return Err(DbError::TamperDetected(format!(
                "bundle chunk claims {hash:?} but hashes to {actual:?}"
            )));
        }
        staged.push((hash, Bytes::from(payload)));
        if staged.len() >= IMPORT_BATCH {
            db.store().put_batch(std::mem::take(&mut staged))?;
        }
    }
    if !staged.is_empty() {
        db.store().put_batch(staged)?;
    }

    // Install refs only after their full histories verify. Track the
    // highest logical time seen so the destination's clock can be advanced
    // past every imported commit (like `load_refs`): a later put on an
    // imported key must never be stamped earlier than its own history.
    let mut max_time = 0u64;
    for r in &refs {
        let fnode = FNode::load(db.store(), &r.uid)?;
        if fnode.key != r.key {
            return Err(DbError::TamperDetected(format!(
                "bundle ref {}@{} points at key {:?}",
                r.key, r.branch, fnode.key
            )));
        }
        // Ensure every version in the history is present and valid before
        // exposing the branch.
        let mut frontier = vec![r.uid];
        let mut seen = HashSet::new();
        while let Some(uid) = frontier.pop() {
            if !seen.insert(uid) {
                continue;
            }
            let f = FNode::load(db.store(), &uid)?;
            db.verify_value(&f.value)?;
            max_time = max_time.max(f.logical_time);
            frontier.extend(f.bases);
        }
    }
    Ok((refs, max_time))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{PutOptions, VersionSpec};
    use forkbase_postree::TreeConfig;
    use forkbase_store::MemStore;
    use forkbase_types::Value;

    fn db() -> ForkBase<MemStore> {
        ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
    }

    fn seeded() -> ForkBase<MemStore> {
        let d = db();
        let pairs: Vec<(Bytes, Bytes)> = (0..300)
            .map(|i| {
                (
                    Bytes::from(format!("k{i:04}")),
                    Bytes::from(format!("v{i}")),
                )
            })
            .collect();
        let map = d.new_map(pairs).unwrap();
        d.put("data", map, &PutOptions::default().message("load"))
            .unwrap();
        d.branch("data", "master", "dev").unwrap();
        d.put(
            "data",
            Value::string("dev note"),
            &PutOptions::on_branch("dev").message("note"),
        )
        .unwrap();
        d
    }

    #[test]
    fn roundtrip_all_branches() {
        let src = seeded();
        let mut bundle = Vec::new();
        let chunks = export_bundle(&src, "data", &[], &mut bundle).unwrap();
        assert!(chunks > 5);

        let dst = db();
        let refs = import_bundle(&dst, &mut bundle.as_slice()).unwrap();
        assert_eq!(refs.len(), 2);
        assert_eq!(
            dst.head("data", "master").unwrap(),
            src.head("data", "master").unwrap()
        );
        assert_eq!(
            dst.get("data", "dev").unwrap().value.as_str(),
            Some("dev note")
        );
        // Imported history fully verifies and walks.
        dst.verify_branch("data", "master").unwrap();
        assert_eq!(
            dst.history("data", &VersionSpec::branch("dev"))
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn multi_key_bundle_roundtrip() {
        let src = db();
        for i in 0..5 {
            src.put(
                &format!("k{i}"),
                Value::string(format!("v{i}")),
                &PutOptions::default(),
            )
            .unwrap();
        }
        src.branch("k0", "master", "dev").unwrap();
        let keys: Vec<String> = (0..5).map(|i| format!("k{i}")).collect();
        let mut bundle = Vec::new();
        export_bundle_keys(&src, &keys, &mut bundle).unwrap();

        let dst = db();
        let refs = import_bundle(&dst, &mut bundle.as_slice()).unwrap();
        assert_eq!(refs.len(), 6, "5 masters + 1 dev");
        for i in 0..5 {
            let key = format!("k{i}");
            assert_eq!(
                dst.head(&key, "master").unwrap(),
                src.head(&key, "master").unwrap(),
                "uids must survive the move byte-identically"
            );
            dst.verify_branch(&key, "master").unwrap();
        }
        assert!(dst.head("k0", "dev").is_ok());
        // Unknown key in the selection is an error, empty selection too.
        assert!(export_bundle_keys(&src, &["ghost".to_string()], &mut Vec::new()).is_err());
        assert!(export_bundle_keys(&src, &[], &mut Vec::new()).is_err());
    }

    #[test]
    fn import_advances_logical_clock_past_history() {
        let src = db();
        // Push the source clock well ahead.
        for i in 0..20 {
            src.put("k", Value::Int(i), &PutOptions::default()).unwrap();
        }
        let head = src.head("k", "master").unwrap();
        let src_time = src.meta(&head).unwrap().logical_time;
        let mut bundle = Vec::new();
        export_bundle(&src, "k", &[], &mut bundle).unwrap();

        // Fresh destination: its clock starts at 1.
        let dst = db();
        import_bundle(&dst, &mut bundle.as_slice()).unwrap();
        // A commit made after the import must be stamped later than the
        // imported history, or history timestamps would run backwards.
        let c = dst
            .put("k", Value::Int(99), &PutOptions::default())
            .unwrap();
        assert!(
            dst.meta(&c.uid).unwrap().logical_time > src_time,
            "post-import commit stamped before imported history"
        );
    }

    #[test]
    fn single_branch_export_excludes_others() {
        let src = seeded();
        let mut bundle = Vec::new();
        export_bundle(&src, "data", &["master"], &mut bundle).unwrap();
        let dst = db();
        let refs = import_bundle(&dst, &mut bundle.as_slice()).unwrap();
        assert_eq!(refs.len(), 1);
        assert!(dst.head("data", "master").is_ok());
        assert!(dst.head("data", "dev").is_err());
    }

    #[test]
    fn tampered_bundle_rejected() {
        let src = seeded();
        let mut bundle = Vec::new();
        export_bundle(&src, "data", &[], &mut bundle).unwrap();
        // Flip one payload byte somewhere after the refs section.
        let mid = bundle.len() / 2;
        bundle[mid] ^= 0x01;
        let dst = db();
        let result = import_bundle(&dst, &mut bundle.as_slice());
        assert!(result.is_err(), "tampered bundle must not import");
        // And no branch must have been installed.
        assert!(dst.list_keys().is_empty());
    }

    #[test]
    fn truncated_bundle_rejected() {
        let src = seeded();
        let mut bundle = Vec::new();
        export_bundle(&src, "data", &[], &mut bundle).unwrap();
        bundle.truncate(bundle.len() - 10);
        let dst = db();
        assert!(import_bundle(&dst, &mut bundle.as_slice()).is_err());
    }

    #[test]
    fn import_refuses_to_clobber_diverged_branch() {
        let src = seeded();
        let mut bundle = Vec::new();
        export_bundle(&src, "data", &["master"], &mut bundle).unwrap();

        // Destination has its own diverged "data"@master.
        let dst = db();
        dst.put("data", Value::string("local work"), &PutOptions::default())
            .unwrap();
        assert!(matches!(
            import_bundle(&dst, &mut bundle.as_slice()),
            Err(DbError::BranchExists { .. })
        ));
    }

    #[test]
    fn reimport_is_idempotent() {
        let src = seeded();
        let mut bundle = Vec::new();
        export_bundle(&src, "data", &[], &mut bundle).unwrap();
        let dst = db();
        import_bundle(&dst, &mut bundle.as_slice()).unwrap();
        let chunks = forkbase_store::ChunkStore::chunk_count(dst.store());
        // Second import: all dedup hits, same refs, no error.
        import_bundle(&dst, &mut bundle.as_slice()).unwrap();
        assert_eq!(forkbase_store::ChunkStore::chunk_count(dst.store()), chunks);
    }

    #[test]
    fn replace_import_overwrites_and_prunes_stale_branches() {
        let src = seeded();
        let mut bundle = Vec::new();
        export_bundle(&src, "data", &["master"], &mut bundle).unwrap();

        // The destination (a replica) has diverged local state on the
        // bundled key, plus an unrelated key.
        let dst = db();
        dst.put("data", Value::string("stale"), &PutOptions::default())
            .unwrap();
        dst.branch("data", "master", "old").unwrap();
        dst.put("other", Value::Int(1), &PutOptions::default())
            .unwrap();

        let refs = import_bundle_replace(&dst, &mut bundle.as_slice()).unwrap();
        assert_eq!(refs.len(), 1);
        assert_eq!(
            dst.head("data", "master").unwrap(),
            src.head("data", "master").unwrap(),
            "replace semantics: the primary's head wins"
        );
        assert!(
            dst.head("data", "old").is_err(),
            "branches absent from the bundle are pruned"
        );
        assert!(
            dst.head("other", "master").is_ok(),
            "keys absent from the bundle are untouched"
        );
        dst.verify_branch("data", "master").unwrap();
    }

    #[test]
    fn replace_import_is_idempotent_and_still_tamper_evident() {
        let src = seeded();
        let mut bundle = Vec::new();
        export_bundle(&src, "data", &[], &mut bundle).unwrap();
        let dst = db();
        import_bundle_replace(&dst, &mut bundle.as_slice()).unwrap();
        import_bundle_replace(&dst, &mut bundle.as_slice()).unwrap();
        assert_eq!(
            dst.head("data", "master").unwrap(),
            src.head("data", "master").unwrap()
        );
        // Replace semantics do not weaken tamper evidence: a flipped byte
        // still kills the import before any ref lands.
        let mut bad = bundle.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        let fresh = db();
        assert!(import_bundle_replace(&fresh, &mut bad.as_slice()).is_err());
        assert!(fresh.list_keys().is_empty());
    }

    #[test]
    fn garbage_input_rejected() {
        let dst = db();
        assert!(import_bundle(&dst, &mut &b"not a bundle at all"[..]).is_err());
        assert!(import_bundle(&dst, &mut &b""[..]).is_err());
    }
}
