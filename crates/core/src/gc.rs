//! Mark-and-sweep garbage collection over the chunk store.
//!
//! ForkBase data is immutable, so "deletion" happens only by moving branch
//! heads. Chunks not reachable from any branch head (dropped branches,
//! abandoned experiments) can be reclaimed offline. The mark phase walks:
//!
//! ```text
//! branch heads → FNodes → (bases…, value trees → nodes → data chunks)
//! ```
//!
//! and the sweep drops everything unvisited. GC preserves all *history*
//! reachable from live heads — this is archival storage, not a cache.
//!
//! The sweep itself is delegated to the store's [`SweepStore`] capability:
//! on a `MemStore` it drops map entries; on a `FileStore` it additionally
//! runs physical compaction, rewriting surviving chunks out of
//! low-utilization segments and deleting dead segment files, so disk
//! space is actually returned to the operating system.

use std::collections::HashSet;

use forkbase_crypto::Hash;
use forkbase_postree::node::Node;
use forkbase_store::{ChunkStore, SweepReport, SweepStore};
use forkbase_types::Value;

use crate::db::ForkBase;
use crate::error::DbResult;
use crate::fnode::FNode;

/// The set of chunks reachable from all branch heads.
pub fn mark<S: ChunkStore>(db: &ForkBase<S>) -> DbResult<HashSet<Hash>> {
    let mut live: HashSet<Hash> = HashSet::new();
    let mut frontier: Vec<Hash> = Vec::new();
    for key in db.list_keys() {
        for b in db.list_branches(&key)? {
            frontier.push(b.head);
        }
    }
    while let Some(uid) = frontier.pop() {
        if !live.insert(uid) {
            continue;
        }
        // A frontier hash is always an FNode (bases and heads are FNodes).
        let fnode = FNode::load(db.store(), &uid)?;
        frontier.extend(fnode.bases.iter().copied());
        mark_value(db, &fnode.value, &mut live)?;
    }
    Ok(live)
}

fn mark_value<S: ChunkStore>(
    db: &ForkBase<S>,
    value: &Value,
    live: &mut HashSet<Hash>,
) -> DbResult<()> {
    let mut order = Vec::new();
    mark_value_into(db, value, live, &mut order)
}

/// Order-preserving variant used by bundle export: appends every newly
/// discovered chunk hash to `order` in discovery order.
pub(crate) fn mark_value_into<S: ChunkStore>(
    db: &ForkBase<S>,
    value: &Value,
    live: &mut HashSet<Hash>,
    order: &mut Vec<Hash>,
) -> DbResult<()> {
    match value {
        Value::Map(t) | Value::Set(t) | Value::List(t) => mark_tree(db, &t.root, live, order),
        Value::Blob(r) => mark_blob(db, &r.root, r.depth, live, order),
        _ => Ok(()),
    }
}

fn mark_tree<S: ChunkStore>(
    db: &ForkBase<S>,
    root: &Hash,
    live: &mut HashSet<Hash>,
    order: &mut Vec<Hash>,
) -> DbResult<()> {
    if !live.insert(*root) {
        return Ok(());
    }
    order.push(*root);
    let node = Node::load(db.store(), root)?;
    if let Node::Index { children, .. } = node {
        for c in children {
            mark_tree(db, &c.hash, live, order)?;
        }
    }
    Ok(())
}

fn mark_blob<S: ChunkStore>(
    db: &ForkBase<S>,
    root: &Hash,
    depth: u8,
    live: &mut HashSet<Hash>,
    order: &mut Vec<Hash>,
) -> DbResult<()> {
    if !live.insert(*root) {
        return Ok(());
    }
    order.push(*root);
    if depth == 0 {
        return Ok(()); // raw chunk
    }
    let node = Node::load(db.store(), root)?;
    if let Node::Index { children, .. } = node {
        for c in children {
            mark_blob(db, &c.hash, depth - 1, live, order)?;
        }
    }
    Ok(())
}

/// Report of one full GC pass: what the mark phase found live, plus the
/// store's own [`SweepReport`] of what the sweep/compaction physically
/// did about the rest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Chunks reachable from some branch head (kept).
    pub live_chunks: u64,
    /// What the store physically reclaimed, rewrote, and freed.
    pub sweep: SweepReport,
}

impl std::fmt::Display for GcReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "live chunks:     {}", self.live_chunks)?;
        writeln!(
            f,
            "reclaimed:       {} chunk(s), {} byte(s)",
            self.sweep.chunks_reclaimed, self.sweep.bytes_reclaimed
        )?;
        writeln!(
            f,
            "compacted:       {} chunk(s) rewritten ({} bytes), {} segment(s) deleted",
            self.sweep.chunks_rewritten, self.sweep.bytes_rewritten, self.sweep.segments_deleted
        )?;
        write!(
            f,
            "disk:            {} -> {} bytes ({} freed)",
            self.sweep.disk_bytes_before,
            self.sweep.disk_bytes_after,
            self.sweep.disk_bytes_freed()
        )
    }
}

/// Run a full mark-and-sweep (and, on segmented stores, physical
/// compaction) over any database whose store supports [`SweepStore`].
///
/// Holds the database's GC gate exclusively for the whole mark+sweep, so
/// every mutating verb (`put`, `put_blob`, `put_map_edits`, `merge`,
/// branch/ref updates) is quiesced: the mark phase sees a consistent set
/// of heads and no commit can publish chunks between mark and sweep.
/// Read-only verbs never take the gate and keep running during GC.
pub fn collect<S: SweepStore>(db: &ForkBase<S>) -> DbResult<GcReport> {
    let _world_stopped = db.gc_exclusive();
    let live = mark(db)?;
    let sweep = db.store().sweep(&|h| live.contains(h))?;
    Ok(GcReport {
        live_chunks: live.len() as u64,
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{PutOptions, VersionSpec};
    use bytes::Bytes;
    use forkbase_postree::TreeConfig;
    use forkbase_store::MemStore;

    fn db() -> ForkBase<MemStore> {
        ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
    }

    #[test]
    fn nothing_reclaimed_when_everything_is_live() {
        let db = db();
        let pairs: Vec<(Bytes, Bytes)> = (0..500)
            .map(|i| {
                (
                    Bytes::from(format!("k{i:05}")),
                    Bytes::from(format!("v{i}")),
                )
            })
            .collect();
        let map = db.new_map(pairs).unwrap();
        db.put("data", map, &PutOptions::default()).unwrap();
        let report = collect(&db).unwrap();
        assert_eq!(report.sweep.chunks_reclaimed, 0);
        assert_eq!(report.sweep.bytes_reclaimed, 0);
        assert!(report.live_chunks > 0);
        // Data still readable.
        let got = db.get("data", "master").unwrap();
        assert!(db.verify_value(&got.value).is_ok());
    }

    #[test]
    fn dropped_branch_is_reclaimed_but_history_stays() {
        let db = db();
        let pairs: Vec<(Bytes, Bytes)> = (0..500)
            .map(|i| {
                (
                    Bytes::from(format!("k{i:05}")),
                    Bytes::from(format!("v{i}")),
                )
            })
            .collect();
        let map = db.new_map(pairs).unwrap();
        db.put("data", map, &PutOptions::default()).unwrap();

        // Branch off and write a large divergent value, then delete the
        // branch.
        db.branch("data", "master", "scratch").unwrap();
        let big: Vec<(Bytes, Bytes)> = (0..500)
            .map(|i| (Bytes::from(format!("x{i:05}")), Bytes::from(vec![7u8; 100])))
            .collect();
        let scratch_map = db.new_map(big).unwrap();
        db.put("data", scratch_map, &PutOptions::on_branch("scratch"))
            .unwrap();
        let before = db.store().chunk_count();
        db.delete_branch("data", "scratch").unwrap();

        let report = collect(&db).unwrap();
        assert!(
            report.sweep.chunks_reclaimed > 0,
            "scratch branch data must be reclaimed"
        );
        assert!(db.store().chunk_count() < before);

        // Master and its full history still verify.
        db.verify_branch("data", "master").unwrap();
        let history = db.history("data", &VersionSpec::branch("master")).unwrap();
        assert_eq!(history.len(), 1);
    }

    #[test]
    fn history_of_live_branch_is_never_collected() {
        let db = db();
        for i in 0..5 {
            db.put(
                "doc",
                forkbase_types::Value::string(format!("revision {i}")),
                &PutOptions::default(),
            )
            .unwrap();
        }
        let report = collect(&db).unwrap();
        assert_eq!(
            report.sweep.chunks_reclaimed, 0,
            "all five revisions are reachable via bases"
        );
        let history = db.history("doc", &VersionSpec::branch("master")).unwrap();
        assert_eq!(history.len(), 5);
        for h in history {
            assert!(db.verify_version(&h.uid).is_ok());
        }
    }

    #[test]
    fn shared_chunks_survive_partial_deletion() {
        let db = db();
        // Two keys share most of their map content.
        let mk = |extra: &str| -> Vec<(Bytes, Bytes)> {
            let mut v: Vec<(Bytes, Bytes)> = (0..300)
                .map(|i| {
                    (
                        Bytes::from(format!("k{i:05}")),
                        Bytes::from(format!("v{i}")),
                    )
                })
                .collect();
            v.push((Bytes::from(extra.to_string()), Bytes::from_static(b"1")));
            v
        };
        let m1 = db.new_map(mk("only-a")).unwrap();
        let m2 = db.new_map(mk("only-b")).unwrap();
        db.put("a", m1, &PutOptions::default()).unwrap();
        db.put("b", m2, &PutOptions::default()).unwrap();

        // Delete key "b" entirely (drop its only branch).
        db.delete_branch("b", "master").unwrap();
        collect(&db).unwrap();

        // Key "a" must still fully verify: shared chunks were retained.
        db.verify_branch("a", "master").unwrap();
        let got = db.get("a", "master").unwrap();
        assert_eq!(
            db.map_get(&got.value, b"only-a").unwrap(),
            Some(Bytes::from_static(b"1"))
        );
    }

    #[test]
    fn gc_physically_shrinks_a_file_store() {
        // The acceptance cycle: ingest → delete branches → gc (mark +
        // sweep + compaction) → on-disk bytes shrink to within 1.25x of
        // the live frame bytes, and everything live still verifies.
        use forkbase_store::{FileStore, FileStoreConfig};
        let dir = std::env::temp_dir().join(format!(
            "forkbase-gc-filestore-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open_with(
            &dir,
            FileStoreConfig {
                segment_bytes: 64 * 1024,
                ..Default::default()
            },
        )
        .unwrap();
        let db = ForkBase::with_config(store, TreeConfig::test_config());

        // Ingest: a keeper blob plus several scratch branches of garbage.
        let keeper: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        db.put_blob("data", Bytes::from(keeper.clone()), &PutOptions::default())
            .unwrap();
        for b in 0..6 {
            let scratch = format!("scratch-{b}");
            db.branch("data", "master", &scratch).unwrap();
            let junk: Vec<u8> = (0..150_000u32)
                .map(|i| ((i * 7919 + b * 104729) % 253) as u8)
                .collect();
            db.put_blob("data", Bytes::from(junk), &PutOptions::on_branch(&scratch))
                .unwrap();
            db.delete_branch("data", &scratch).unwrap();
        }
        db.store().sync().unwrap();
        let disk_full = db.store().disk_bytes().unwrap();

        let report = db.gc().unwrap();
        assert!(report.sweep.chunks_reclaimed > 0);
        assert!(report.sweep.segments_deleted > 0);
        assert!(report.sweep.disk_bytes_after < disk_full);

        // The 1.25x bound: disk after GC vs live payload bytes (frame
        // overhead is ~1% at these chunk sizes and is inside the bound).
        let live_bytes = db.store().utilization().unwrap().live_bytes;
        assert!(
            report.sweep.disk_bytes_after as f64 <= 1.25 * live_bytes as f64,
            "disk {} vs live {live_bytes}",
            report.sweep.disk_bytes_after
        );

        // Live data survives compaction and still verifies end-to-end.
        db.verify_branch("data", "master").unwrap();
        let got = db.get("data", "master").unwrap();
        assert_eq!(db.blob_read(&got.value).unwrap(), keeper);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
