#![forbid(unsafe_code)]
//! ForkBase: an immutable, tamper-evident storage substrate for branchable
//! applications (ICDE 2020; engine described in PVLDB 2018).
//!
//! ForkBase pushes Git-style versioning and branching semantics down into
//! the storage layer. Every object is identified by a key; every key may
//! have many **branches**; every `Put` creates an immutable **version**
//! identified by a cryptographic **uid** that covers both the value and its
//! entire derivation history. The physical layer deduplicates at chunk
//! granularity via the POS-Tree, so a thousand versions of a dataset cost
//! little more than the sum of their differences.
//!
//! # Quick start
//!
//! ```
//! use forkbase::{ForkBase, PutOptions};
//! use forkbase_store::MemStore;
//! use forkbase_types::Value;
//!
//! let db = ForkBase::new(MemStore::new());
//! // Put on the default branch ("master").
//! let v1 = db
//!     .put("greeting", Value::string("hello"), &PutOptions::default())
//!     .unwrap();
//! // Fork a branch and change it there.
//! db.branch("greeting", "master", "experiment").unwrap();
//! db.put(
//!     "greeting",
//!     Value::string("bonjour"),
//!     &PutOptions::on_branch("experiment"),
//! )
//! .unwrap();
//! // Master is untouched; history is tamper-evident.
//! assert_eq!(
//!     db.get("greeting", "master").unwrap().value.as_str(),
//!     Some("hello")
//! );
//! assert!(db.verify_version(&v1.uid).is_ok());
//! ```

pub mod acl;
pub mod api;
pub mod bundle;
pub mod cluster;
pub mod db;
pub mod error;
pub mod fnode;
pub mod forks;
pub mod gc;

pub use acl::{AccessController, Permission, Role};
pub use api::{
    BatchOutcome, BlobReader, BranchInfo, CommitResult, DbStat, ForkBase, GetResult, HistoryEntry,
    ListStream, MapRange, PutOptions, Snapshot, ValueDiff, VersionSpec, WriteBatch, DEFAULT_BRANCH,
};
pub use bundle::{export_bundle, import_bundle, import_bundle_replace, BundleRef};
pub use cluster::{
    ChaosPlan, ChaosReport, Cluster, ClusterGcReport, ClusterStat, ClusterTopology,
    ClusterWriteBatch, HealthState, MapPage, Partial, PartialHeads, PersistFn, PrimaryReplication,
    RateLimit, RateLimiter, RemoteRespawnFn, ReplicaRead, ReplicaStatus, ReplicationStatus,
    Respawned, RetryPolicy, RpcConfig, ServeletHealth, ServeletServer, ShipReport,
    SupervisionReport, Supervisor, TopoRole,
};
pub use error::{DbError, DbResult};
pub use fnode::{FNode, Uid};
pub use forks::{
    DiffSummary, ForkBackend, ForkDiff, ForkInfo, ForkService, KeyDiff, Lease, LeaseClock,
    MapEntryDelta, ReapReport, DEFAULT_FORK_TTL_SECS,
};
pub use gc::GcReport;
