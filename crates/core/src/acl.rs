//! Branch-based access control (paper Fig. 1, "Semantic Views" layer).
//!
//! The architecture diagram shows per-admin, branch-scoped access control
//! sitting above the data APIs: *Admin A* and *Admin B* each govern their
//! own branches of shared datasets. This module implements that model:
//!
//! * **users** hold a global [`Role`];
//! * **grants** give a user a [`Permission`] on `(key, branch)` patterns,
//!   where `*` matches any key or branch;
//! * admins bypass grants; writers/readers need explicit grants beyond
//!   their implicit rights (writers may create new keys, readers only
//!   read what they are granted).

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::error::{DbError, DbResult};

/// Global role of a user.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Full access to everything, may administer grants.
    Admin,
    /// May read/write where granted.
    Member,
}

/// What a grant allows on a `(key, branch)` pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Permission {
    /// Read-only access.
    Read,
    /// Read and write (put/merge/branch).
    Write,
}

/// One access grant.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Grant {
    key_pattern: String,
    branch_pattern: String,
    permission: Permission,
}

fn pattern_matches(pattern: &str, value: &str) -> bool {
    pattern == "*" || pattern == value
}

/// The access controller: users, roles, and grants.
///
/// Thread-safe; shared by the CLI and REST layers.
pub struct AccessController {
    users: RwLock<HashMap<String, Role>>,
    grants: RwLock<HashMap<String, Vec<Grant>>>,
}

impl Default for AccessController {
    fn default() -> Self {
        Self::new()
    }
}

impl AccessController {
    /// Create an empty controller (no users — everything denied).
    pub fn new() -> Self {
        AccessController {
            users: RwLock::new(HashMap::new()),
            grants: RwLock::new(HashMap::new()),
        }
    }

    /// Register (or change the role of) a user.
    pub fn add_user(&self, name: impl Into<String>, role: Role) {
        self.users.write().insert(name.into(), role);
    }

    /// Remove a user and all their grants.
    pub fn remove_user(&self, name: &str) {
        self.users.write().remove(name);
        self.grants.write().remove(name);
    }

    /// The role of `user`, if registered.
    pub fn role(&self, user: &str) -> Option<Role> {
        self.users.read().get(user).copied()
    }

    /// Grant `permission` on `(key_pattern, branch_pattern)` to `user`.
    /// `"*"` in either pattern matches everything. `granter` must be an
    /// admin.
    pub fn grant(
        &self,
        granter: &str,
        user: &str,
        key_pattern: impl Into<String>,
        branch_pattern: impl Into<String>,
        permission: Permission,
    ) -> DbResult<()> {
        if self.role(granter) != Some(Role::Admin) {
            return Err(DbError::PermissionDenied(format!(
                "{granter} is not an admin and cannot grant access"
            )));
        }
        if self.role(user).is_none() {
            return Err(DbError::InvalidInput(format!("unknown user {user:?}")));
        }
        self.grants
            .write()
            .entry(user.to_string())
            .or_default()
            .push(Grant {
                key_pattern: key_pattern.into(),
                branch_pattern: branch_pattern.into(),
                permission,
            });
        Ok(())
    }

    /// Revoke all grants matching the pattern pair for `user`.
    pub fn revoke(
        &self,
        granter: &str,
        user: &str,
        key_pattern: &str,
        branch_pattern: &str,
    ) -> DbResult<()> {
        if self.role(granter) != Some(Role::Admin) {
            return Err(DbError::PermissionDenied(format!(
                "{granter} is not an admin and cannot revoke access"
            )));
        }
        if let Some(grants) = self.grants.write().get_mut(user) {
            grants
                .retain(|g| !(g.key_pattern == key_pattern && g.branch_pattern == branch_pattern));
        }
        Ok(())
    }

    /// Whether `user` holds `needed` (or stronger) on `(key, branch)`.
    pub fn allows(&self, user: &str, key: &str, branch: &str, needed: Permission) -> bool {
        match self.role(user) {
            Some(Role::Admin) => true,
            Some(Role::Member) => self
                .grants
                .read()
                .get(user)
                .map(|grants| {
                    grants.iter().any(|g| {
                        g.permission >= needed
                            && pattern_matches(&g.key_pattern, key)
                            && pattern_matches(&g.branch_pattern, branch)
                    })
                })
                .unwrap_or(false),
            None => false,
        }
    }

    /// Error-returning form of [`Self::allows`] for call sites.
    pub fn check(&self, user: &str, key: &str, branch: &str, needed: Permission) -> DbResult<()> {
        if self.allows(user, key, branch, needed) {
            Ok(())
        } else {
            Err(DbError::PermissionDenied(format!(
                "user {user:?} lacks {needed:?} on {key:?}@{branch:?}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> AccessController {
        let acl = AccessController::new();
        acl.add_user("admin-a", Role::Admin);
        acl.add_user("admin-b", Role::Admin);
        acl.add_user("analyst", Role::Member);
        acl
    }

    #[test]
    fn admins_can_do_anything() {
        let acl = setup();
        assert!(acl.allows("admin-a", "any-key", "any-branch", Permission::Write));
        assert!(acl.check("admin-b", "k", "b", Permission::Read).is_ok());
    }

    #[test]
    fn unknown_users_are_denied() {
        let acl = setup();
        assert!(!acl.allows("stranger", "k", "master", Permission::Read));
        assert!(matches!(
            acl.check("stranger", "k", "master", Permission::Read),
            Err(DbError::PermissionDenied(_))
        ));
    }

    #[test]
    fn members_need_grants() {
        let acl = setup();
        assert!(!acl.allows("analyst", "dataset", "master", Permission::Read));
        acl.grant("admin-a", "analyst", "dataset", "master", Permission::Read)
            .unwrap();
        assert!(acl.allows("analyst", "dataset", "master", Permission::Read));
        // Read grant does not imply write.
        assert!(!acl.allows("analyst", "dataset", "master", Permission::Write));
    }

    #[test]
    fn write_implies_read() {
        let acl = setup();
        acl.grant("admin-a", "analyst", "dataset", "dev", Permission::Write)
            .unwrap();
        assert!(acl.allows("analyst", "dataset", "dev", Permission::Read));
        assert!(acl.allows("analyst", "dataset", "dev", Permission::Write));
    }

    #[test]
    fn wildcard_patterns() {
        let acl = setup();
        acl.grant("admin-a", "analyst", "*", "experiment", Permission::Write)
            .unwrap();
        assert!(acl.allows("analyst", "any-key", "experiment", Permission::Write));
        assert!(!acl.allows("analyst", "any-key", "master", Permission::Write));

        acl.grant(
            "admin-a",
            "analyst",
            "shared-dataset",
            "*",
            Permission::Read,
        )
        .unwrap();
        assert!(acl.allows("analyst", "shared-dataset", "anything", Permission::Read));
    }

    #[test]
    fn branch_isolation_between_admins_members() {
        // The Fig. 1 scenario: Admin A gives a member write access only on
        // branch "team-a"; master stays protected.
        let acl = setup();
        acl.grant(
            "admin-a",
            "analyst",
            "dataset-1",
            "team-a",
            Permission::Write,
        )
        .unwrap();
        assert!(acl.allows("analyst", "dataset-1", "team-a", Permission::Write));
        assert!(!acl.allows("analyst", "dataset-1", "master", Permission::Write));
        assert!(!acl.allows("analyst", "dataset-1", "master", Permission::Read));
    }

    #[test]
    fn only_admins_grant_and_revoke() {
        let acl = setup();
        assert!(matches!(
            acl.grant("analyst", "analyst", "*", "*", Permission::Write),
            Err(DbError::PermissionDenied(_))
        ));
        acl.grant("admin-a", "analyst", "k", "b", Permission::Read)
            .unwrap();
        assert!(matches!(
            acl.revoke("analyst", "analyst", "k", "b"),
            Err(DbError::PermissionDenied(_))
        ));
        acl.revoke("admin-a", "analyst", "k", "b").unwrap();
        assert!(!acl.allows("analyst", "k", "b", Permission::Read));
    }

    #[test]
    fn grants_to_unknown_users_rejected() {
        let acl = setup();
        assert!(matches!(
            acl.grant("admin-a", "ghost", "*", "*", Permission::Read),
            Err(DbError::InvalidInput(_))
        ));
    }

    #[test]
    fn removing_user_clears_grants() {
        let acl = setup();
        acl.grant("admin-a", "analyst", "*", "*", Permission::Write)
            .unwrap();
        acl.remove_user("analyst");
        assert!(!acl.allows("analyst", "k", "b", Permission::Read));
        assert_eq!(acl.role("analyst"), None);
    }
}
