//! Concurrency stress tests for the commit pipeline: striped head locks,
//! batched chunk writes, and the GC gate.
//!
//! The light `*_smoke` tests run in tier-1 (`cargo test`). The heavy
//! `stress_*` tests are `#[ignore]`d and exercised by CI's dedicated
//! stress job in release mode, where races actually surface:
//!
//! ```text
//! cargo test --release -- --ignored stress
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use forkbase::db::VersionSpec;
use forkbase::{gc, ForkBase, PutOptions};
use forkbase_postree::merge::MergePolicy;
use forkbase_postree::{MapEdit, TreeConfig};
use forkbase_store::MemStore;
use forkbase_types::Value;

fn db() -> ForkBase<MemStore> {
    ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
}

fn pseudo_random(len: usize, seed: u64) -> Bytes {
    let mut s = seed | 1;
    Bytes::from(
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 0xff) as u8
            })
            .collect::<Vec<u8>>(),
    )
}

/// N threads commit to disjoint keys; every branch must end up a linear
/// chain of exactly the commits that thread made.
fn run_disjoint_puts(threads: usize, commits: usize) {
    let db = db();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            s.spawn(move || {
                let key = format!("key-{t}");
                for i in 0..commits {
                    // Alternate cheap string commits with blob commits so
                    // the batched chunk path runs under contention too.
                    if i % 4 == 3 {
                        db.put_blob(
                            &key,
                            pseudo_random(20_000, (t * 1000 + i) as u64),
                            &PutOptions::default(),
                        )
                        .unwrap();
                    } else {
                        db.put(
                            &key,
                            Value::string(format!("v-{t}-{i}")),
                            &PutOptions::default(),
                        )
                        .unwrap();
                    }
                }
            });
        }
    });
    for t in 0..threads {
        let key = format!("key-{t}");
        let history = db.history(&key, &VersionSpec::branch("master")).unwrap();
        assert_eq!(history.len(), commits, "key-{t} must be a linear chain");
        db.verify_branch(&key, "master").unwrap();
    }
}

/// N threads hammer the same (key, branch): the striped head lock must make
/// each commit's base the previous head, so the final history length equals
/// the total number of commits — no lost updates.
fn run_contended_puts(threads: usize, commits: usize) {
    let db = db();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            s.spawn(move || {
                for i in 0..commits {
                    db.put(
                        "hot",
                        Value::string(format!("v-{t}-{i}")),
                        &PutOptions::default(),
                    )
                    .unwrap();
                }
            });
        }
    });
    let history = db.history("hot", &VersionSpec::branch("master")).unwrap();
    assert_eq!(
        history.len(),
        threads * commits,
        "every commit must appear in the chain exactly once"
    );
    db.verify_branch("hot", "master").unwrap();
}

#[test]
fn concurrent_puts_smoke() {
    run_disjoint_puts(4, 20);
    run_contended_puts(4, 25);
}

#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_concurrent_puts_disjoint_keys() {
    run_disjoint_puts(8, 300);
}

#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_concurrent_puts_contended_branch() {
    run_contended_puts(8, 250);
}

/// Each thread branches off master, edits its own disjoint key range via
/// `put_map_edits`, and merges back. All edits must survive into master.
fn run_branch_merge(threads: usize, edits_per_thread: usize) {
    let db = db();
    let base: Vec<(Bytes, Bytes)> = (0..100)
        .map(|i| {
            (
                Bytes::from(format!("base-{i:04}")),
                Bytes::from_static(b"seed"),
            )
        })
        .collect();
    let map = db.new_map(base).unwrap();
    db.put("doc", map, &PutOptions::default()).unwrap();

    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            s.spawn(move || {
                let branch = format!("fork-{t}");
                db.branch("doc", "master", &branch).unwrap();
                for i in 0..edits_per_thread {
                    db.put_map_edits(
                        "doc",
                        vec![MapEdit::put(
                            Bytes::from(format!("t{t}-k{i:04}")),
                            Bytes::from(format!("t{t}-v{i}")),
                        )],
                        &PutOptions::on_branch(&branch),
                    )
                    .unwrap();
                }
                db.merge(
                    "doc",
                    "master",
                    &branch,
                    MergePolicy::Fail,
                    &PutOptions::default(),
                )
                .unwrap();
            });
        }
    });

    let head = db.get("doc", "master").unwrap();
    db.verify_branch("doc", "master").unwrap();
    for t in 0..threads {
        for i in 0..edits_per_thread {
            let got = db
                .map_get(&head.value, format!("t{t}-k{i:04}").as_bytes())
                .unwrap();
            assert_eq!(
                got,
                Some(Bytes::from(format!("t{t}-v{i}"))),
                "edit t{t}-k{i:04} lost in merge"
            );
        }
    }
}

#[test]
fn concurrent_branch_merge_smoke() {
    run_branch_merge(3, 5);
}

#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_concurrent_branch_merge() {
    run_branch_merge(8, 40);
}

/// Writers commit (strings, blobs, map edits) and churn scratch branches
/// while a collector thread runs mark-and-sweep in a loop. Nothing
/// reachable may ever be swept: every branch must fully verify afterwards.
fn run_gc_vs_commits(threads: usize, rounds: usize, gc_runs: usize) {
    let db = Arc::new(db());
    // Seed a map key for the put_map_edits traffic.
    let map = db
        .new_map(vec![(Bytes::from_static(b"k"), Bytes::from_static(b"v"))])
        .unwrap();
    db.put("table", map, &PutOptions::default()).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let collector = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut runs = 0usize;
            let mut reclaimed = 0u64;
            while runs < gc_runs && !stop.load(Ordering::Relaxed) {
                let report = gc::collect(&db).unwrap();
                reclaimed += report.sweep.chunks_reclaimed;
                runs += 1;
                std::thread::yield_now();
            }
            reclaimed
        })
    };

    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            s.spawn(move || {
                let key = format!("w-{t}");
                for i in 0..rounds {
                    match i % 4 {
                        0 => {
                            db.put(&key, Value::string(format!("r{i}")), &PutOptions::default())
                                .unwrap();
                        }
                        1 => {
                            db.put_blob(
                                &key,
                                pseudo_random(30_000, (t * 7919 + i) as u64),
                                &PutOptions::default(),
                            )
                            .unwrap();
                        }
                        2 => {
                            db.put_map_edits(
                                "table",
                                vec![MapEdit::put(
                                    Bytes::from(format!("t{t}-r{i}")),
                                    Bytes::from_static(b"x"),
                                )],
                                &PutOptions::default(),
                            )
                            .unwrap();
                        }
                        _ => {
                            // Create garbage for the collector: a scratch
                            // branch with a divergent blob, then drop it.
                            let scratch = format!("scratch-{t}-{i}");
                            db.branch(&key, "master", &scratch).unwrap();
                            db.put_blob(
                                &key,
                                pseudo_random(25_000, (t * 104729 + i) as u64),
                                &PutOptions::on_branch(&scratch),
                            )
                            .unwrap();
                            db.delete_branch(&key, &scratch).unwrap();
                        }
                    }
                }
            });
        }
    });
    stop.store(true, Ordering::Relaxed);
    collector.join().unwrap();

    // One final sweep with everything quiescent, then full verification:
    // GC must never have collected a chunk reachable from a live head.
    gc::collect(&db).unwrap();
    for t in 0..threads {
        let key = format!("w-{t}");
        db.verify_branch(&key, "master").unwrap();
        // Per 4-round block a writer commits to its own master twice
        // (cases 0 and 1); `rounds` is kept divisible by 4.
        let history = db.history(&key, &VersionSpec::branch("master")).unwrap();
        assert_eq!(history.len(), rounds / 2, "w-{t} chain intact");
    }
    db.verify_branch("table", "master").unwrap();
}

#[test]
fn gc_vs_commits_smoke() {
    run_gc_vs_commits(3, 16, 10);
}

#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_gc_vs_concurrent_put_branch_merge() {
    run_gc_vs_commits(8, 120, 200);
}
