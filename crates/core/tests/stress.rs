//! Concurrency stress tests for the commit pipeline: striped head locks,
//! batched chunk writes, and the GC gate.
//!
//! The light `*_smoke` tests run in tier-1 (`cargo test`). The heavy
//! `stress_*` tests are `#[ignore]`d and exercised by CI's dedicated
//! stress job in release mode, where races actually surface:
//!
//! ```text
//! cargo test --release -- --ignored stress
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use forkbase::db::VersionSpec;
use forkbase::{gc, ForkBase, PutOptions};
use forkbase_postree::merge::MergePolicy;
use forkbase_postree::{MapEdit, TreeConfig};
use forkbase_store::MemStore;
use forkbase_types::Value;

fn db() -> ForkBase<MemStore> {
    ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
}

fn pseudo_random(len: usize, seed: u64) -> Bytes {
    let mut s = seed | 1;
    Bytes::from(
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 0xff) as u8
            })
            .collect::<Vec<u8>>(),
    )
}

/// N threads commit to disjoint keys; every branch must end up a linear
/// chain of exactly the commits that thread made.
fn run_disjoint_puts(threads: usize, commits: usize) {
    let db = db();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            s.spawn(move || {
                let key = format!("key-{t}");
                for i in 0..commits {
                    // Alternate cheap string commits with blob commits so
                    // the batched chunk path runs under contention too.
                    if i % 4 == 3 {
                        db.put_blob(
                            &key,
                            pseudo_random(20_000, (t * 1000 + i) as u64),
                            &PutOptions::default(),
                        )
                        .unwrap();
                    } else {
                        db.put(
                            &key,
                            Value::string(format!("v-{t}-{i}")),
                            &PutOptions::default(),
                        )
                        .unwrap();
                    }
                }
            });
        }
    });
    for t in 0..threads {
        let key = format!("key-{t}");
        let history = db.history(&key, &VersionSpec::branch("master")).unwrap();
        assert_eq!(history.len(), commits, "key-{t} must be a linear chain");
        db.verify_branch(&key, "master").unwrap();
    }
}

/// N threads hammer the same (key, branch): the striped head lock must make
/// each commit's base the previous head, so the final history length equals
/// the total number of commits — no lost updates.
fn run_contended_puts(threads: usize, commits: usize) {
    let db = db();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            s.spawn(move || {
                for i in 0..commits {
                    db.put(
                        "hot",
                        Value::string(format!("v-{t}-{i}")),
                        &PutOptions::default(),
                    )
                    .unwrap();
                }
            });
        }
    });
    let history = db.history("hot", &VersionSpec::branch("master")).unwrap();
    assert_eq!(
        history.len(),
        threads * commits,
        "every commit must appear in the chain exactly once"
    );
    db.verify_branch("hot", "master").unwrap();
}

#[test]
fn concurrent_puts_smoke() {
    run_disjoint_puts(4, 20);
    run_contended_puts(4, 25);
}

#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_concurrent_puts_disjoint_keys() {
    run_disjoint_puts(8, 300);
}

#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_concurrent_puts_contended_branch() {
    run_contended_puts(8, 250);
}

/// Each thread branches off master, edits its own disjoint key range via
/// `put_map_edits`, and merges back. All edits must survive into master.
fn run_branch_merge(threads: usize, edits_per_thread: usize) {
    let db = db();
    let base: Vec<(Bytes, Bytes)> = (0..100)
        .map(|i| {
            (
                Bytes::from(format!("base-{i:04}")),
                Bytes::from_static(b"seed"),
            )
        })
        .collect();
    let map = db.new_map(base).unwrap();
    db.put("doc", map, &PutOptions::default()).unwrap();

    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            s.spawn(move || {
                let branch = format!("fork-{t}");
                db.branch("doc", "master", &branch).unwrap();
                for i in 0..edits_per_thread {
                    db.put_map_edits(
                        "doc",
                        vec![MapEdit::put(
                            Bytes::from(format!("t{t}-k{i:04}")),
                            Bytes::from(format!("t{t}-v{i}")),
                        )],
                        &PutOptions::on_branch(&branch),
                    )
                    .unwrap();
                }
                db.merge(
                    "doc",
                    "master",
                    &branch,
                    MergePolicy::Fail,
                    &PutOptions::default(),
                )
                .unwrap();
            });
        }
    });

    let head = db.get("doc", "master").unwrap();
    db.verify_branch("doc", "master").unwrap();
    for t in 0..threads {
        for i in 0..edits_per_thread {
            let got = db
                .map_get(&head.value, format!("t{t}-k{i:04}").as_bytes())
                .unwrap();
            assert_eq!(
                got,
                Some(Bytes::from(format!("t{t}-v{i}"))),
                "edit t{t}-k{i:04} lost in merge"
            );
        }
    }
}

#[test]
fn concurrent_branch_merge_smoke() {
    run_branch_merge(3, 5);
}

#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_concurrent_branch_merge() {
    run_branch_merge(8, 40);
}

/// Writers commit (strings, blobs, map edits) and churn scratch branches
/// while a collector thread runs mark-and-sweep in a loop. Nothing
/// reachable may ever be swept: every branch must fully verify afterwards.
fn run_gc_vs_commits(threads: usize, rounds: usize, gc_runs: usize) {
    let db = Arc::new(db());
    // Seed a map key for the put_map_edits traffic.
    let map = db
        .new_map(vec![(Bytes::from_static(b"k"), Bytes::from_static(b"v"))])
        .unwrap();
    db.put("table", map, &PutOptions::default()).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let collector = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut runs = 0usize;
            let mut reclaimed = 0u64;
            while runs < gc_runs && !stop.load(Ordering::Relaxed) {
                let report = gc::collect(&db).unwrap();
                reclaimed += report.sweep.chunks_reclaimed;
                runs += 1;
                std::thread::yield_now();
            }
            reclaimed
        })
    };

    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            s.spawn(move || {
                let key = format!("w-{t}");
                for i in 0..rounds {
                    match i % 4 {
                        0 => {
                            db.put(&key, Value::string(format!("r{i}")), &PutOptions::default())
                                .unwrap();
                        }
                        1 => {
                            db.put_blob(
                                &key,
                                pseudo_random(30_000, (t * 7919 + i) as u64),
                                &PutOptions::default(),
                            )
                            .unwrap();
                        }
                        2 => {
                            db.put_map_edits(
                                "table",
                                vec![MapEdit::put(
                                    Bytes::from(format!("t{t}-r{i}")),
                                    Bytes::from_static(b"x"),
                                )],
                                &PutOptions::default(),
                            )
                            .unwrap();
                        }
                        _ => {
                            // Create garbage for the collector: a scratch
                            // branch with a divergent blob, then drop it.
                            let scratch = format!("scratch-{t}-{i}");
                            db.branch(&key, "master", &scratch).unwrap();
                            db.put_blob(
                                &key,
                                pseudo_random(25_000, (t * 104729 + i) as u64),
                                &PutOptions::on_branch(&scratch),
                            )
                            .unwrap();
                            db.delete_branch(&key, &scratch).unwrap();
                        }
                    }
                }
            });
        }
    });
    stop.store(true, Ordering::Relaxed);
    collector.join().unwrap();

    // One final sweep with everything quiescent, then full verification:
    // GC must never have collected a chunk reachable from a live head.
    gc::collect(&db).unwrap();
    for t in 0..threads {
        let key = format!("w-{t}");
        db.verify_branch(&key, "master").unwrap();
        // Per 4-round block a writer commits to its own master twice
        // (cases 0 and 1); `rounds` is kept divisible by 4.
        let history = db.history(&key, &VersionSpec::branch("master")).unwrap();
        assert_eq!(history.len(), rounds / 2, "w-{t} chain intact");
    }
    db.verify_branch("table", "master").unwrap();
}

#[test]
fn gc_vs_commits_smoke() {
    run_gc_vs_commits(3, 16, 10);
}

#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_gc_vs_concurrent_put_branch_merge() {
    run_gc_vs_commits(8, 120, 200);
}

/// Write-batch atomicity under concurrent readers: writers commit batches
/// that put the **same** marker value to every key; readers grab all heads
/// in one consistent [`ForkBase::heads`] read and resolve them. If a batch
/// were ever observable half-applied, a reader would see two different
/// markers across keys.
fn run_write_batch_atomicity(writers: usize, batches: usize, keys: usize) {
    let db = db();
    let key_names: Vec<String> = (0..keys).map(|i| format!("acct-{i}")).collect();
    // Seed all keys with marker "seed" in one batch so readers always find
    // every head.
    {
        let mut seed = db.write_batch();
        for key in &key_names {
            seed.put(key.clone(), Value::string("seed"), &PutOptions::default());
        }
        seed.commit().unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let torn = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Readers: every observation must be a single batch's marker
        // across ALL keys.
        let mut readers = Vec::new();
        for _ in 0..2 {
            let db = &db;
            let stop = Arc::clone(&stop);
            let torn = Arc::clone(&torn);
            let key_names = &key_names;
            readers.push(s.spawn(move || {
                let pairs: Vec<(&str, &str)> = key_names
                    .iter()
                    .map(|key| (key.as_str(), "master"))
                    .collect();
                while !stop.load(Ordering::Relaxed) {
                    let heads = db.heads(&pairs).unwrap();
                    let markers: Vec<String> = heads
                        .iter()
                        .map(|uid| {
                            db.get_version(uid)
                                .unwrap()
                                .value
                                .as_str()
                                .expect("marker values are strings")
                                .to_string()
                        })
                        .collect();
                    if markers.iter().any(|m| m != &markers[0]) {
                        torn.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            }));
        }
        // Writers: each batch stamps one marker onto every key.
        let mut writer_handles = Vec::new();
        for w in 0..writers {
            let db = &db;
            let key_names = &key_names;
            writer_handles.push(s.spawn(move || {
                for i in 0..batches {
                    let marker = format!("w{w}-b{i}");
                    let mut batch = db.write_batch();
                    for key in key_names {
                        batch.put(key.clone(), Value::string(&marker), &PutOptions::default());
                    }
                    batch.commit().unwrap();
                }
            }));
        }
        // Join writers, then release the readers before the scope joins
        // them.
        for h in writer_handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        !torn.load(Ordering::Relaxed),
        "a reader observed a torn multi-key batch"
    );
    // Every key converged to some writer's final marker, and each chain
    // verifies end to end.
    for key in &key_names {
        db.verify_branch(key, "master").unwrap();
        let history = db.history(key, &VersionSpec::branch("master")).unwrap();
        assert_eq!(history.len(), writers * batches + 1, "{key} chain length");
    }
}

#[test]
fn write_batch_atomicity_smoke() {
    run_write_batch_atomicity(2, 12, 4);
}

#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_write_batch_atomicity() {
    run_write_batch_atomicity(4, 150, 8);
}

/// Batches and merges take overlapping stripe sets concurrently; ordered
/// acquisition must keep them deadlock-free (the test simply completing
/// is the assertion, plus converged chains verifying).
#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_write_batch_vs_merge_no_deadlock() {
    let db = db();
    for key in ["m-0", "m-1", "m-2", "m-3"] {
        let map = db
            .new_map(vec![(
                Bytes::from_static(b"init"),
                Bytes::from_static(b"0"),
            )])
            .unwrap();
        db.put(key, map, &PutOptions::default()).unwrap();
        db.branch(key, "master", "side").unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..4 {
            let db = &db;
            s.spawn(move || {
                for i in 0..60 {
                    if t % 2 == 0 {
                        // Batch across all four keys, both branches.
                        let mut batch = db.write_batch();
                        for key in ["m-0", "m-1", "m-2", "m-3"] {
                            batch.map_edits(
                                key,
                                vec![MapEdit::put(
                                    Bytes::from(format!("t{t}")),
                                    Bytes::from(format!("{i}")),
                                )],
                                &PutOptions::on_branch(if i % 2 == 0 { "master" } else { "side" }),
                            );
                        }
                        batch.commit().unwrap();
                    } else {
                        // Merges crossing the same stripes in both
                        // directions.
                        let key = format!("m-{}", i % 4);
                        let (dst, src) = if i % 2 == 0 {
                            ("master", "side")
                        } else {
                            ("side", "master")
                        };
                        let _ = db.merge(&key, dst, src, MergePolicy::Ours, &PutOptions::default());
                    }
                }
            });
        }
    });
    for key in ["m-0", "m-1", "m-2", "m-3"] {
        db.verify_branch(key, "master").unwrap();
        db.verify_branch(key, "side").unwrap();
    }
}

/// A 64 MiB blob must stream through `Snapshot::blob_reader` without being
/// materialized: the reader only ever holds one data chunk, and the bytes
/// coming out are identical to the bytes that went in.
#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_blob_reader_streams_64mib() {
    use std::io::Read as _;
    let db = ForkBase::new(MemStore::new()); // default (production) chunking
    let content = pseudo_random(64 * 1024 * 1024, 0xb10b);
    db.put_blob("big", content.clone(), &PutOptions::default())
        .unwrap();
    let snap = db.snapshot("big", &VersionSpec::branch("master")).unwrap();
    let mut reader = snap.blob_reader().unwrap();
    let mut buf = vec![0u8; 64 * 1024];
    let mut pos = 0usize;
    loop {
        let n = reader.read(&mut buf).unwrap();
        if n == 0 {
            break;
        }
        assert_eq!(
            &content[pos..pos + n],
            &buf[..n],
            "stream diverges at offset {pos}"
        );
        pos += n;
    }
    assert_eq!(pos, content.len(), "every byte streamed exactly once");
}
