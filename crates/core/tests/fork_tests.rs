//! Integration tests for the fork-sandbox service: lease lifecycle
//! edges, registry persistence, GC reclamation of reaped forks, and the
//! high-cardinality churn test (1,000+ concurrent live forks,
//! `#[ignore]`d — CI runs it in release mode in the `forks` job).

use forkbase::{DbError, ForkBase, ForkService, PutOptions, Uid, VersionSpec};
use forkbase_postree::TreeConfig;
use forkbase_store::MemStore;
use forkbase_types::Value;

fn db() -> ForkBase<MemStore> {
    ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
}

fn put(db: &ForkBase<MemStore>, key: &str, value: &str) -> Uid {
    db.put(key, Value::string(value), &PutOptions::default())
        .unwrap()
        .uid
}

/// Every fork verb on an expired lease fails with the structured
/// `fork_expired` error — the same one the REST layer maps to 404 — and
/// a touch cannot resurrect the lease.
#[test]
fn expired_fork_rejects_every_verb_with_structured_error() {
    let db = db();
    put(&db, "doc", "base");
    let forks = ForkService::new();
    let id = forks
        .create(VersionSpec::branch("master"), Some(10), None)
        .unwrap()
        .id;
    forks
        .put(
            &db,
            &id,
            "doc",
            Value::string("edit"),
            &PutOptions::default(),
        )
        .unwrap();
    forks.clock().advance(11);

    let expect_expired = |r: Result<(), DbError>| {
        let e = r.unwrap_err();
        assert_eq!(e.code(), "fork_expired", "got {e:?}");
        assert!(e.to_string().contains(&id), "error names the fork: {e}");
    };
    expect_expired(forks.get(&db, &id, "doc").map(|_| ()));
    expect_expired(
        forks
            .put(&db, &id, "doc", Value::string("x"), &PutOptions::default())
            .map(|_| ()),
    );
    expect_expired(forks.diff(&db, &id).map(|_| ()));
    expect_expired(forks.touch(&id, Some(1000)).map(|_| ()));
    expect_expired(forks.info(&id).map(|_| ()));
    expect_expired(forks.range(&db, &id, "doc", None, None, 10).map(|_| ()));
    // Unknown ids are indistinguishable from reaped ones (same code;
    // the message names the id that was asked for, not ours).
    let e = forks.get(&db, "never-existed", "doc").unwrap_err();
    assert_eq!(e.code(), "fork_expired", "got {e:?}");
    assert!(e.to_string().contains("never-existed"));

    // The write that landed before expiry is still on the fork branch —
    // the reaper, not the lease check, owns cleanup.
    assert!(db
        .list_branches("doc")
        .unwrap()
        .iter()
        .any(|b| b.name == format!("fork/{id}")));
    let report = forks.reap_expired(&db);
    assert_eq!(report.reaped, vec![id.clone()]);
    assert!(!db
        .list_branches("doc")
        .unwrap()
        .iter()
        .any(|b| b.name.starts_with("fork/")));
}

/// The FORKS record round-trips the whole registry: lease windows,
/// pinned base versions, touched-key sets, and the id generator. A
/// "reopened" service resumes every fork exactly where it left off.
#[test]
fn reopen_resumes_leases_and_pinned_bases() {
    let db = db();
    let base_uid = put(&db, "doc", "base");
    let forks = ForkService::new();
    let id = forks
        .create(VersionSpec::branch("master"), Some(500), None)
        .unwrap()
        .id;
    forks
        .put(
            &db,
            &id,
            "doc",
            Value::string("forked"),
            &PutOptions::default(),
        )
        .unwrap();
    forks
        .put(
            &db,
            &id,
            "fresh",
            Value::string("created"),
            &PutOptions::default(),
        )
        .unwrap();
    // The base branch moves on after the fork pinned it.
    put(&db, "doc", "base-moved-on");
    let before = forks.info(&id).unwrap();

    let resumed = ForkService::new();
    assert_eq!(resumed.load(&forks.dump()).unwrap(), 1);
    let after = resumed.info(&id).unwrap();
    assert_eq!(after.lease, before.lease);
    assert_eq!(after.writes, before.writes);
    assert_eq!(after.touched.get("doc"), Some(&Some(base_uid)));
    assert_eq!(after.touched.get("fresh"), Some(&None));

    // Reads and diffs work through the resumed registry, and the diff
    // is still against the *pinned* base, not the moved-on head.
    assert_eq!(
        resumed.get(&db, &id, "doc").unwrap().value.as_str(),
        Some("forked")
    );
    let diff = resumed.diff(&db, &id).unwrap();
    assert_eq!(diff.changed_keys(), 2);
    let doc = diff.keys.iter().find(|k| k.key == "doc").unwrap();
    assert_eq!(doc.base, Some(base_uid));

    // New ids allocated by the resumed service never collide with
    // pre-restart ones.
    let next = resumed
        .create(VersionSpec::branch("master"), None, None)
        .unwrap();
    assert_ne!(next.id, id);

    // Expiry carries over: the resumed lease still times out on the
    // resumed clock.
    resumed.clock().advance(501);
    assert_eq!(
        resumed.get(&db, &id, "doc").unwrap_err().code(),
        "fork_expired"
    );
}

/// The full storage story: a reaped fork's branches are dropped, and a
/// GC pass afterwards returns stored bytes to (within dedup noise of)
/// the pre-fork baseline — fork sandboxes leak nothing once collected.
#[test]
fn reaped_fork_chunks_are_reclaimed_by_gc() {
    let db = db();
    put(&db, "doc", "base document, deliberately small");
    db.gc().unwrap();
    let baseline = db.stat().store.stored_bytes;

    let forks = ForkService::new();
    let id = forks
        .create(VersionSpec::branch("master"), Some(60), None)
        .unwrap()
        .id;
    // Unique (non-dedupable) bulk: one modified key + three created
    // keys, each with distinct ~32 KiB payloads.
    let blob = |tag: usize| {
        Value::string(
            (0..2048)
                .map(|i| format!("fork-{tag}-{i:07x}-"))
                .collect::<String>(),
        )
    };
    forks
        .put(&db, &id, "doc", blob(0), &PutOptions::default())
        .unwrap();
    for k in 1..=3 {
        forks
            .put(
                &db,
                &id,
                &format!("scratch-{k}"),
                blob(k),
                &PutOptions::default(),
            )
            .unwrap();
    }
    let inflated = db.stat().store.stored_bytes;
    assert!(
        inflated > baseline + 50_000,
        "fork writes must actually inflate the store: {baseline} -> {inflated}"
    );

    // Expire, reap, collect. The created keys lose their only branch
    // and disappear entirely; `doc` keeps only its base history.
    forks.clock().advance(61);
    let report = forks.reap_expired(&db);
    assert_eq!(report.reaped.len(), 1);
    assert_eq!(report.branches_dropped, 4);
    db.gc().unwrap();
    let reclaimed = db.stat().store.stored_bytes;
    assert_eq!(
        db.list_keys(),
        vec!["doc".to_string()],
        "fork-created keys are gone after reap + GC"
    );
    assert!(
        reclaimed <= baseline + baseline / 10,
        "stored bytes must return to within 10% of the pre-fork baseline: \
         baseline {baseline}, after reap+gc {reclaimed}"
    );
    assert_eq!(
        db.get("doc", "master").unwrap().value.as_str(),
        Some("base document, deliberately small")
    );
}

/// A put racing the reaper never leaks a branch: the loser's branch is
/// un-created and the caller sees `fork_expired`.
#[test]
fn drop_beats_put_without_orphan_branches() {
    let db = db();
    put(&db, "doc", "base");
    let forks = ForkService::new();
    let id = forks
        .create(VersionSpec::branch("master"), Some(60), None)
        .unwrap()
        .id;
    forks.drop_fork(&db, &id).unwrap();
    let err = forks
        .put(
            &db,
            &id,
            "doc",
            Value::string("late"),
            &PutOptions::default(),
        )
        .unwrap_err();
    assert_eq!(err.code(), "fork_expired");
    assert_eq!(
        db.list_branches("doc").unwrap().len(),
        1,
        "no orphan branch"
    );
}

/// The acceptance churn test: 1,000+ concurrent live forks with
/// interleaved create/write/diff/expire churn from many threads.
/// Ignored by default (CI's `forks` job runs it in release mode:
/// `cargo test --release -- --ignored fork_churn`).
#[test]
#[ignore]
fn fork_churn_1000() {
    const THREADS: usize = 8;
    const FORKS_PER_THREAD: usize = 150; // 1,200 total
    const BASE_KEYS: usize = 32;

    let db = db();
    for k in 0..BASE_KEYS {
        put(&db, &format!("base-{k}"), &format!("base-value-{k}"));
    }
    db.gc().unwrap();
    let baseline = db.stat().store.stored_bytes;
    let forks = ForkService::with_default_ttl(1_000_000);

    // Phase 1: concurrent churn. Every thread creates forks, writes
    // through them, diffs them, and sprinkles in short-TTL forks (which
    // a mid-run clock advance expires) plus explicit drops.
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let db = &db;
            let forks = &forks;
            s.spawn(move || {
                for i in 0..FORKS_PER_THREAD {
                    // Every 10th fork is ephemeral: a 1-second lease the
                    // mid-run advance below expires.
                    let ephemeral = i % 10 == 9;
                    let ttl = if ephemeral { Some(1) } else { None };
                    let id = forks
                        .create(
                            VersionSpec::branch("master"),
                            ttl,
                            Some(format!("t{t}-f{i}")),
                        )
                        .unwrap()
                        .id;
                    let key = format!("base-{}", (t * FORKS_PER_THREAD + i) % BASE_KEYS);
                    let value = format!("fork-{id}-own-write");
                    match forks.put(db, &id, &key, Value::string(&value), &PutOptions::default()) {
                        Ok(_) => {}
                        // An ephemeral fork may expire mid-write once the
                        // advance below lands — that's the race the
                        // service guarantees is leak-free, not an error.
                        Err(e) if ephemeral && e.code() == "fork_expired" => continue,
                        Err(e) => panic!("fork put failed: {e}"),
                    }
                    // Read-your-writes immediately, under full churn.
                    if !ephemeral {
                        assert_eq!(
                            forks.get(db, &id, &key).unwrap().value.as_str(),
                            Some(value.as_str())
                        );
                        let diff = forks.diff(db, &id).unwrap();
                        assert_eq!(diff.changed_keys(), 1);
                    }
                    // Every 25th long-lived fork is dropped right away —
                    // interleaved create/drop churn on the registry.
                    if i % 25 == 24 {
                        forks.drop_fork(db, &id).unwrap();
                    }
                    // One thread advances the clock mid-run to expire the
                    // ephemeral cohort while everyone else keeps going.
                    if t == 0 && i == FORKS_PER_THREAD / 2 {
                        forks.clock().advance(2);
                        forks.reap_expired(db);
                    }
                }
            });
        }
    });

    // Phase 2: the live population is still >= 1,000 and every live
    // fork reads its own write with an exact diff-vs-base.
    forks.reap_expired(&db);
    let live: Vec<_> = forks.list();
    assert!(
        forks.live_count() >= 1_000,
        "need 1,000+ concurrent live forks, have {}",
        forks.live_count()
    );
    for info in &live {
        if !info.lease.live_at(forks.clock().now()) || info.writes == 0 {
            continue;
        }
        let key = info.touched.keys().next().unwrap().clone();
        let got = forks.get(&db, &info.id, &key).unwrap();
        assert_eq!(
            got.value.as_str(),
            Some(format!("fork-{}-own-write", info.id).as_str()),
            "fork {} must read its own write",
            info.id
        );
        let diff = forks.diff(&db, &info.id).unwrap();
        assert_eq!(diff.changed_keys(), 1, "diff-vs-base exact for {}", info.id);
        let kd = &diff.keys[0];
        assert_eq!(kd.key, key);
        assert_eq!(kd.head, got.uid);
        assert!(kd.base.is_some(), "base pinned for a modified key");
    }

    // Phase 3: registry persistence round-trips the full population.
    let resumed = ForkService::new();
    assert_eq!(resumed.load(&forks.dump()).unwrap(), forks.len());
    assert_eq!(resumed.live_count(), forks.live_count());

    // Phase 4: expire everything, reap, GC — stored bytes return to the
    // pre-fork baseline (fork writes were pure additions; dropping every
    // fork branch makes them all garbage).
    forks.clock().advance(2_000_000);
    let report = forks.reap_expired(&db);
    assert!(
        report.failed == 0 && forks.is_empty(),
        "reap must drain: {report:?}"
    );
    for k in 0..BASE_KEYS {
        assert_eq!(
            db.list_branches(&format!("base-{k}")).unwrap().len(),
            1,
            "only master survives on base-{k}"
        );
    }
    db.gc().unwrap();
    let after = db.stat().store.stored_bytes;
    assert!(
        after <= baseline + baseline / 10,
        "post-reap GC must return stored bytes to within 10% of baseline: \
         baseline {baseline}, after {after}"
    );
}
