//! Self-healing cluster tests: RPC deadlines, the ambiguous-write retry
//! rule, supervised restart from durable backends, graceful degradation,
//! and the seeded chaos harness.
//!
//! The fast tests here run in tier-1. The seeded property suite is
//! `#[ignore]`d under the `chaos` filter and runs in CI's chaos job; on
//! failure it writes the offending seed to `CHAOS_FAILURE_SEED.txt` so the
//! run replays deterministically.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use forkbase::{ChaosPlan, Cluster, DbError, PutOptions, Respawned, Supervisor, Uid};
use forkbase_postree::TreeConfig;
use forkbase_store::{ChunkStore, FaultyStore, FileStore, MemStore, WriteFault};
use parking_lot::Mutex;

/// A cluster whose servelets share `Arc<MemStore>` backends — the
/// in-memory stand-in for a durable store: worker death loses the
/// in-memory refs, the chunks survive in the Arc. The respawn factory
/// reopens the same store and restores the refs last saved to `refs`.
type RefsMap = Arc<Mutex<HashMap<u64, String>>>;
type MemCluster = Arc<Cluster<Arc<MemStore>>>;

fn supervised_mem_cluster(n: u64) -> (MemCluster, Vec<Arc<MemStore>>, RefsMap) {
    let stores: Vec<Arc<MemStore>> = (0..n).map(|_| Arc::new(MemStore::new())).collect();
    let cluster = Cluster::from_stores(
        (0..n).zip(stores.iter().cloned()).collect(),
        TreeConfig::test_config(),
    );
    let refs: Arc<Mutex<HashMap<u64, String>>> = Arc::new(Mutex::new(HashMap::new()));
    let respawn_stores = stores.clone();
    let respawn_refs = Arc::clone(&refs);
    cluster.set_respawn(move |id| {
        Ok(Respawned {
            store: Arc::clone(&respawn_stores[id as usize]),
            refs: respawn_refs.lock().get(&id).cloned(),
        })
    });
    (Arc::new(cluster), stores, refs)
}

/// Persist every servelet's branch heads into the shared refs map (the
/// moral equivalent of the CLI session's durable `refs` files).
fn save_refs(cluster: &Cluster<Arc<MemStore>>, refs: &Mutex<HashMap<u64, String>>) {
    for (slot, id) in cluster.ids().into_iter().enumerate() {
        let text = cluster.on_node(slot, |db| db.dump_refs()).unwrap();
        refs.lock().insert(id, text);
    }
}

fn fast_rpc(cluster: &Cluster<impl forkbase_store::SweepStore + Send + 'static>) {
    let mut cfg = cluster.rpc_config();
    cfg.deadline = Duration::from_millis(60);
    cfg.retry.base_backoff = Duration::from_millis(2);
    cluster.set_rpc_config(cfg);
}

#[test]
fn deadlines_bound_every_routed_verb() {
    let c = Cluster::new(2, TreeConfig::test_config());
    fast_rpc(&c);
    c.put_string("stuck", "v".into(), PutOptions::default())
        .unwrap();

    // Dropped requests: the outcome is known immediately (compressed
    // simulated time), the error is the structured timeout.
    c.arm_chaos(ChaosPlan::seeded(1).drop_first(u32::MAX));
    let t = Instant::now();
    let err = c.get("stuck", "master").unwrap_err();
    assert_eq!(err.code(), "servelet_timeout");
    assert!(matches!(err, DbError::ServeletTimeout { .. }));
    assert!(t.elapsed() < Duration::from_secs(2), "{:?}", t.elapsed());

    // Scatter verbs are bounded by ONE shared deadline window, not one
    // deadline per servelet.
    let t = Instant::now();
    assert_eq!(c.stats().unwrap_err().code(), "servelet_timeout");
    assert!(t.elapsed() < Duration::from_secs(2), "{:?}", t.elapsed());
    c.disarm_chaos();

    // Delayed replies: the caller really waits out the deadline against a
    // live worker, then gets the same structured timeout.
    c.arm_chaos(ChaosPlan::seeded(2).delays(1000));
    let t = Instant::now();
    let err = c.get("stuck", "master").unwrap_err();
    assert_eq!(err.code(), "servelet_timeout");
    let elapsed = t.elapsed();
    assert!(
        elapsed >= Duration::from_millis(60),
        "a delayed reply must wait out at least one real deadline: {elapsed:?}"
    );
    assert!(elapsed < Duration::from_secs(3), "{elapsed:?}");
    let report = c.disarm_chaos().unwrap();
    assert!(report.delays >= 1);

    // Sanity: disarmed, the cluster serves normally again.
    assert_eq!(c.get("stuck", "master").unwrap().value.as_str(), Some("v"));
}

#[test]
fn writes_never_retry_past_an_ambiguous_outcome() {
    let c = Cluster::new(2, TreeConfig::test_config());
    fast_rpc(&c);
    let retries = c.rpc_config().retry.max_attempts;
    assert!(retries > 1, "test needs a retrying policy");

    // Every reply is lost: each attempt is delivered, applies, and times
    // out — the canonical ambiguous outcome.
    c.arm_chaos(ChaosPlan::seeded(3).delays(1000));
    let err = c
        .put(
            "ambiguous",
            forkbase_types::Value::string("v1"),
            PutOptions::default(),
        )
        .unwrap_err();
    assert_eq!(err.code(), "servelet_timeout");
    let after_put = c.chaos_report().unwrap();
    assert_eq!(
        after_put.rpcs, 1,
        "a write must make exactly ONE attempt when the outcome is ambiguous"
    );

    // An idempotent read retries the full schedule.
    let err = c.get("ambiguous", "master").unwrap_err();
    assert_eq!(err.code(), "servelet_timeout");
    let after_get = c.disarm_chaos().unwrap();
    assert_eq!(
        after_get.rpcs - after_put.rpcs,
        u64::from(retries),
        "idempotent verbs retry per the policy"
    );

    // The ambiguity was real: the timed-out put DID apply. The caller was
    // told "outcome unknown", and a blind auto-retry would have committed
    // a duplicate version.
    let got = c.get("ambiguous", "master").unwrap();
    assert_eq!(got.value.as_str(), Some("v1"));
    let history = c
        .with_key("ambiguous", |db| {
            db.history("ambiguous", &forkbase::VersionSpec::branch("master"))
        })
        .unwrap()
        .unwrap();
    assert_eq!(history.len(), 1, "exactly one commit despite the timeout");
}

#[test]
fn supervisor_restarts_a_killed_servelet_to_full_health() {
    let (c, _stores, refs) = supervised_mem_cluster(3);
    fast_rpc(&c);
    let mut acked: Vec<(String, Uid)> = Vec::new();
    for i in 0..30 {
        let key = format!("k{i}");
        let commit = c
            .put_string(&key, format!("v{i}"), PutOptions::default())
            .unwrap();
        acked.push((key, commit.uid));
    }
    save_refs(&c, &refs);
    assert!(c.is_fully_healthy());

    let victim_slot = c.route("k0");
    let victim_id = c.ids()[victim_slot];
    c.kill_servelet(victim_slot).unwrap();
    let health = c.health();
    assert_eq!(health.len(), 3);
    let dead: Vec<u64> = health
        .iter()
        .filter(|h| h.state.as_str() == "dead")
        .map(|h| h.servelet)
        .collect();
    assert_eq!(dead, vec![victim_id]);
    assert!(!c.is_fully_healthy());

    // The background supervisor notices and restarts it.
    let supervisor = Supervisor::spawn(Arc::clone(&c), Duration::from_millis(10));
    let t = Instant::now();
    while !c.is_fully_healthy() {
        assert!(
            t.elapsed() < Duration::from_secs(10),
            "supervisor never healed the cluster"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    supervisor.stop();

    // No acked write lost: every committed version resolves by uid AND by
    // branch head (the respawn factory restored the persisted refs).
    for (key, uid) in &acked {
        let got = c.get(key, "master").unwrap();
        assert_eq!(got.uid, *uid, "{key} head drifted across restart");
        let uid = *uid;
        let by_uid = c
            .with_key(key, move |db| db.get_version(&uid))
            .unwrap()
            .unwrap();
        assert!(by_uid.value.as_str().is_some());
    }
    // And the revived servelet takes writes again.
    c.put_string("k0", "post-restart".into(), PutOptions::default())
        .unwrap();
    assert_eq!(
        c.get("k0", "master").unwrap().value.as_str(),
        Some("post-restart")
    );
}

#[test]
fn partial_variants_degrade_instead_of_failing() {
    let c = Cluster::new(3, TreeConfig::test_config());
    fast_rpc(&c);
    for i in 0..30 {
        c.put_string(&format!("k{i}"), format!("v{i}"), PutOptions::default())
            .unwrap();
    }
    let victim_slot = c.route("k0");
    let victim_id = c.ids()[victim_slot];
    c.kill_servelet(victim_slot).unwrap();

    // Strict scatter verbs fail wholesale…
    assert_eq!(c.stats().unwrap_err().code(), "servelet_unavailable");
    assert_eq!(c.list_keys().unwrap_err().code(), "servelet_unavailable");

    // …the partial variants serve what is reachable and say what is not.
    let stats = c.stats_partial();
    assert!(stats.is_degraded());
    assert_eq!(stats.degraded, vec![victim_id]);
    assert_eq!(stats.results.len(), 2);

    let keys = c.list_keys_partial();
    assert_eq!(keys.degraded, vec![victim_id]);
    let reachable: usize = keys.results.iter().map(|(_, k)| k.len()).sum();
    assert!(reachable > 0 && reachable < 30);

    // heads_partial: pairs owned by the dead servelet come back None.
    let pairs: Vec<(String, String)> = (0..30)
        .map(|i| (format!("k{i}"), "master".to_string()))
        .collect();
    let refs: Vec<(&str, &str)> = pairs
        .iter()
        .map(|(k, b)| (k.as_str(), b.as_str()))
        .collect();
    let heads = c.heads_partial(&refs).unwrap();
    assert_eq!(heads.degraded, vec![victim_id]);
    for (i, (key, _)) in pairs.iter().enumerate() {
        let dead_owner = c.route(key) == victim_slot;
        assert_eq!(
            heads.heads[i].is_none(),
            dead_owner,
            "{key}: None iff its owner is dead"
        );
    }
    // A data error on a REACHABLE servelet still fails the call.
    let live_key = pairs
        .iter()
        .map(|(k, _)| k.clone())
        .find(|k| c.route(k) != victim_slot)
        .unwrap();
    assert!(c
        .heads_partial(&[(live_key.as_str(), "no-such-branch")])
        .is_err());

    // map_range_partial degrades for a dead owner.
    let dead_key = pairs
        .iter()
        .map(|(k, _)| k.clone())
        .find(|k| c.route(k) == victim_slot)
        .unwrap();
    let page = c
        .map_range_partial(&dead_key, "master", None, None, 10)
        .unwrap();
    assert_eq!(page.degraded, vec![victim_id]);
    assert!(page.results.is_empty());

    // gc skips and reports the unreachable servelet.
    let gc = c.gc().unwrap();
    assert_eq!(gc.degraded, vec![victim_id]);
    assert_eq!(gc.reports.len(), 2);
}

#[test]
fn interrupted_rebalance_rolls_back_then_succeeds_after_restart() {
    let (c, _stores, refs) = supervised_mem_cluster(3);
    fast_rpc(&c);
    for i in 0..45 {
        c.put_string(&format!("k{i}"), format!("v{i}"), PutOptions::default())
            .unwrap();
    }
    save_refs(&c, &refs);
    let owners_before: Vec<(String, u64)> = (0..45)
        .map(|i| {
            let k = format!("k{i}");
            let o = c.owner_id(&k);
            (k, o)
        })
        .collect();

    // A dead servelet interrupts the rebalance in its copy phase: the add
    // fails, and placement is exactly as before (rollback).
    c.kill_servelet(0).unwrap();
    let err = c.add_servelet(Arc::new(MemStore::new())).unwrap_err();
    assert_eq!(err.code(), "servelet_unavailable");
    assert_eq!(c.len(), 3, "failed add leaves the membership unchanged");
    for (key, owner) in &owners_before {
        assert_eq!(c.owner_id(key), *owner, "{key} moved during a failed add");
    }

    // Heal, then retry: the id was burned (never reused), the add lands.
    let report = c.supervise_once();
    assert_eq!(report.restarted.len(), 1);
    assert!(c.is_fully_healthy());
    let new_id = c.add_servelet(Arc::new(MemStore::new())).unwrap();
    assert_eq!(c.len(), 4);
    assert!(new_id > 3, "the failed add burned an id: got {new_id}");

    // Every key is still readable, wherever it now lives.
    for (key, _) in &owners_before {
        assert!(c.get(key, "master").is_ok(), "{key} lost in rebalance");
    }
    assert_eq!(c.list_keys().unwrap().len(), 45);
}

/// The PR-3 recovery path driven end-to-end from the cluster layer: a
/// FileStore-backed servelet dies mid-`write_batch` (its store tears the
/// batch like a power cut), the supervisor restarts it by reopening the
/// packs + refs, and every ACKED version is served again — the torn batch
/// was never acked and is gone.
#[test]
fn filestore_servelet_killed_mid_batch_recovers_every_acked_write() {
    let root =
        std::env::temp_dir().join(format!("forkbase-chaos-filestore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let servelet_dir = {
        let root = root.clone();
        move |id: u64| root.join(format!("servelet-{id}"))
    };

    type Store = Arc<FaultyStore<FileStore>>;
    let mut stores: HashMap<u64, Store> = HashMap::new();
    let mut pairs: Vec<(u64, Store)> = Vec::new();
    for id in 0..2u64 {
        let store: Store = Arc::new(FaultyStore::new(
            FileStore::open(servelet_dir(id).join("chunks")).unwrap(),
        ));
        stores.insert(id, Arc::clone(&store));
        pairs.push((id, store));
    }
    let c = Cluster::from_stores(pairs, TreeConfig::test_config());
    fast_rpc(&c);
    let refs: Arc<Mutex<HashMap<u64, String>>> = Arc::new(Mutex::new(HashMap::new()));
    let respawn_refs = Arc::clone(&refs);
    c.set_respawn(move |id| {
        // PR-3 crash recovery for real: a FRESH FileStore::open over the
        // dead servelet's directory (packs recovered, torn tails dropped),
        // plus the refs persisted at the last save.
        let store = FileStore::open(servelet_dir(id).join("chunks"))?;
        Ok(Respawned {
            store: Arc::new(FaultyStore::new(store)),
            refs: respawn_refs.lock().get(&id).cloned(),
        })
    });

    // Acked writes, through the cluster batch path.
    let mut acked: Vec<(String, Uid)> = Vec::new();
    for round in 0..3 {
        let keys: Vec<String> = (0..10).map(|i| format!("r{round}-k{i}")).collect();
        let mut wb = c.write_batch();
        for (i, key) in keys.iter().enumerate() {
            wb.put(
                key,
                forkbase_types::Value::string(format!("r{round}v{i}")),
                &PutOptions::default(),
            );
        }
        // Outcomes come back in batch order.
        for (key, outcome) in keys.iter().zip(wb.commit().unwrap()) {
            match outcome {
                forkbase::BatchOutcome::Committed(commit) => {
                    acked.push((key.clone(), commit.uid));
                }
                other => panic!("expected a commit for {key}, got {other:?}"),
            }
        }
    }
    assert_eq!(acked.len(), 30);
    // Durability point: sync every store and persist refs (the CLI's
    // `save`), exactly what must survive the crash.
    for (slot, id) in c.ids().into_iter().enumerate() {
        let text = c
            .on_node(slot, |db| {
                ChunkStore::sync(db.store())?;
                Ok::<_, DbError>(db.dump_refs())
            })
            .unwrap()
            .unwrap();
        refs.lock().insert(id, text);
    }

    // Mid-batch crash: the victim's store tears the next batch after two
    // chunks, the commit errors (NOT acked), and we kill the worker — a
    // servelet dying in the middle of a write_batch.
    let victim_key = "r0-k0";
    let victim_slot = c.route(victim_key);
    let victim_id = c.ids()[victim_slot];
    stores[&victim_id].inject_write(WriteFault::FailPutBatchAfter(2));
    // Keys that provably route to the victim, so the torn store is the
    // one its batch group commits through.
    let torn_keys: Vec<String> = (0..)
        .map(|i| format!("torn-{i}"))
        .filter(|k| c.route(k) == victim_slot)
        .take(6)
        .collect();
    let mut wb = c.write_batch();
    for (i, key) in torn_keys.iter().enumerate() {
        wb.put(
            key,
            // Incompressible-ish payloads so the batch spans several chunks.
            forkbase_types::Value::string(format!("torn payload {i} {}", "x".repeat(200))),
            &PutOptions::default(),
        );
    }
    let torn_result = wb.commit();
    assert!(
        torn_result.is_err(),
        "a torn batch must error, never ack: {torn_result:?}"
    );
    c.kill_servelet(victim_slot).unwrap();

    // Release OUR handle on the dead servelet's store so the restart can
    // reopen the directory (FileStore holds an advisory lock).
    stores.remove(&victim_id);
    let report = c.supervise_once();
    assert!(
        report.restarted.contains(&victim_id),
        "supervisor must restart the dead servelet: {report:?}"
    );
    assert!(c.is_fully_healthy());

    // Every acked version is served from the reopened packs: by branch
    // head and by uid.
    for (key, uid) in &acked {
        let got = c.get(key, "master").unwrap();
        assert_eq!(got.uid, *uid, "{key} acked head lost across restart");
        let uid = *uid;
        let by_uid = c
            .with_key(key, move |db| db.get_version(&uid))
            .unwrap()
            .unwrap();
        assert!(by_uid.value.as_str().is_some(), "{key} version unreadable");
    }
    // The torn batch is wholly absent — it was never acked.
    for key in &torn_keys {
        if c.route(key) == victim_slot {
            assert!(
                matches!(c.get(key, "master"), Err(DbError::NoSuchKey(_))),
                "{key} from the torn batch must not exist"
            );
        }
    }
    drop(c);
    let _ = std::fs::remove_dir_all(&root);
}

// ----------------------------------------------------------------------
// Replication failover schedules
// ----------------------------------------------------------------------

/// Kill-primary-during-ship: a primary dies with acked writes still
/// sitting in its replica's ship log (captured, not yet shipped — the
/// ship is mid-flight by construction). The supervisor, past the
/// failover threshold, promotes the replica instead of restarting, and
/// every acked write survives with its exact head.
#[test]
fn kill_primary_during_ship_failover_promotes_and_loses_nothing() {
    let (c, _stores, refs) = supervised_mem_cluster(2);
    fast_rpc(&c);
    // Threshold 1: one failed probe is enough — promote, don't restart.
    c.set_failover_threshold(Some(1));
    let pid = c.ids()[0];
    let rid = c.add_replica(pid, Arc::new(MemStore::new())).unwrap();

    // Acked writes with the ship log deliberately left hot: the captures
    // exist only on the primary and in the router's pending log.
    let mut acked: Vec<(String, Uid)> = Vec::new();
    for i in 0..30 {
        let key = format!("k{i}");
        let commit = c
            .put_string(&key, format!("v{i}"), PutOptions::default())
            .unwrap();
        acked.push((key, commit.uid));
    }
    let lagging = c
        .replication_status()
        .primaries
        .iter()
        .find(|p| p.primary == pid)
        .unwrap()
        .replicas[0]
        .clone();
    assert!(lagging.lag > 0, "the schedule needs a hot ship log");
    save_refs(&c, &refs);

    c.kill_servelet(0).unwrap();
    let report = c.supervise_once();
    assert_eq!(
        report.promoted,
        vec![(pid, rid)],
        "past the threshold the supervisor must fail over, not restart: {report:?}"
    );
    assert!(report.restarted.is_empty());
    assert!(c.is_fully_healthy());
    assert!(!c.ids().contains(&pid));

    // Zero acked writes lost — including the ones that were only in the
    // ship log when the primary died.
    for (key, uid) in &acked {
        let got = c.get(key, "master").unwrap();
        assert_eq!(got.uid, *uid, "{key} lost across kill-during-ship failover");
    }
}

/// Promote-with-lag: promotion of a replica that is *behind* drains its
/// ship log first (the payloads are self-contained), so even a manual
/// promote of a lagging replica under a dead primary loses nothing.
#[test]
fn promote_with_lag_drains_the_ship_log_first() {
    let (c, _stores, _refs) = supervised_mem_cluster(2);
    fast_rpc(&c);
    let pid = c.ids()[0];
    let rid = c.add_replica(pid, Arc::new(MemStore::new())).unwrap();
    let mut acked: Vec<(String, Uid)> = Vec::new();
    for i in 0..25 {
        let key = format!("lag-{i}");
        let commit = c
            .put_string(&key, format!("v{i}"), PutOptions::default())
            .unwrap();
        acked.push((key, commit.uid));
    }
    // The replica is visibly behind, and stays behind: no ship pass runs.
    let status = c.replication_status();
    let r = &status
        .primaries
        .iter()
        .find(|p| p.primary == pid)
        .unwrap()
        .replicas[0];
    assert!(r.lag > 0 && r.pending > 0);

    c.kill_servelet(0).unwrap();
    c.promote_replica(rid).unwrap();
    for (key, uid) in &acked {
        let got = c.get(key, "master").unwrap();
        assert_eq!(got.uid, *uid, "{key} lost in promote-with-lag");
    }
}

/// Split-brain prevention: after a failover the retired primary's id is
/// gone from the topology for good — it cannot be restarted, supervision
/// never resurrects it, and no routed verb can reach it, even though the
/// old process's store still exists.
#[test]
fn failover_retires_the_old_primary_for_good() {
    let (c, _stores, _refs) = supervised_mem_cluster(2);
    fast_rpc(&c);
    c.set_failover_threshold(Some(1));
    let pid = c.ids()[0];
    let rid = c.add_replica(pid, Arc::new(MemStore::new())).unwrap();
    c.put_string("sb", "v1".into(), PutOptions::default())
        .unwrap();
    c.kill_servelet(0).unwrap();
    let report = c.supervise_once();
    assert_eq!(report.promoted, vec![(pid, rid)]);

    // The retired id is unknown everywhere: restart refuses, the topology
    // record no longer carries it, supervision sees a healthy cluster.
    let err = c.restart_servelet(pid).unwrap_err();
    assert!(matches!(err, DbError::InvalidInput(_)), "got {err:?}");
    assert!(!c.topology().servelet_ids.contains(&pid));
    let report = c.supervise_once();
    assert!(report.restarted.is_empty() && report.promoted.is_empty());
    assert_eq!(report.alive, c.ids());

    // Ids are never reused: future members can't collide with the ghost.
    let new_id = c.add_servelet(Arc::new(MemStore::new())).unwrap();
    assert!(new_id > pid && new_id > rid);
    // And writes keep landing on the promoted slot, not the ghost.
    c.put_string("sb", "v2".into(), PutOptions::default())
        .unwrap();
    assert_eq!(c.get("sb", "master").unwrap().value.as_str(), Some("v2"));
}

// ----------------------------------------------------------------------
// Seeded chaos property suite (CI chaos job)
// ----------------------------------------------------------------------

/// Writes the failing seed to `CHAOS_FAILURE_SEED.txt` when a chaos round
/// panics, so CI uploads it and the run replays locally from the seed.
struct SeedGuard(u64);

impl Drop for SeedGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = std::fs::write(
                "CHAOS_FAILURE_SEED.txt",
                format!(
                    "seed {}\nreplay: cargo test --release -- --ignored chaos\n",
                    self.0
                ),
            );
        }
    }
}

fn chaos_round(seed: u64) {
    let _guard = SeedGuard(seed);
    let (c, _stores, refs) = supervised_mem_cluster(4);
    fast_rpc(&c);

    // Phase A: a healthy baseline. These keys are never written again;
    // their heads must survive everything below.
    let mut baseline: Vec<(String, Uid)> = Vec::new();
    for i in 0..40 {
        let key = format!("base-{i}");
        let commit = c
            .put_string(&key, format!("stable {i}"), PutOptions::default())
            .unwrap();
        baseline.push((key, commit.uid));
    }
    save_refs(&c, &refs);

    // Phase B: hammer the cluster under a seeded fault schedule. Crashes
    // are capped so the supervisor can keep up between rounds.
    c.arm_chaos(
        ChaosPlan::seeded(seed)
            .drops(50)
            .delays(40)
            .duplicates(60)
            .crashes_before(15)
            .crashes_after(15)
            .max_crashes(6),
    );
    let bound = Duration::from_secs(3);
    let mut churn_acked: Vec<(String, Uid)> = Vec::new();
    for round in 0..6 {
        for i in 0..12 {
            // Reads: any structured outcome is fine; hanging is not.
            let t = Instant::now();
            let _ = c.get(&format!("base-{}", (round * 7 + i) % 40), "master");
            assert!(
                t.elapsed() < bound,
                "get exceeded its bound: {:?}",
                t.elapsed()
            );

            // Writes: ack ⟹ the version must survive. Errors are fine
            // (including ambiguous ones) — but must return in bounded time.
            let key = format!("churn-{round}-{i}");
            let t = Instant::now();
            if let Ok(commit) = c.put_string(&key, format!("c{round}/{i}"), PutOptions::default()) {
                churn_acked.push((key, commit.uid));
            }
            assert!(
                t.elapsed() < bound,
                "put exceeded its bound: {:?}",
                t.elapsed()
            );

            // Scatter verbs degrade, never hang.
            let t = Instant::now();
            let _ = c.stats_partial();
            assert!(
                t.elapsed() < bound,
                "stats exceeded its bound: {:?}",
                t.elapsed()
            );
        }
        // Supervision between rounds restarts whatever the plan crashed.
        c.supervise_once();
    }
    let report = c.disarm_chaos().unwrap();
    assert!(report.rpcs > 0);

    // Phase C: heal completely, then audit.
    let t = Instant::now();
    while !c.is_fully_healthy() {
        c.supervise_once();
        assert!(
            t.elapsed() < Duration::from_secs(10),
            "cluster never returned to full health (seed {seed})"
        );
    }
    // Baseline heads are intact (their refs were saved before the chaos;
    // restarts restored them).
    for (key, uid) in &baseline {
        let got = c.get(key, "master").unwrap();
        assert_eq!(got.uid, *uid, "baseline head {key} drifted (seed {seed})");
    }
    // No ACKED churn write lost: every acked uid still resolves on its
    // owner. (Branch heads of churn keys may have been reset by a restart
    // — the shared-store chunks and the uid index survive; that is the
    // "no acked write lost" contract.)
    for (key, uid) in &churn_acked {
        let uid = *uid;
        let owner_key = key.clone();
        let got = c
            .with_key(&owner_key, move |db| db.get_version(&uid))
            .unwrap();
        assert!(
            got.is_ok(),
            "acked write {key} (uid {uid}) lost (seed {seed}): {got:?}"
        );
    }
}

#[test]
#[ignore = "chaos: seeded fault-schedule suite; run with --ignored chaos"]
fn chaos_seeded_fault_schedule_suite() {
    for seed in [1, 42, 7_777, 0xDEAD_BEEF] {
        chaos_round(seed);
    }
}

/// One seeded replication-chaos round: every primary carries a replica,
/// the message layer misbehaves per the seed, and primaries are killed
/// mid-stream on a seeded schedule. Supervision (ship pump + threshold
/// failover + restart) must return the cluster to full health with every
/// acked write resolvable and every baseline head intact.
fn replication_chaos_round(seed: u64) {
    let _guard = SeedGuard(seed);
    let (c, _stores, refs) = supervised_mem_cluster(3);
    fast_rpc(&c);
    c.set_failover_threshold(Some(2));
    for pid in c.ids() {
        c.add_replica(pid, Arc::new(MemStore::new())).unwrap();
    }

    // Baseline: written, shipped everywhere, refs saved. These heads must
    // survive every failover below.
    let mut baseline: Vec<(String, Uid)> = Vec::new();
    for i in 0..30 {
        let key = format!("base-{i}");
        let commit = c
            .put_string(&key, format!("stable {i}"), PutOptions::default())
            .unwrap();
        baseline.push((key, commit.uid));
    }
    save_refs(&c, &refs);
    let ship = c.ship_replication();
    assert!(ship.failed.is_empty(), "baseline ship failed: {ship:?}");

    // Seeded xorshift* schedule driver (same generator the cluster tests
    // use), deciding which primary dies after which round.
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    };

    c.arm_chaos(ChaosPlan::seeded(seed).drops(40).delays(30).duplicates(50));
    let bound = Duration::from_secs(3);
    let mut churn_acked: Vec<(String, Uid)> = Vec::new();
    for round in 0..5u64 {
        for i in 0..10u64 {
            let key = format!("churn-{round}-{i}");
            let t = Instant::now();
            if let Ok(commit) = c.put_string(&key, format!("c{round}/{i}"), PutOptions::default()) {
                churn_acked.push((key, commit.uid));
            }
            assert!(t.elapsed() < bound, "put exceeded bound: {:?}", t.elapsed());
            let t = Instant::now();
            let _ = c.get_from_replica(&format!("base-{}", (round * 7 + i) % 30), "master");
            assert!(
                t.elapsed() < bound,
                "replica read exceeded bound: {:?}",
                t.elapsed()
            );
        }
        // Kill a seeded-random primary while its ship log is hot.
        if round % 2 == 0 {
            let slot = (next() % c.len() as u64) as usize;
            let _ = c.kill_servelet(slot);
        }
        // Supervision pumps the ship log and, past the threshold, promotes
        // the dead primary's replica (restart-in-place otherwise).
        for _ in 0..3 {
            c.supervise_once();
        }
    }
    c.disarm_chaos().unwrap();

    // Heal completely.
    let t = Instant::now();
    while !c.is_fully_healthy() {
        c.supervise_once();
        assert!(
            t.elapsed() < Duration::from_secs(10),
            "cluster never healed (seed {seed})"
        );
    }
    // Baseline heads intact wherever the slot now points (original
    // primary, restarted primary, or promoted replica).
    for (key, uid) in &baseline {
        let got = c.get(key, "master").unwrap();
        assert_eq!(got.uid, *uid, "baseline {key} drifted (seed {seed})");
    }
    // Zero acked churn writes lost: each resolves by uid on its owner.
    for (key, uid) in &churn_acked {
        let uid = *uid;
        let owner_key = key.clone();
        let got = c
            .with_key(&owner_key, move |db| db.get_version(&uid))
            .unwrap();
        assert!(
            got.is_ok(),
            "acked write {key} (uid {uid}) lost (seed {seed}): {got:?}"
        );
    }
}

#[test]
#[ignore = "chaos_replication: seeded kill-primary schedules; run with --ignored chaos_replication"]
fn chaos_replication_seeded_kill_primary_suite() {
    for seed in [3, 99, 12_345, 0xF0CACC1A] {
        replication_chaos_round(seed);
    }
}
