//! Integration tests for the PR 4 data-access API: snapshots, streaming
//! cursors, and atomic write batches — plus equivalence of the reworked
//! read verbs with their pre-snapshot behavior.

use std::collections::BTreeMap;
use std::io::Read;

use bytes::Bytes;
use forkbase::{BatchOutcome, DbError, ForkBase, PutOptions, VersionSpec};
use forkbase_postree::{MapEdit, TreeConfig};
use forkbase_store::MemStore;
use forkbase_types::Value;

fn db() -> ForkBase<MemStore> {
    ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
}

fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s & 0xff) as u8
        })
        .collect()
}

fn k(i: u32) -> Bytes {
    Bytes::from(format!("key-{i:05}"))
}

fn v(i: u32) -> Bytes {
    Bytes::from(format!("value-{i}"))
}

fn put_map(db: &ForkBase<MemStore>, key: &str, n: u32) {
    let pairs: Vec<(Bytes, Bytes)> = (0..n).map(|i| (k(i), v(i))).collect();
    let map = db.new_map(pairs).unwrap();
    db.put(key, map, &PutOptions::default()).unwrap();
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

#[test]
fn snapshot_pins_a_version_across_commits() {
    let db = db();
    db.put("doc", Value::string("v1"), &PutOptions::default())
        .unwrap();
    let snap = db.snapshot("doc", &VersionSpec::default()).unwrap();
    db.put("doc", Value::string("v2"), &PutOptions::default())
        .unwrap();
    assert_eq!(snap.value().as_str(), Some("v1"));
    assert_eq!(snap.key(), "doc");
    // Clones share the resolved FNode and stay pinned too.
    let clone = snap.clone();
    assert_eq!(clone.uid(), snap.uid());
    assert_eq!(clone.value().as_str(), Some("v1"));
    // The live branch moved on.
    assert_eq!(db.get("doc", "master").unwrap().value.as_str(), Some("v2"));
}

#[test]
fn snapshot_counterparts_match_materializing_verbs() {
    let db = db();
    put_map(&db, "table", 2000);
    let got = db.get("table", "master").unwrap();
    let snap = db.snapshot("table", &VersionSpec::default()).unwrap();

    assert_eq!(
        snap.map_entries().unwrap(),
        db.map_entries(&got.value).unwrap()
    );
    assert_eq!(
        snap.map_get(&k(700)).unwrap(),
        db.map_get(&got.value, &k(700)).unwrap()
    );
    assert_eq!(
        snap.map_select(Some(&k(10)), Some(&k(20))).unwrap(),
        db.map_select(&got.value, Some(&k(10)), Some(&k(20)))
            .unwrap()
    );
    // Meta agrees with the verb path.
    assert_eq!(snap.meta(), db.meta(&snap.uid()).unwrap());
    // Proofs generated from a snapshot verify against its uid.
    let proof = snap.prove_entry(&k(3)).unwrap();
    let value = db.verify_entry_proof(&snap.uid(), &k(3), &proof).unwrap();
    assert_eq!(value, Some(v(3)));
}

#[test]
fn snapshot_export_matches_verb_export() {
    let db = db();
    put_map(&db, "table", 300);
    let content = pseudo_random(100_000, 9);
    db.put_blob("blob", Bytes::from(content.clone()), &PutOptions::default())
        .unwrap();
    db.put(
        "list",
        db.new_list((0..200).map(v).collect()).unwrap(),
        &PutOptions::default(),
    )
    .unwrap();

    for key in ["table", "blob", "list"] {
        let mut via_verb = Vec::new();
        let n1 = db
            .export(key, &VersionSpec::default(), &mut via_verb)
            .unwrap();
        let mut via_snap = Vec::new();
        let snap = db.snapshot(key, &VersionSpec::default()).unwrap();
        let n2 = snap.export(&mut via_snap).unwrap();
        assert_eq!(via_verb, via_snap, "export of {key}");
        assert_eq!(n1, n2);
    }
}

// ---------------------------------------------------------------------
// Streaming cursors
// ---------------------------------------------------------------------

#[test]
fn map_range_bounds_match_btreemap_model() {
    let db = db();
    put_map(&db, "table", 1000);
    let snap = db.snapshot("table", &VersionSpec::default()).unwrap();
    let model: BTreeMap<Bytes, Bytes> = (0..1000).map(|i| (k(i), v(i))).collect();

    let collect = |range: Vec<Result<(Bytes, Bytes), DbError>>| -> Vec<(Bytes, Bytes)> {
        range.into_iter().map(|r| r.unwrap()).collect()
    };

    // start..end (half-open).
    let got = collect(
        snap.map_range(k(100).as_ref()..k(110).as_ref())
            .unwrap()
            .collect(),
    );
    let want: Vec<_> = model
        .range(k(100)..k(110))
        .map(|(a, b)| (a.clone(), b.clone()))
        .collect();
    assert_eq!(got, want);

    // start..=end (inclusive).
    let got = collect(
        snap.map_range(k(100).as_ref()..=k(110).as_ref())
            .unwrap()
            .collect(),
    );
    assert_eq!(got.len(), 11);
    assert_eq!(got.last().unwrap().0, k(110));

    // ..end and start.. and full.
    let until = collect(snap.map_range(..k(5).as_ref()).unwrap().collect());
    assert_eq!(until.len(), 5);
    let from = collect(snap.map_range(k(995).as_ref()..).unwrap().collect());
    assert_eq!(from.len(), 5);
    let all = collect(snap.map_iter().unwrap().collect());
    assert_eq!(all.len(), 1000);

    // Exclusive start via (Bound, Bound).
    use std::ops::Bound;
    let got = collect(
        snap.map_range::<&[u8], _>((
            Bound::Excluded(k(100).as_ref()),
            Bound::Included(k(103).as_ref()),
        ))
        .unwrap()
        .collect(),
    );
    assert_eq!(
        got.iter().map(|(a, _)| a.clone()).collect::<Vec<_>>(),
        vec![k(101), k(102), k(103)]
    );

    // Bounds that match nothing.
    assert!(collect(snap.map_range(b"zzz".as_slice()..).unwrap().collect()).is_empty());
}

#[test]
fn list_iter_matches_list_elements() {
    let db = db();
    let elements: Vec<Bytes> = (0..1500).map(v).collect();
    db.put(
        "list",
        db.new_list(elements.clone()).unwrap(),
        &PutOptions::default(),
    )
    .unwrap();
    let got = db.get("list", "master").unwrap();
    let snap = db.snapshot("list", &VersionSpec::default()).unwrap();
    let streamed: Vec<Bytes> = snap.list_iter().unwrap().map(|e| e.unwrap()).collect();
    assert_eq!(streamed, db.list_elements(&got.value).unwrap());
    assert_eq!(streamed, elements);
}

#[test]
fn blob_reader_streams_through_a_small_buffer() {
    let db = db();
    let content = pseudo_random(2 * 1024 * 1024, 77);
    db.put_blob("blob", Bytes::from(content.clone()), &PutOptions::default())
        .unwrap();
    let snap = db.snapshot("blob", &VersionSpec::default()).unwrap();

    let mut reader = snap.blob_reader().unwrap();
    let mut buf = [0u8; 8 * 1024];
    let mut out = Vec::new();
    loop {
        let n = reader.read(&mut buf).unwrap();
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    assert_eq!(out, content);
    // And the materializing wrapper agrees.
    let got = db.get("blob", "master").unwrap();
    assert_eq!(db.blob_read(&got.value).unwrap(), content);
    assert_eq!(snap.blob_read().unwrap(), content);
}

#[test]
fn cursor_paths_reject_wrong_types() {
    let db = db();
    db.put("scalar", Value::Int(7), &PutOptions::default())
        .unwrap();
    let snap = db.snapshot("scalar", &VersionSpec::default()).unwrap();
    assert!(matches!(snap.map_iter(), Err(DbError::TypeMismatch { .. })));
    assert!(matches!(
        snap.list_iter(),
        Err(DbError::TypeMismatch { .. })
    ));
    assert!(matches!(
        snap.blob_reader(),
        Err(DbError::TypeMismatch { .. })
    ));
}

// ---------------------------------------------------------------------
// Write batches
// ---------------------------------------------------------------------

#[test]
fn write_batch_commits_across_keys() {
    let db = db();
    let mut batch = db.write_batch();
    batch
        .put("a", Value::Int(1), &PutOptions::default())
        .put("b", Value::Int(2), &PutOptions::default())
        .put("c", Value::Int(3), &PutOptions::default());
    assert_eq!(batch.len(), 3);
    let outcomes = batch.commit().unwrap();
    assert_eq!(outcomes.len(), 3);
    for (key, expect) in [("a", 1), ("b", 2), ("c", 3)] {
        assert_eq!(db.get(key, "master").unwrap().value, Value::Int(expect));
    }
    // Outcomes carry the real uids.
    let BatchOutcome::Committed(c) = &outcomes[0] else {
        panic!("put outcome must be a commit");
    };
    assert_eq!(db.head("a", "master").unwrap(), c.uid);
    // Each key's history is a proper chain (verifiable).
    db.verify_branch("a", "master").unwrap();
}

#[test]
fn write_batch_chains_ops_on_the_same_branch() {
    let db = db();
    let mut batch = db.write_batch();
    batch
        .put("doc", Value::string("first"), &PutOptions::default())
        .put("doc", Value::string("second"), &PutOptions::default());
    let outcomes = batch.commit().unwrap();
    let uid1 = outcomes[0].commit().unwrap().uid;
    let uid2 = outcomes[1].commit().unwrap().uid;
    assert_eq!(db.head("doc", "master").unwrap(), uid2);
    // The second commit's base is the first: one linear chain.
    let meta = db.meta(&uid2).unwrap();
    assert_eq!(meta.bases, vec![uid1]);
    let history = db.history("doc", &VersionSpec::default()).unwrap();
    assert_eq!(history.len(), 2);
}

#[test]
fn write_batch_supports_map_edits_blobs_and_deletes() {
    let db = db();
    put_map(&db, "table", 100);
    db.put("victim", Value::Int(0), &PutOptions::default())
        .unwrap();
    db.branch("victim", "master", "scratch").unwrap();

    let content = pseudo_random(300_000, 5);
    let mut batch = db.write_batch();
    batch
        .map_edits(
            "table",
            vec![
                MapEdit::put(k(1_000_000), Bytes::from_static(b"appended")),
                MapEdit::delete(k(5)),
            ],
            &PutOptions::default(),
        )
        .put_blob("blob", Bytes::from(content.clone()), &PutOptions::default())
        .delete_branch("victim", "scratch");
    let outcomes = batch.commit().unwrap();
    assert_eq!(outcomes.len(), 3);
    assert_eq!(
        outcomes[2],
        BatchOutcome::Deleted {
            key: "victim".into(),
            branch: "scratch".into()
        }
    );

    let table = db.get("table", "master").unwrap();
    assert_eq!(
        db.map_get(&table.value, &k(1_000_000)).unwrap(),
        Some(Bytes::from_static(b"appended"))
    );
    assert_eq!(db.map_get(&table.value, &k(5)).unwrap(), None);
    // The map-edit commit chains on the previous head.
    assert_eq!(
        db.history("table", &VersionSpec::default()).unwrap().len(),
        2
    );

    let blob = db.get("blob", "master").unwrap();
    assert_eq!(db.blob_read(&blob.value).unwrap(), content);

    assert!(matches!(
        db.head("victim", "scratch"),
        Err(DbError::NoSuchBranch { .. })
    ));
    assert!(db.head("victim", "master").is_ok());
}

#[test]
fn write_batch_map_edits_chain_on_in_batch_puts() {
    // A map-edit op whose base head was created earlier in the SAME batch
    // must read the staged value (its FNode is not in the store until
    // commit's put_batch).
    let db = db();
    let pairs: Vec<(Bytes, Bytes)> = (0..50).map(|i| (k(i), v(i))).collect();
    let map = db.new_map(pairs).unwrap();
    let mut batch = db.write_batch();
    batch
        .put("fresh", map, &PutOptions::default())
        .map_edits(
            "fresh",
            vec![MapEdit::put(k(100), Bytes::from_static(b"chained"))],
            &PutOptions::default(),
        )
        .map_edits("fresh", vec![MapEdit::delete(k(0))], &PutOptions::default());
    let outcomes = batch.commit().unwrap();
    assert_eq!(outcomes.len(), 3);
    let got = db.get("fresh", "master").unwrap();
    assert_eq!(
        db.map_get(&got.value, &k(100)).unwrap(),
        Some(Bytes::from_static(b"chained"))
    );
    assert_eq!(db.map_get(&got.value, &k(0)).unwrap(), None);
    assert_eq!(db.map_get(&got.value, &k(1)).unwrap(), Some(v(1)));
    // Three chained commits, verifiable end to end.
    assert_eq!(
        db.history("fresh", &VersionSpec::default()).unwrap().len(),
        3
    );
    db.verify_branch("fresh", "master").unwrap();
}

#[test]
fn blob_streams_reject_lying_length() {
    // A BlobRef whose `len` disagrees with its chunk tree must fail every
    // read path — materializing, streaming reader, and export.
    use forkbase_postree::BlobRef;
    let db = db();
    let content = pseudo_random(50_000, 21);
    db.put_blob("b", Bytes::from(content), &PutOptions::default())
        .unwrap();
    let honest = db.get("b", "master").unwrap();
    let r = honest.value.blob_ref().unwrap();
    let lying = Value::Blob(BlobRef {
        len: r.len + 1,
        ..r
    });
    db.put("liar", lying, &PutOptions::default()).unwrap();
    let snap = db.snapshot("liar", &VersionSpec::default()).unwrap();

    assert!(snap.blob_read().is_err(), "materializing read must fail");
    let mut sink = Vec::new();
    assert!(snap.export(&mut sink).is_err(), "export must fail");
    let mut reader = snap.blob_reader().unwrap();
    let mut buf = [0u8; 4096];
    let err = loop {
        match reader.read(&mut buf) {
            Ok(0) => panic!("stream must not end cleanly"),
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn failed_write_batch_moves_no_heads() {
    let db = db();
    db.put("a", Value::Int(1), &PutOptions::default()).unwrap();
    let head_before = db.head("a", "master").unwrap();
    let stat_before = db.stat();

    // Second op fails (deleting a branch that doesn't exist), so the
    // already-built first op must not land either.
    let mut batch = db.write_batch();
    batch
        .put("a", Value::Int(2), &PutOptions::default())
        .delete_branch("ghost", "master");
    assert!(matches!(batch.commit(), Err(DbError::NoSuchKey(_))));

    assert_eq!(db.head("a", "master").unwrap(), head_before);
    assert_eq!(db.get("a", "master").unwrap().value, Value::Int(1));
    let stat_after = db.stat();
    assert_eq!(stat_after.keys, stat_before.keys);
    assert_eq!(stat_after.branches, stat_before.branches);

    // Map edits against a missing branch also roll the batch back.
    let mut batch = db.write_batch();
    batch
        .put("a", Value::Int(3), &PutOptions::default())
        .map_edits(
            "a",
            vec![MapEdit::delete(k(0))],
            &PutOptions::on_branch("nope"),
        );
    assert!(matches!(batch.commit(), Err(DbError::NoSuchBranch { .. })));
    assert_eq!(db.head("a", "master").unwrap(), head_before);
}

#[test]
fn empty_write_batch_is_a_noop() {
    let db = db();
    let batch = db.write_batch();
    assert!(batch.is_empty());
    assert!(batch.commit().unwrap().is_empty());
}

#[test]
fn heads_reads_are_consistent_and_error_on_missing() {
    let db = db();
    let mut batch = db.write_batch();
    batch.put("x", Value::Int(1), &PutOptions::default()).put(
        "y",
        Value::Int(1),
        &PutOptions::default(),
    );
    batch.commit().unwrap();
    let heads = db.heads(&[("x", "master"), ("y", "master")]).unwrap();
    assert_eq!(heads.len(), 2);
    assert_eq!(heads[0], db.head("x", "master").unwrap());
    assert!(matches!(
        db.heads(&[("x", "master"), ("ghost", "master")]),
        Err(DbError::NoSuchKey(_))
    ));
}

#[test]
fn batch_chunks_survive_gc_after_commit() {
    // The GC gate is held across the whole batch: chunks written by the
    // batch are referenced by the time any collector can run.
    let db = db();
    let mut batch = db.write_batch();
    batch
        .put_blob(
            "blob",
            Bytes::from(pseudo_random(200_000, 3)),
            &PutOptions::default(),
        )
        .put("doc", Value::string("kept"), &PutOptions::default());
    batch.commit().unwrap();
    let report = db.gc().unwrap();
    assert_eq!(report.sweep.chunks_reclaimed, 0);
    db.verify_branch("blob", "master").unwrap();
    db.verify_branch("doc", "master").unwrap();
}
