//! End-to-end tests of the ForkBase verb set (paper Fig. 1 API layer):
//! Put, Get, List, Branch, Merge, Select, Stat, Export, Diff, Head,
//! Rename, Latest, Meta — plus tamper evidence under a malicious store.

use bytes::Bytes;
use forkbase::db::DbStat;
use forkbase::{DbError, ForkBase, PutOptions, ValueDiff, VersionSpec, DEFAULT_BRANCH};
use forkbase_postree::{MapEdit, MergePolicy, TreeConfig};
use forkbase_store::{ChunkStore, FaultMode, FaultyStore, MemStore};
use forkbase_types::Value;

fn db() -> ForkBase<MemStore> {
    ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
}

fn sample_pairs(n: u32) -> Vec<(Bytes, Bytes)> {
    (0..n)
        .map(|i| {
            (
                Bytes::from(format!("row-{i:06}")),
                Bytes::from(format!("data for row {i}")),
            )
        })
        .collect()
}

#[test]
fn put_get_head_on_default_branch() {
    let db = db();
    let commit = db
        .put("greeting", Value::string("hello"), &PutOptions::default())
        .unwrap();
    let got = db.get("greeting", DEFAULT_BRANCH).unwrap();
    assert_eq!(got.value.as_str(), Some("hello"));
    assert_eq!(got.uid, commit.uid);
    assert_eq!(db.head("greeting", DEFAULT_BRANCH).unwrap(), commit.uid);
}

#[test]
fn put_appends_history() {
    let db = db();
    let c1 = db
        .put(
            "doc",
            Value::string("v1"),
            &PutOptions::default().message("first"),
        )
        .unwrap();
    let c2 = db
        .put(
            "doc",
            Value::string("v2"),
            &PutOptions::default().message("second"),
        )
        .unwrap();
    assert_ne!(c1.uid, c2.uid);

    let history = db.history("doc", &VersionSpec::branch("master")).unwrap();
    assert_eq!(history.len(), 2);
    assert_eq!(history[0].uid, c2.uid);
    assert_eq!(history[0].message, "second");
    assert_eq!(history[0].bases, vec![c1.uid]);
    assert_eq!(history[1].uid, c1.uid);
    assert!(history[1].bases.is_empty());
    // Logical clock is monotone.
    assert!(history[0].logical_time > history[1].logical_time);
}

#[test]
fn get_version_retrieves_old_values() {
    let db = db();
    let c1 = db
        .put("doc", Value::string("old"), &PutOptions::default())
        .unwrap();
    db.put("doc", Value::string("new"), &PutOptions::default())
        .unwrap();
    let old = db.get_version(&c1.uid).unwrap();
    assert_eq!(old.value.as_str(), Some("old"));
}

#[test]
fn missing_key_and_branch_errors() {
    let db = db();
    assert!(matches!(
        db.get("ghost", "master"),
        Err(DbError::NoSuchKey(_))
    ));
    db.put("real", Value::Int(1), &PutOptions::default())
        .unwrap();
    assert!(matches!(
        db.get("real", "ghost-branch"),
        Err(DbError::NoSuchBranch { .. })
    ));
    assert!(matches!(
        db.get_version(&forkbase_crypto::sha256(b"nonexistent")),
        Err(DbError::NoSuchVersion(_))
    ));
}

#[test]
fn branch_fork_and_isolation() {
    let db = db();
    db.put("data", Value::string("base"), &PutOptions::default())
        .unwrap();
    db.branch("data", "master", "vendor-x").unwrap();

    // Both branches see the same head initially.
    assert_eq!(
        db.head("data", "master").unwrap(),
        db.head("data", "vendor-x").unwrap()
    );

    // Writes diverge.
    db.put(
        "data",
        Value::string("vendor version"),
        &PutOptions::on_branch("vendor-x"),
    )
    .unwrap();
    assert_eq!(
        db.get("data", "master").unwrap().value.as_str(),
        Some("base")
    );
    assert_eq!(
        db.get("data", "vendor-x").unwrap().value.as_str(),
        Some("vendor version")
    );
}

#[test]
fn branch_errors() {
    let db = db();
    db.put("k", Value::Int(1), &PutOptions::default()).unwrap();
    db.branch("k", "master", "dev").unwrap();
    assert!(matches!(
        db.branch("k", "master", "dev"),
        Err(DbError::BranchExists { .. })
    ));
    assert!(matches!(
        db.branch("k", "nope", "dev2"),
        Err(DbError::NoSuchBranch { .. })
    ));
    assert!(matches!(
        db.branch("ghost", "master", "dev"),
        Err(DbError::NoSuchKey(_))
    ));
}

#[test]
fn branch_from_historical_version() {
    let db = db();
    let c1 = db
        .put("k", Value::string("v1"), &PutOptions::default())
        .unwrap();
    db.put("k", Value::string("v2"), &PutOptions::default())
        .unwrap();
    db.branch_from_version("k", &c1.uid, "archaeology").unwrap();
    assert_eq!(
        db.get("k", "archaeology").unwrap().value.as_str(),
        Some("v1")
    );
}

#[test]
fn branch_from_wrong_key_version_rejected() {
    let db = db();
    let c = db.put("a", Value::Int(1), &PutOptions::default()).unwrap();
    db.put("b", Value::Int(2), &PutOptions::default()).unwrap();
    assert!(matches!(
        db.branch_from_version("b", &c.uid, "bad"),
        Err(DbError::InvalidInput(_))
    ));
}

#[test]
fn rename_and_delete_branch() {
    let db = db();
    db.put("k", Value::Int(1), &PutOptions::default()).unwrap();
    db.branch("k", "master", "temp").unwrap();
    db.rename_branch("k", "temp", "permanent").unwrap();
    assert!(db.head("k", "permanent").is_ok());
    assert!(matches!(
        db.head("k", "temp"),
        Err(DbError::NoSuchBranch { .. })
    ));
    assert!(matches!(
        db.rename_branch("k", "permanent", "master"),
        Err(DbError::BranchExists { .. })
    ));
    db.delete_branch("k", "permanent").unwrap();
    assert!(matches!(
        db.head("k", "permanent"),
        Err(DbError::NoSuchBranch { .. })
    ));
}

#[test]
fn list_and_latest() {
    let db = db();
    db.put("alpha", Value::Int(1), &PutOptions::default())
        .unwrap();
    db.put("beta", Value::Int(2), &PutOptions::default())
        .unwrap();
    db.branch("alpha", "master", "dev").unwrap();
    assert_eq!(
        db.list_keys(),
        vec!["alpha".to_string(), "beta".to_string()]
    );

    let latest = db.latest("alpha").unwrap();
    assert_eq!(latest.len(), 2);
    let names: Vec<_> = latest.iter().map(|b| b.name.as_str()).collect();
    assert_eq!(names, vec!["dev", "master"]);
}

#[test]
fn meta_exposes_commit_info() {
    let db = db();
    let c = db
        .put(
            "k",
            Value::Int(42),
            &PutOptions::default().author("alice").message("answer"),
        )
        .unwrap();
    let meta = db.meta(&c.uid).unwrap();
    assert_eq!(meta.author, "alice");
    assert_eq!(meta.message, "answer");
    assert_eq!(meta.value_type, forkbase_types::ValueType::Int);
}

#[test]
fn map_values_roundtrip_and_select() {
    let db = db();
    let map = db.new_map(sample_pairs(500)).unwrap();
    db.put("table", map, &PutOptions::default()).unwrap();
    let got = db.get("table", "master").unwrap();

    assert_eq!(
        db.map_get(&got.value, b"row-000123").unwrap(),
        Some(Bytes::from("data for row 123"))
    );
    assert_eq!(db.map_get(&got.value, b"missing").unwrap(), None);

    // Select: a key range (the paper's Select verb).
    let selected = db
        .map_select(&got.value, Some(b"row-000100"), Some(b"row-000110"))
        .unwrap();
    assert_eq!(selected.len(), 10);
    assert_eq!(selected[0].0, Bytes::from("row-000100"));

    let all = db.map_entries(&got.value).unwrap();
    assert_eq!(all.len(), 500);
}

#[test]
fn put_map_edits_commits_incrementally() {
    let db = db();
    let map = db.new_map(sample_pairs(300)).unwrap();
    db.put("table", map, &PutOptions::default()).unwrap();
    let chunks_before = db.store().chunk_count();

    db.put_map_edits(
        "table",
        vec![
            MapEdit::put(
                Bytes::from_static(b"row-000001"),
                Bytes::from_static(b"updated"),
            ),
            MapEdit::delete(Bytes::from_static(b"row-000002")),
        ],
        &PutOptions::default(),
    )
    .unwrap();

    let got = db.get("table", "master").unwrap();
    assert_eq!(
        db.map_get(&got.value, b"row-000001").unwrap(),
        Some(Bytes::from_static(b"updated"))
    );
    assert_eq!(db.map_get(&got.value, b"row-000002").unwrap(), None);

    // SIRI property 2 at the database level: the commit added few chunks.
    let added = db.store().chunk_count() - chunks_before;
    assert!(added < 20, "incremental commit created {added} chunks");
}

#[test]
fn blob_and_list_values() {
    let db = db();
    let content: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
    let blob = db.new_blob(&content).unwrap();
    db.put("file", blob, &PutOptions::default()).unwrap();
    let got = db.get("file", "master").unwrap();
    assert_eq!(db.blob_read(&got.value).unwrap(), content);

    let list = db
        .new_list((0..100).map(|i| Bytes::from(format!("item-{i}"))).collect())
        .unwrap();
    db.put("log", list, &PutOptions::default()).unwrap();
    let got = db.get("log", "master").unwrap();
    let elements = db.list_elements(&got.value).unwrap();
    assert_eq!(elements.len(), 100);
    assert_eq!(elements[7], Bytes::from_static(b"item-7"));
}

#[test]
fn type_mismatch_errors() {
    let db = db();
    db.put("s", Value::string("text"), &PutOptions::default())
        .unwrap();
    let got = db.get("s", "master").unwrap();
    assert!(matches!(
        db.map_get(&got.value, b"x"),
        Err(DbError::TypeMismatch { .. })
    ));
    assert!(matches!(
        db.blob_read(&got.value),
        Err(DbError::TypeMismatch { .. })
    ));
    assert!(matches!(
        db.list_elements(&got.value),
        Err(DbError::TypeMismatch { .. })
    ));
}

#[test]
fn diff_map_versions_across_branches() {
    let db = db();
    let map = db.new_map(sample_pairs(400)).unwrap();
    db.put("ds", map, &PutOptions::default()).unwrap();
    db.branch("ds", "master", "vendor-x").unwrap();
    db.put_map_edits(
        "ds",
        vec![
            MapEdit::put(
                Bytes::from_static(b"row-000007"),
                Bytes::from_static(b"changed"),
            ),
            MapEdit::put(
                Bytes::from_static(b"row-999999"),
                Bytes::from_static(b"added"),
            ),
        ],
        &PutOptions::on_branch("vendor-x"),
    )
    .unwrap();

    let diff = db
        .diff(
            "ds",
            &VersionSpec::branch("master"),
            &VersionSpec::branch("vendor-x"),
        )
        .unwrap();
    match diff {
        ValueDiff::Map(d) => {
            assert_eq!(d.counts(), (1, 0, 1)); // one added, one modified
        }
        other => panic!("expected map diff, got {other:?}"),
    }

    // Identical branches diff to Identical.
    db.branch("ds", "master", "copy").unwrap();
    let diff = db
        .diff(
            "ds",
            &VersionSpec::branch("master"),
            &VersionSpec::branch("copy"),
        )
        .unwrap();
    assert!(diff.is_identical());
}

#[test]
fn diff_blob_versions_reports_sharing() {
    let db = db();
    let content: Vec<u8> = (0..100_000u32).map(|i| (i % 239) as u8).collect();
    let blob = db.new_blob(&content).unwrap();
    db.put("f", blob, &PutOptions::default()).unwrap();

    let mut edited = content.clone();
    for b in &mut edited[50_000..50_010] {
        *b ^= 0xff;
    }
    let blob2 = db.new_blob(&edited).unwrap();
    db.put("f", blob2, &PutOptions::default()).unwrap();

    let history = db.history("f", &VersionSpec::branch("master")).unwrap();
    let diff = db
        .diff(
            "f",
            &VersionSpec::Version(history[1].uid),
            &VersionSpec::Version(history[0].uid),
        )
        .unwrap();
    match diff {
        ValueDiff::Chunked {
            from_len,
            to_len,
            shared_bytes,
            from_chunks,
            ..
        } => {
            assert_eq!(from_len, 100_000);
            assert_eq!(to_len, 100_000);
            assert!(from_chunks > 1);
            assert!(
                shared_bytes > 90_000,
                "tiny edit must share most chunks, shared only {shared_bytes}"
            );
        }
        other => panic!("expected chunked diff, got {other:?}"),
    }
}

#[test]
fn merge_disjoint_branch_edits() {
    let db = db();
    let map = db.new_map(sample_pairs(1000)).unwrap();
    db.put("ds", map, &PutOptions::default()).unwrap();
    db.branch("ds", "master", "team-a").unwrap();

    // Divergent edits on both branches, different rows.
    db.put_map_edits(
        "ds",
        vec![MapEdit::put(
            Bytes::from_static(b"row-000010"),
            Bytes::from_static(b"A"),
        )],
        &PutOptions::on_branch("team-a"),
    )
    .unwrap();
    db.put_map_edits(
        "ds",
        vec![MapEdit::put(
            Bytes::from_static(b"row-000990"),
            Bytes::from_static(b"M"),
        )],
        &PutOptions::default(),
    )
    .unwrap();

    let merged = db
        .merge(
            "ds",
            "master",
            "team-a",
            MergePolicy::Fail,
            &PutOptions::default(),
        )
        .unwrap();
    let meta = db.meta(&merged.uid).unwrap();
    assert_eq!(meta.bases.len(), 2, "merge node has two bases");

    let got = db.get("ds", "master").unwrap();
    assert_eq!(
        db.map_get(&got.value, b"row-000010").unwrap(),
        Some(Bytes::from_static(b"A"))
    );
    assert_eq!(
        db.map_get(&got.value, b"row-000990").unwrap(),
        Some(Bytes::from_static(b"M"))
    );
}

#[test]
fn merge_fast_forward() {
    let db = db();
    db.put("k", Value::string("base"), &PutOptions::default())
        .unwrap();
    db.branch("k", "master", "ahead").unwrap();
    let c2 = db
        .put(
            "k",
            Value::string("advanced"),
            &PutOptions::on_branch("ahead"),
        )
        .unwrap();
    // master has not moved: merging "ahead" in is a fast-forward.
    let merged = db
        .merge(
            "k",
            "master",
            "ahead",
            MergePolicy::Fail,
            &PutOptions::default(),
        )
        .unwrap();
    assert_eq!(merged.uid, c2.uid, "fast-forward reuses the head");
    assert_eq!(
        db.get("k", "master").unwrap().value.as_str(),
        Some("advanced")
    );

    // Merging again is a no-op.
    let again = db
        .merge(
            "k",
            "master",
            "ahead",
            MergePolicy::Fail,
            &PutOptions::default(),
        )
        .unwrap();
    assert_eq!(again.uid, c2.uid);
}

#[test]
fn merge_conflict_detection_and_policies() {
    let db = db();
    let map = db.new_map(sample_pairs(100)).unwrap();
    db.put("ds", map, &PutOptions::default()).unwrap();
    db.branch("ds", "master", "other").unwrap();

    db.put_map_edits(
        "ds",
        vec![MapEdit::put(
            Bytes::from_static(b"row-000050"),
            Bytes::from_static(b"mine"),
        )],
        &PutOptions::default(),
    )
    .unwrap();
    db.put_map_edits(
        "ds",
        vec![MapEdit::put(
            Bytes::from_static(b"row-000050"),
            Bytes::from_static(b"theirs"),
        )],
        &PutOptions::on_branch("other"),
    )
    .unwrap();

    assert!(matches!(
        db.merge(
            "ds",
            "master",
            "other",
            MergePolicy::Fail,
            &PutOptions::default()
        ),
        Err(DbError::MergeConflicts(_))
    ));

    let merged = db
        .merge(
            "ds",
            "master",
            "other",
            MergePolicy::Theirs,
            &PutOptions::default(),
        )
        .unwrap();
    let got = db.get_version(&merged.uid).unwrap();
    assert_eq!(
        db.map_get(&got.value, b"row-000050").unwrap(),
        Some(Bytes::from_static(b"theirs"))
    );
}

#[test]
fn merge_primitive_values() {
    let db = db();
    db.put("k", Value::string("base"), &PutOptions::default())
        .unwrap();
    db.branch("k", "master", "b").unwrap();
    db.put("k", Value::string("ours"), &PutOptions::default())
        .unwrap();
    db.put("k", Value::string("theirs"), &PutOptions::on_branch("b"))
        .unwrap();

    assert!(matches!(
        db.merge(
            "k",
            "master",
            "b",
            MergePolicy::Fail,
            &PutOptions::default()
        ),
        Err(DbError::MergeConflicts(_))
    ));
    let m = db
        .merge(
            "k",
            "master",
            "b",
            MergePolicy::Ours,
            &PutOptions::default(),
        )
        .unwrap();
    assert_eq!(db.get_version(&m.uid).unwrap().value.as_str(), Some("ours"));
}

#[test]
fn export_writes_content() {
    let db = db();
    db.put("s", Value::string("exported text"), &PutOptions::default())
        .unwrap();
    let mut buf = Vec::new();
    let n = db
        .export("s", &VersionSpec::branch("master"), &mut buf)
        .unwrap();
    assert_eq!(buf, b"exported text");
    assert_eq!(n, 13);

    let map = db
        .new_map(vec![(Bytes::from_static(b"k1"), Bytes::from_static(b"v1"))])
        .unwrap();
    db.put("m", map, &PutOptions::default()).unwrap();
    let mut buf = Vec::new();
    db.export("m", &VersionSpec::branch("master"), &mut buf)
        .unwrap();
    assert_eq!(buf, b"k1\tv1\n");
}

#[test]
fn stat_counts_keys_and_branches() {
    let db = db();
    db.put("a", Value::Int(1), &PutOptions::default()).unwrap();
    db.put("b", Value::Int(2), &PutOptions::default()).unwrap();
    db.branch("a", "master", "dev").unwrap();
    let stat: DbStat = db.stat();
    assert_eq!(stat.keys, 2);
    assert_eq!(stat.branches, 3);
    assert!(stat.store.unique_chunks > 0);
    assert!(stat.to_string().contains("keys:"));
}

#[test]
fn verify_branch_walks_full_history() {
    let db = db();
    let map = db.new_map(sample_pairs(200)).unwrap();
    db.put("ds", map, &PutOptions::default()).unwrap();
    for i in 0..5 {
        db.put_map_edits(
            "ds",
            vec![MapEdit::put(
                Bytes::from(format!("row-{i:06}")),
                Bytes::from(format!("edit {i}")),
            )],
            &PutOptions::default(),
        )
        .unwrap();
    }
    let checked = db.verify_branch("ds", "master").unwrap();
    assert_eq!(checked, 6);
}

#[test]
fn tampered_value_chunk_is_detected_by_verification() {
    // The §II-D threat model end-to-end: a malicious store flips one bit
    // in a value chunk; the client's verify pass must catch it.
    let inner = MemStore::new();
    let db = ForkBase::with_config(FaultyStore::new(inner), TreeConfig::test_config());
    let map = db.new_map(sample_pairs(500)).unwrap();
    let commit = db.put("ds", map, &PutOptions::default()).unwrap();
    assert!(db.verify_version(&commit.uid).is_ok());

    // Corrupt every chunk in turn; detection must be 100%.
    let mut victims = Vec::new();
    db.store().inner().for_each_chunk(|h, _| victims.push(*h));
    let mut detected = 0;
    for v in &victims {
        db.store().inject(*v, FaultMode::FlipBit { byte: 0 });
        if db.verify_version(&commit.uid).is_err() {
            detected += 1;
        }
        db.store().heal_all();
    }
    assert_eq!(
        detected,
        victims.len(),
        "every corrupted chunk must be detected"
    );
}

#[test]
fn tampered_history_is_detected() {
    let inner = MemStore::new();
    let db = ForkBase::with_config(FaultyStore::new(inner), TreeConfig::test_config());
    db.put("doc", Value::string("v1"), &PutOptions::default())
        .unwrap();
    let c2 = db
        .put("doc", Value::string("v2"), &PutOptions::default())
        .unwrap();

    // Tamper with the *parent* FNode: walking history from the head must
    // fail loudly, proving the hash chain covers ancestry.
    let parent = db.meta(&c2.uid).unwrap().bases[0];
    db.store().inject(parent, FaultMode::FlipBit { byte: 5 });
    assert!(db.history("doc", &VersionSpec::branch("master")).is_err());
    assert!(db.verify_branch("doc", "master").is_err());
}

#[test]
fn dropped_chunk_is_detected_not_silently_ignored() {
    let inner = MemStore::new();
    let db = ForkBase::with_config(FaultyStore::new(inner), TreeConfig::test_config());
    let map = db.new_map(sample_pairs(500)).unwrap();
    let commit = db.put("ds", map, &PutOptions::default()).unwrap();

    let mut victims = Vec::new();
    db.store().inner().for_each_chunk(|h, _| victims.push(*h));
    // Drop an arbitrary non-FNode chunk (pick one that isn't the commit).
    let victim = victims.into_iter().find(|h| *h != commit.uid).unwrap();
    db.store().inject(victim, FaultMode::Drop);
    assert!(db.verify_version(&commit.uid).is_err());
}

#[test]
fn identical_values_share_uid_only_with_identical_history() {
    // §II-D: "Two FNodes are considered equivalent, i.e., having the same
    // uid, when they have both the same value and derivation history."
    let db1 = db();
    let db2 = db();
    let c1 = db1
        .put("k", Value::string("same"), &PutOptions::default())
        .unwrap();
    let c2 = db2
        .put("k", Value::string("same"), &PutOptions::default())
        .unwrap();
    assert_eq!(
        c1.uid, c2.uid,
        "same value, same (empty) history, same clock"
    );

    // Adding history changes the uid even if the value returns to "same".
    db1.put("k", Value::string("other"), &PutOptions::default())
        .unwrap();
    let c3 = db1
        .put("k", Value::string("same"), &PutOptions::default())
        .unwrap();
    assert_ne!(c3.uid, c1.uid);
}

#[test]
fn concurrent_puts_on_distinct_keys() {
    let db = std::sync::Arc::new(db());
    let mut handles = Vec::new();
    for t in 0..8 {
        let db = std::sync::Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                db.put(
                    &format!("key-{t}-{i}"),
                    Value::Int(i),
                    &PutOptions::default(),
                )
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.list_keys().len(), 400);
}

#[test]
fn invalid_names_rejected() {
    let db = db();
    assert!(matches!(
        db.put("", Value::Int(1), &PutOptions::default()),
        Err(DbError::InvalidInput(_))
    ));
    assert!(matches!(
        db.put("k", Value::Int(1), &PutOptions::on_branch("")),
        Err(DbError::InvalidInput(_))
    ));
}

#[test]
fn light_client_entry_proofs() {
    let db = db();
    let map = db.new_map(sample_pairs(2000)).unwrap();
    let commit = db.put("state", map, &PutOptions::default()).unwrap();

    // Server side: produce a proof for one entry.
    let (proof, uid) = db
        .prove_entry("state", &VersionSpec::branch("master"), b"row-000777")
        .unwrap();
    assert_eq!(uid, commit.uid);

    // Client side: verify against the remembered uid only.
    let value = db.verify_entry_proof(&uid, b"row-000777", &proof).unwrap();
    assert_eq!(value, Some(Bytes::from("data for row 777")));

    // Absence proof.
    let (proof, _) = db
        .prove_entry("state", &VersionSpec::branch("master"), b"row-999999")
        .unwrap();
    assert_eq!(
        db.verify_entry_proof(&commit.uid, b"row-999999", &proof)
            .unwrap(),
        None
    );

    // A proof for a DIFFERENT version does not verify against this uid.
    let updated = db
        .put_map_edits(
            "state",
            vec![MapEdit::put(
                Bytes::from_static(b"row-000777"),
                Bytes::from_static(b"forged"),
            )],
            &PutOptions::default(),
        )
        .unwrap();
    let (forged_proof, _) = db
        .prove_entry("state", &VersionSpec::Version(updated.uid), b"row-000777")
        .unwrap();
    assert!(db
        .verify_entry_proof(&commit.uid, b"row-000777", &forged_proof)
        .is_err());
}

#[test]
fn bundle_ships_a_branch_between_databases() {
    let src = db();
    let map = src.new_map(sample_pairs(500)).unwrap();
    src.put("ds", map, &PutOptions::default().message("v1"))
        .unwrap();
    src.put_map_edits(
        "ds",
        vec![MapEdit::put(
            Bytes::from_static(b"row-000004"),
            Bytes::from_static(b"x"),
        )],
        &PutOptions::default().message("v2"),
    )
    .unwrap();

    let mut bundle = Vec::new();
    forkbase::export_bundle(&src, "ds", &[], &mut bundle).unwrap();

    let dst = db();
    let refs = forkbase::import_bundle(&dst, &mut bundle.as_slice()).unwrap();
    assert_eq!(refs.len(), 1);
    assert_eq!(dst.verify_branch("ds", "master").unwrap(), 2);
    assert_eq!(
        dst.head("ds", "master").unwrap(),
        src.head("ds", "master").unwrap()
    );
}
