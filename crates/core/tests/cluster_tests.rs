//! Cluster rebalance and fault-path integration tests.
//!
//! The rebalance and dead-servelet suites are **transport-generic**: each
//! runs once over the in-process channel transport (`Cluster::new`) and
//! once over real loopback TCP (`ServeletServer` + `Cluster::connect`),
//! so the wire protocol is held to exactly the contract the channel
//! transport established. Chaos injection stays in-process-only (see
//! `cluster_chaos_tests.rs`) — the TCP transport ignores fault plans by
//! design, keeping chaos schedules deterministic.
//!
//! The heavy concurrent variant (`stress_…`) is `#[ignore]`d in tier-1 and
//! runs in the CI `stress` job (`cargo test --release -- --ignored stress`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use forkbase::{
    Cluster, ClusterTopology, DbError, DbResult, ForkBase, ForkService, PutOptions, ServeletServer,
    TopoRole, Uid, VersionSpec,
};
use forkbase_postree::TreeConfig;
use forkbase_store::MemStore;

/// Tiny deterministic PRNG (xorshift*) so the "random" workload is
/// reproducible without a dev-dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// ---------------------------------------------------------------------
// Transport-generic harness
// ---------------------------------------------------------------------

enum Backend {
    /// Channel-pair transport: servelets are worker threads inside this
    /// process, maintenance closures run on the node itself.
    InProcess,
    /// Wire-protocol transport: servelets are `ServeletServer`s on
    /// loopback TCP and the cluster is a pure `connect()`-ed router.
    /// Maintenance-closure inspection goes through a side-channel handle
    /// to each servelet's database (same process, same `Arc`), since the
    /// router rightly refuses to ship closures over the network.
    Tcp,
}

struct RemoteServelet {
    /// `None` once killed — the listener is gone, connects are refused.
    server: Option<ServeletServer>,
    db: Arc<ForkBase<MemStore>>,
}

/// A cluster plus enough backend bookkeeping to run the same test body
/// over either transport.
struct TestCluster {
    c: Cluster<MemStore>,
    backend: Backend,
    cfg: TreeConfig,
    remote: Mutex<HashMap<u64, RemoteServelet>>,
}

impl TestCluster {
    fn in_process(n: usize) -> TestCluster {
        TestCluster {
            c: Cluster::new(n, TreeConfig::test_config()),
            backend: Backend::InProcess,
            cfg: TreeConfig::test_config(),
            remote: Mutex::new(HashMap::new()),
        }
    }

    fn tcp(n: usize) -> TestCluster {
        let cfg = TreeConfig::test_config();
        let mut remote = HashMap::new();
        let mut servelet_ids = Vec::new();
        let mut addrs = Vec::new();
        for id in 0..n as u64 {
            let db = Arc::new(ForkBase::with_config(MemStore::new(), cfg));
            let server = ServeletServer::spawn("127.0.0.1:0", Arc::clone(&db), None).unwrap();
            servelet_ids.push(id);
            addrs.push(Some(server.addr().to_string()));
            remote.insert(
                id,
                RemoteServelet {
                    server: Some(server),
                    db,
                },
            );
        }
        let roles = servelet_ids
            .iter()
            .map(|&id| TopoRole::Primary { anchor: id })
            .collect();
        let topology = ClusterTopology {
            servelet_ids,
            addrs,
            roles,
            next_id: n as u64,
        };
        TestCluster {
            c: Cluster::connect(&topology, cfg).unwrap(),
            backend: Backend::Tcp,
            cfg,
            remote: Mutex::new(remote),
        }
    }

    /// Run `f` against the database of the servelet owning `key`.
    fn with_key<R: Send + 'static>(
        &self,
        key: &str,
        f: impl FnOnce(&ForkBase<MemStore>) -> R + Send + 'static,
    ) -> DbResult<R> {
        match self.backend {
            Backend::InProcess => self.c.with_key(key, f),
            Backend::Tcp => {
                let id = self.c.owner_id(key);
                let remote = self.remote.lock().unwrap();
                Ok(f(&remote[&id].db))
            }
        }
    }

    /// Run `f` against the database of the servelet at `slot`.
    fn on_node<R: Send + 'static>(
        &self,
        slot: usize,
        f: impl FnOnce(&ForkBase<MemStore>) -> R + Send + 'static,
    ) -> DbResult<R> {
        match self.backend {
            Backend::InProcess => self.c.on_node(slot, f),
            Backend::Tcp => {
                let id = self.c.ids()[slot];
                let remote = self.remote.lock().unwrap();
                Ok(f(&remote[&id].db))
            }
        }
    }

    /// Grow the cluster by one servelet over the backend's transport.
    fn add_servelet(&self) -> DbResult<u64> {
        match self.backend {
            Backend::InProcess => self.c.add_servelet(MemStore::new()),
            Backend::Tcp => {
                let db = Arc::new(ForkBase::with_config(MemStore::new(), self.cfg));
                let server = ServeletServer::spawn("127.0.0.1:0", Arc::clone(&db), None)?;
                let addr = server.addr().to_string();
                let id = self.c.add_remote_servelet(addr)?;
                self.remote.lock().unwrap().insert(
                    id,
                    RemoteServelet {
                        server: Some(server),
                        db,
                    },
                );
                Ok(id)
            }
        }
    }

    /// Drain and remove servelet `id`; over TCP also stop its server.
    fn remove_servelet(&self, id: u64) -> DbResult<()> {
        self.c.remove_servelet(id)?;
        if let Backend::Tcp = self.backend {
            if let Some(r) = self.remote.lock().unwrap().remove(&id) {
                if let Some(server) = r.server {
                    server.stop();
                }
            }
        }
        Ok(())
    }

    /// Attach a replica to primary `pid` over the backend's transport.
    fn add_replica(&self, pid: u64) -> DbResult<u64> {
        match self.backend {
            Backend::InProcess => self.c.add_replica(pid, MemStore::new()),
            Backend::Tcp => {
                let db = Arc::new(ForkBase::with_config(MemStore::new(), self.cfg));
                let server = ServeletServer::spawn("127.0.0.1:0", Arc::clone(&db), None)?;
                let addr = server.addr().to_string();
                let id = self.c.add_remote_replica(pid, addr)?;
                self.remote.lock().unwrap().insert(
                    id,
                    RemoteServelet {
                        server: Some(server),
                        db,
                    },
                );
                Ok(id)
            }
        }
    }

    /// Kill the servelet at `slot` without removing it from the ring:
    /// in-process that shuts down the worker thread; over TCP it stops
    /// the listener so the router sees connection-refused.
    fn kill(&self, slot: usize) -> DbResult<()> {
        match self.backend {
            Backend::InProcess => self.c.kill_servelet(slot),
            Backend::Tcp => {
                let id = self.c.ids()[slot];
                if let Some(server) = self
                    .remote
                    .lock()
                    .unwrap()
                    .get_mut(&id)
                    .and_then(|r| r.server.take())
                {
                    server.stop();
                }
                Ok(())
            }
        }
    }
}

/// Everything about a key's state that migration must preserve.
#[derive(Debug, PartialEq)]
struct KeyFingerprint {
    /// Branch name → head uid.
    heads: Vec<(String, Uid)>,
    /// Full first-parent history uids on master.
    history: Vec<Uid>,
}

fn fingerprint(h: &TestCluster, key: &str) -> KeyFingerprint {
    let owned = key.to_string();
    h.with_key(key, move |db| {
        let heads = db
            .list_branches(&owned)
            .unwrap()
            .into_iter()
            .map(|b| (b.name, b.head))
            .collect();
        let history = db
            .history(&owned, &VersionSpec::branch("master"))
            .unwrap()
            .into_iter()
            .map(|h| h.uid)
            .collect();
        KeyFingerprint { heads, history }
    })
    .unwrap()
}

/// Build a randomized workload: `n` keys, 1–4 versions each, some extra
/// branches, a couple of map-valued keys for proof checks. Returns the
/// map-valued key names.
fn seed_workload(h: &TestCluster, rng: &mut Rng, n: usize) -> Vec<String> {
    for i in 0..n {
        let key = format!("key-{i:03}");
        for rev in 0..=rng.below(3) {
            h.c.put_string(
                &key,
                format!("contents of {key} rev {rev} pad {}", rng.below(1 << 20)),
                PutOptions::default().author("seed"),
            )
            .unwrap();
        }
        if rng.below(3) == 0 {
            let branch = format!("b{}", rng.below(2));
            h.with_key(&key, {
                let key = key.clone();
                move |db| db.branch(&key, "master", &branch)
            })
            .unwrap()
            .unwrap();
        }
    }
    // Map-valued keys: these support entry proofs, the strongest
    // tamper-evidence check we can replay after migration.
    let mut map_keys = Vec::new();
    for m in 0..4 {
        let key = format!("map-{m}");
        let pairs: Vec<(Bytes, Bytes)> = (0..200)
            .map(|i| {
                (
                    Bytes::from(format!("row{i:04}")),
                    Bytes::from(format!("val{}", rng.below(1 << 30))),
                )
            })
            .collect();
        h.with_key(&key, {
            let key = key.clone();
            move |db| {
                let map = db.new_map(pairs)?;
                db.put(&key, map, &PutOptions::default())
            }
        })
        .unwrap()
        .unwrap();
        map_keys.push(key);
    }
    map_keys
}

/// The rebalance property: after growing and shrinking the cluster under a
/// random workload, every key is still readable with identical version
/// uids and full history, verification and entry proofs still pass on
/// migrated keys, only keys whose ring owner changed moved, and the total
/// stored bytes don't balloon past what migration can legitimately add.
fn rebalance_case(h: &TestCluster) {
    let mut rng = Rng(0x5EED_F08B_A5E5_0001);
    let map_keys = seed_workload(h, &mut rng, 80);

    let all_keys = h.c.list_keys().unwrap();
    let owners_before: Vec<(String, u64)> = all_keys
        .iter()
        .map(|k| (k.clone(), h.c.owner_id(k)))
        .collect();
    let prints_before: Vec<KeyFingerprint> = all_keys.iter().map(|k| fingerprint(h, k)).collect();
    // Entry proofs against the pre-migration head uid.
    let proofs_before: Vec<(String, Uid, forkbase_postree::MerkleProof)> = map_keys
        .iter()
        .map(|key| {
            let owned = key.clone();
            let (proof, uid) = h
                .with_key(key, move |db| {
                    db.prove_entry(&owned, &VersionSpec::branch("master"), b"row0042")
                })
                .unwrap()
                .unwrap();
            (key.clone(), uid, proof)
        })
        .collect();
    let bytes_before = h.c.total_stored_bytes().unwrap();

    // Grow, then shrink: two full migrations.
    let new_id = h.add_servelet().unwrap();
    let removed = h.c.ids()[0];
    h.remove_servelet(removed).unwrap();

    // Membership changed, key set did not.
    assert_eq!(h.c.list_keys().unwrap(), all_keys);

    let mut migrated = 0usize;
    for ((key, owner_before), print_before) in owners_before.iter().zip(&prints_before) {
        let owner_now = h.c.owner_id(key);
        let moved = owner_now != *owner_before;
        if moved {
            migrated += 1;
            // Only two legitimate destinations exist: the added servelet,
            // or (for keys of the removed one) any survivor.
            assert!(
                owner_now == new_id || *owner_before == removed,
                "{key} moved {owner_before}->{owner_now} although its ring owner \
                 should not have changed"
            );
        }
        // Heads, history, and uids are byte-identical wherever it lives.
        assert_eq!(
            &fingerprint(h, key),
            print_before,
            "{key} fingerprint drifted"
        );
        // Tamper evidence survives the move: full-history verification on
        // the (possibly new) owner.
        let owned = key.clone();
        let verified = h
            .with_key(key, move |db| db.verify_branch(&owned, "master"))
            .unwrap()
            .unwrap();
        assert!(verified >= 1);
    }
    assert!(migrated > 0, "add+remove must move some keys");
    assert!(
        migrated < all_keys.len(),
        "consistent hashing must not reshuffle everything"
    );

    // Entry proofs replay against the SAME uid after migration: chunk
    // addresses survived byte-identically.
    for (key, uid, proof) in proofs_before {
        let owned = key.clone();
        let value = h
            .with_key(&key, move |db| {
                let head = db.head(&owned, "master")?;
                assert_eq!(head, uid, "{owned} head uid changed across migration");
                db.verify_entry_proof(&uid, b"row0042", &proof)
            })
            .unwrap()
            .unwrap();
        assert!(value.is_some(), "{key} proof no longer verifies");
    }

    // Dedup economics: migration copies chunks before GC reclaims the
    // source copies, so after a cluster-wide GC the footprint must come
    // back to the pre-rebalance ballpark (placement changed, content did
    // not; only cross-key dedup lost to re-partitioning may add a little).
    let gc = h.c.gc().unwrap();
    assert!(gc.degraded.is_empty(), "every servelet is alive");
    for (_, report) in gc.reports {
        assert_eq!(report.sweep.chunks_rewritten, 0, "MemStore never rewrites");
    }
    let bytes_after = h.c.total_stored_bytes().unwrap();
    assert!(
        bytes_after as f64 <= bytes_before as f64 * 1.10,
        "stored bytes regressed past the dedup ratio: {bytes_before} -> {bytes_after}"
    );
    assert!(
        bytes_after as f64 >= bytes_before as f64 * 0.90,
        "stored bytes shrank implausibly: {bytes_before} -> {bytes_after}"
    );
}

#[test]
fn rebalance_preserves_history_proofs_and_dedup() {
    rebalance_case(&TestCluster::in_process(3));
}

#[test]
fn rebalance_preserves_history_proofs_and_dedup_over_tcp() {
    rebalance_case(&TestCluster::tcp(3));
}

/// Dead-servelet error path: a downed worker yields a structured,
/// machine-readable error on every routed verb, and the rest of the
/// cluster keeps serving.
fn dead_servelet_case(h: &TestCluster) {
    for i in 0..30 {
        h.c.put_string(&format!("k{i}"), format!("v{i}"), PutOptions::default())
            .unwrap();
    }
    let victim_slot = h.c.route("k0");
    h.kill(victim_slot).unwrap();

    // Routed single-key verbs.
    let err = h.c.get("k0", "master").unwrap_err();
    assert_eq!(err.code(), "servelet_unavailable");
    assert!(matches!(err, DbError::ServeletUnavailable { .. }));
    assert!(h
        .c
        .put(
            "k0",
            forkbase_types::Value::string("x"),
            PutOptions::default()
        )
        .is_err());

    // Scatter-gather verbs surface the same structured error instead of
    // hanging or panicking.
    assert_eq!(h.c.list_keys().unwrap_err().code(), "servelet_unavailable");
    assert_eq!(h.c.stats().unwrap_err().code(), "servelet_unavailable");

    // A batch whose groups include the dead servelet fails with the same
    // code; groups routed entirely to live servelets still commit.
    let live_key = (0..)
        .map(|i| format!("probe-{i}"))
        .find(|k| h.c.route(k) != victim_slot)
        .unwrap();
    let mut wb = h.c.write_batch();
    wb.put(
        &live_key,
        forkbase_types::Value::string("ok"),
        &PutOptions::default(),
    );
    wb.put(
        "k0",
        forkbase_types::Value::string("dead"),
        &PutOptions::default(),
    );
    assert_eq!(wb.commit().unwrap_err().code(), "servelet_unavailable");

    // Live servelets keep serving routed traffic.
    h.c.put_string(&live_key, "still here".into(), PutOptions::default())
        .unwrap();
    assert_eq!(
        h.c.get(&live_key, "master").unwrap().value.as_str(),
        Some("still here")
    );
}

#[test]
fn dead_servelet_error_paths_are_structured() {
    dead_servelet_case(&TestCluster::in_process(3));
}

#[test]
fn dead_servelet_error_paths_are_structured_over_tcp() {
    dead_servelet_case(&TestCluster::tcp(3));
}

/// Heavy variant for the CI stress job: clients hammer routed puts/gets
/// while the cluster grows and shrinks repeatedly. Rebalance is
/// stop-the-world for routed verbs, so clients may block but must never
/// fail, lose a write, or observe a key mid-migration.
#[test]
#[ignore = "heavy; run by the CI stress job in release mode"]
fn stress_cluster_rebalance_with_concurrent_clients() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let c = Arc::new(Cluster::new(3, TreeConfig::test_config()));
    let stop = Arc::new(AtomicBool::new(false));
    const CLIENTS: usize = 6;
    const MIN_PUTS_PER_CLIENT: usize = 200;
    const REBALANCE_CYCLES: usize = 6;

    // Clients write (and read back) until the rebalancer has finished all
    // its cycles, so the traffic is guaranteed to overlap every topology
    // change. Each returns how many puts it committed.
    let mut handles = Vec::new();
    for t in 0..CLIENTS {
        let c = Arc::clone(&c);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0usize;
            while i < MIN_PUTS_PER_CLIENT || !stop.load(Ordering::Relaxed) {
                let key = format!("client{t}-key{i}");
                c.put_string(&key, format!("payload {t}/{i}"), PutOptions::default())
                    .unwrap();
                // Read-your-write through the router, even mid-rebalance.
                let got = c.get(&key, "master").unwrap();
                assert_eq!(
                    got.value.as_str(),
                    Some(format!("payload {t}/{i}").as_str())
                );
                i += 1;
            }
            i
        }));
    }

    // Rebalancer: a fixed number of grow/shrink cycles while clients run.
    let rebalancer = {
        let c = Arc::clone(&c);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut added: Vec<u64> = Vec::new();
            for _ in 0..REBALANCE_CYCLES {
                let id = c.add_servelet(MemStore::new()).unwrap();
                added.push(id);
                std::thread::sleep(std::time::Duration::from_millis(10));
                if added.len() > 2 {
                    let victim = added.remove(0);
                    c.remove_servelet(victim).unwrap();
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            stop.store(true, Ordering::Relaxed);
        })
    };

    let committed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    rebalancer.join().unwrap();

    // Every write landed exactly once, wherever it now lives.
    let keys = c.list_keys().unwrap();
    assert_eq!(keys.len(), committed);
    assert!(c.len() > 3, "the added servelets are live cluster members");
    for t in 0..CLIENTS {
        for i in (0..MIN_PUTS_PER_CLIENT).step_by(37) {
            let key = format!("client{t}-key{i}");
            let got = c.get(&key, "master").unwrap();
            assert_eq!(
                got.value.as_str(),
                Some(format!("payload {t}/{i}").as_str())
            );
        }
    }
}

/// Residue of an interrupted rebalance — the same key present on two
/// servelets, diverged by later writes to the real owner — must be healed
/// by the next rebalance (stale copy dropped, authoritative copy kept),
/// not wedge it with an import conflict.
fn residue_case(h: &TestCluster) {
    for i in 0..30 {
        h.c.put_string(&format!("key-{i}"), format!("v{i}"), PutOptions::default())
            .unwrap();
    }
    // Fabricate the crash-window residue: copy key-0's bundle onto a
    // non-owner servelet, then diverge the authoritative copy.
    let owner = h.c.route("key-0");
    let stale_slot = (owner + 1) % 3;
    let bundle = h
        .on_node(owner, |db| {
            let mut buf = Vec::new();
            forkbase::export_bundle(db, "key-0", &[], &mut buf)?;
            Ok::<_, forkbase::DbError>(buf)
        })
        .unwrap()
        .unwrap();
    h.on_node(stale_slot, move |db| {
        forkbase::import_bundle(db, &mut bundle.as_slice()).map(|_| ())
    })
    .unwrap()
    .unwrap();
    h.c.put_string("key-0", "diverged".into(), PutOptions::default())
        .unwrap();

    // list_keys dedups the transient double listing.
    assert_eq!(h.c.list_keys().unwrap().len(), 30);

    // Grow then shrink: both rebalances must converge and keep serving
    // the diverged (authoritative) value.
    let id = h.add_servelet().unwrap();
    assert_eq!(
        h.c.get("key-0", "master").unwrap().value.as_str(),
        Some("diverged")
    );
    let copies = (0..h.c.len())
        .filter(|&slot| {
            h.on_node(slot, |db| db.list_keys().contains(&"key-0".to_string()))
                .unwrap()
        })
        .count();
    assert_eq!(copies, 1, "stale copy must be gone after the rebalance");
    h.remove_servelet(id).unwrap();
    assert_eq!(
        h.c.get("key-0", "master").unwrap().value.as_str(),
        Some("diverged")
    );
    assert_eq!(h.c.list_keys().unwrap().len(), 30);
}

#[test]
fn interrupted_rebalance_residue_heals_on_next_rebalance() {
    residue_case(&TestCluster::in_process(3));
}

#[test]
fn interrupted_rebalance_residue_heals_on_next_rebalance_over_tcp() {
    residue_case(&TestCluster::tcp(3));
}

// ---------------------------------------------------------------------
// Replication (transport-generic)
// ---------------------------------------------------------------------

/// A replica serves idempotent reads with the staleness bound surfaced:
/// caught up it answers with lag 0; behind it answers stale with the lag
/// stated; after a ship pass it is fresh again.
fn replica_read_case(h: &TestCluster) {
    h.c.put_string("doc", "v1".into(), PutOptions::default())
        .unwrap();
    let pid = h.c.owner_id("doc");
    let rid = h.add_replica(pid).unwrap();

    // The attach-time full sync carried the pre-existing write.
    let read = h.c.get_from_replica("doc", "master").unwrap();
    assert!(read.from_replica);
    assert_eq!(read.servelet, rid);
    assert_eq!(read.lag, 0);
    assert_eq!(read.result.value.as_str(), Some("v1"));

    // An unshipped write shows up as lag; the read is stale and says so.
    h.c.put_string("doc", "v2".into(), PutOptions::default())
        .unwrap();
    let read = h.c.get_from_replica("doc", "master").unwrap();
    assert!(read.from_replica);
    assert_eq!(read.lag, 1);
    assert_eq!(read.result.value.as_str(), Some("v1"));

    // Ship, then the replica is fresh.
    let report = h.c.ship_replication();
    assert!(report.failed.is_empty(), "ship failed: {:?}", report.failed);
    let read = h.c.get_from_replica("doc", "master").unwrap();
    assert_eq!(read.lag, 0);
    assert_eq!(read.result.value.as_str(), Some("v2"));

    // Reads of keys on un-replicated primaries degrade to the primary.
    let unreplicated = (0..)
        .map(|i| format!("probe-{i}"))
        .find(|k| h.c.owner_id(k) != pid)
        .unwrap();
    h.c.put_string(&unreplicated, "p".into(), PutOptions::default())
        .unwrap();
    let read = h.c.get_from_replica(&unreplicated, "master").unwrap();
    assert!(!read.from_replica);
    assert_eq!(read.lag, 0);
}

#[test]
fn replica_serves_reads_with_staleness_bound() {
    replica_read_case(&TestCluster::in_process(3));
}

#[test]
fn replica_serves_reads_with_staleness_bound_over_tcp() {
    replica_read_case(&TestCluster::tcp(3));
}

/// A replica that fell far behind catches up: `catch_up_replica` leaves
/// it at lag 0 mirroring the primary's exact branch heads and histories.
fn replica_catch_up_case(h: &TestCluster) {
    let pid = h.c.ids()[0];
    let rid = h.add_replica(pid).unwrap();
    let mut rng = Rng(0x5EED_F08B_A5E5_0002);
    seed_workload(h, &mut rng, 40);

    h.c.catch_up_replica(rid).unwrap();
    let status = h.c.replication_status();
    let r = status
        .primaries
        .iter()
        .flat_map(|p| p.replicas.iter())
        .find(|r| r.id == rid)
        .unwrap();
    assert_eq!(r.lag, 0);
    assert_eq!(r.pending, 0);
    assert!(!r.needs_full_sync);

    // The mirror is exact: every key the primary owns reads identically
    // (same head uid) from the replica.
    for key in h.c.list_keys().unwrap() {
        if h.c.owner_id(&key) != pid {
            continue;
        }
        let primary_head = h.c.get(&key, "master").unwrap().uid;
        let read = h.c.get_from_replica(&key, "master").unwrap();
        assert!(read.from_replica, "{key} not served by the replica");
        assert_eq!(read.result.uid, primary_head, "{key} head drifted");
    }
}

#[test]
fn lagging_replica_catches_up_exactly() {
    replica_catch_up_case(&TestCluster::in_process(3));
}

#[test]
fn lagging_replica_catches_up_exactly_over_tcp() {
    replica_catch_up_case(&TestCluster::tcp(3));
}

/// The failover property: kill a primary with acked writes still sitting
/// in the ship log, promote its replica, and every acked write — head
/// uid and history — survives, with placement unchanged.
fn promote_preserves_acked_case(h: &TestCluster) {
    for i in 0..40 {
        h.c.put_string(&format!("key-{i}"), format!("v{i}"), PutOptions::default())
            .unwrap();
    }
    let pid = h.c.ids()[0];
    let slot = 0;
    let rid = h.add_replica(pid).unwrap();

    // Acked writes after the attach, deliberately never shipped: the only
    // copies outside the primary live in the router's ship log.
    let mut acked: Vec<(String, Uid)> = Vec::new();
    for i in 40..90 {
        let key = format!("key-{i}");
        let commit =
            h.c.put_string(&key, format!("v{i}"), PutOptions::default())
                .unwrap();
        acked.push((key, commit.uid));
    }
    let owners_before: Vec<(String, usize)> =
        h.c.list_keys()
            .unwrap()
            .into_iter()
            .map(|k| {
                let slot = h.c.route(&k);
                (k, slot)
            })
            .collect();

    h.kill(slot).unwrap();
    let old = h.c.promote_replica(rid).unwrap();
    assert_eq!(old, pid);
    assert!(h.c.ids().contains(&rid));
    assert!(!h.c.ids().contains(&pid), "the dead id left the topology");

    // Zero key movement: every key still routes to the same slot.
    for (key, slot_before) in owners_before {
        assert_eq!(h.c.route(&key), slot_before, "{key} moved on promotion");
    }
    // Every acked write survived with its exact head uid.
    for (key, uid) in &acked {
        let got = h.c.get(key, "master").unwrap();
        assert_eq!(&got.uid, uid, "{key} lost its acked head");
    }
    // And everything else is still served.
    for i in 0..90 {
        assert!(h.c.get(&format!("key-{i}"), "master").is_ok());
    }
    // The cluster remains writable through the promoted slot.
    h.c.put_string("key-0", "after failover".into(), PutOptions::default())
        .unwrap();
    assert_eq!(
        h.c.get("key-0", "master").unwrap().value.as_str(),
        Some("after failover")
    );
}

#[test]
fn promote_after_kill_preserves_every_acked_write() {
    promote_preserves_acked_case(&TestCluster::in_process(3));
}

#[test]
fn promote_after_kill_preserves_every_acked_write_over_tcp() {
    promote_preserves_acked_case(&TestCluster::tcp(3));
}

/// Replica-aware partial reads: a dead primary's caught-up replica
/// answers `stats_partial`/`list_keys_partial` in its stead (attributed
/// to the primary's id); a *lagging* replica does not — the lag bound
/// keeps degraded-mode answers exact as of the last shipped write.
fn partial_reads_fall_back_to_replica_case(h: &TestCluster) {
    for i in 0..30 {
        h.c.put_string(&format!("key-{i}"), format!("v{i}"), PutOptions::default())
            .unwrap();
    }
    let pid = h.c.ids()[0];
    let _rid = h.add_replica(pid).unwrap();
    // A write to the replicated shard that is acked but never shipped:
    // the replica now lags by one.
    let shard_key = (0..)
        .map(|i| format!("probe-{i}"))
        .find(|k| h.c.owner_id(k) == pid)
        .unwrap();
    h.c.put_string(&shard_key, "unshipped".into(), PutOptions::default())
        .unwrap();
    h.kill(0).unwrap();

    // Lagging replica: the primary stays degraded (lag-bounded refusal).
    let stats = h.c.stats_partial();
    assert_eq!(stats.degraded, vec![pid]);
    assert!(stats.results.iter().all(|(id, _)| *id != pid));

    // Ship log drains without the primary (payloads are self-contained);
    // at lag 0 the replica answers for the dead primary.
    let report = h.c.ship_replication();
    assert!(report.failed.is_empty(), "ship failed: {:?}", report.failed);
    let stats = h.c.stats_partial();
    assert!(stats.degraded.is_empty(), "degraded: {:?}", stats.degraded);
    assert!(stats.results.iter().any(|(id, _)| *id == pid));

    let keys = h.c.list_keys_partial();
    assert!(keys.degraded.is_empty(), "degraded: {:?}", keys.degraded);
    let from_fallback: &Vec<String> = &keys
        .results
        .iter()
        .find(|(id, _)| *id == pid)
        .expect("replica answered for the dead primary")
        .1;
    assert!(
        from_fallback.contains(&shard_key),
        "the shipped write is visible through the fallback"
    );
}

#[test]
fn partial_reads_fall_back_to_caught_up_replica() {
    partial_reads_fall_back_to_replica_case(&TestCluster::in_process(3));
}

#[test]
fn partial_reads_fall_back_to_caught_up_replica_over_tcp() {
    partial_reads_fall_back_to_replica_case(&TestCluster::tcp(3));
}

// ---------------------------------------------------------------------
// Fork sandboxes over the cluster (transport-generic)
// ---------------------------------------------------------------------

/// Fork verbs route like normal verbs: lazy branch-from-version and the
/// fork's writes land on the owning servelet, isolation holds both ways,
/// diff-vs-base crosses the wire as a bounded summary, and expiry +
/// reaping behave identically over both transports.
fn fork_ops_route_like_normal_verbs_case(h: &TestCluster) {
    let svc = ForkService::with_default_ttl(60);
    h.c.put_string("doc", "base".into(), PutOptions::default())
        .unwrap();
    let fork = svc
        .create(VersionSpec::Branch("master".into()), None, None)
        .unwrap();

    // First fork write lazily forks the key on its owning servelet.
    svc.put(
        &h.c,
        &fork.id,
        "doc",
        forkbase_types::Value::string("forked"),
        &PutOptions::default(),
    )
    .unwrap();
    assert_eq!(
        svc.get(&h.c, &fork.id, "doc").unwrap().value.as_str(),
        Some("forked")
    );
    // Isolation: master unchanged; fork branch exists only as fork/<id>.
    assert_eq!(
        h.c.get("doc", "master").unwrap().value.as_str(),
        Some("base")
    );
    let branch = fork.branch();
    let on_owner = {
        let b = branch.clone();
        h.with_key("doc", move |db| {
            db.list_branches("doc")
                .map(|bs| bs.iter().any(|i| i.name == b))
        })
        .unwrap()
        .unwrap()
    };
    assert!(on_owner, "fork branch lives on the owning servelet");

    // A key created inside the fork is invisible outside it.
    svc.put(
        &h.c,
        &fork.id,
        "fresh",
        forkbase_types::Value::string("new"),
        &PutOptions::default(),
    )
    .unwrap();
    // (The key now exists — holding only the fork's branch — so master
    // is a missing *branch*, not a missing key.)
    assert_eq!(
        h.c.get("fresh", "master").unwrap_err().code(),
        "no_such_branch"
    );

    // Diff-vs-base crosses the wire as a summary: one changed key, one
    // created key.
    let diff = svc.diff(&h.c, &fork.id).unwrap();
    assert_eq!(diff.keys.len(), 2);
    assert_eq!(diff.changed_keys(), 2);
    let doc = diff.keys.iter().find(|k| k.key == "doc").unwrap();
    assert!(doc.base.is_some() && doc.summary.is_some());
    let fresh = diff.keys.iter().find(|k| k.key == "fresh").unwrap();
    assert!(fresh.base.is_none() && fresh.summary.is_none());

    // Expiry: every verb answers with the structured code.
    svc.clock().advance(61);
    assert_eq!(
        svc.get(&h.c, &fork.id, "doc").unwrap_err().code(),
        "fork_expired"
    );
    // Reap drops the fork's branches on their owning servelets.
    let report = svc.reap_expired(&h.c);
    assert_eq!(report.reaped, vec![fork.id.clone()]);
    assert_eq!(report.branches_dropped, 2);
    let gone = {
        let b = branch.clone();
        h.with_key("doc", move |db| {
            db.list_branches("doc")
                .map(|bs| bs.iter().all(|i| i.name != b))
        })
        .unwrap()
        .unwrap()
    };
    assert!(
        gone,
        "reap removed the fork branch from the owning servelet"
    );
    assert_eq!(
        h.c.get("doc", "master").unwrap().value.as_str(),
        Some("base")
    );
}

#[test]
fn fork_ops_route_like_normal_verbs() {
    fork_ops_route_like_normal_verbs_case(&TestCluster::in_process(3));
}

#[test]
fn fork_ops_route_like_normal_verbs_over_tcp() {
    fork_ops_route_like_normal_verbs_case(&TestCluster::tcp(3));
}
