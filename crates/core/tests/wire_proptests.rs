//! Property tests for the cluster wire protocol (see `PROTOCOL.md`).
//!
//! Two families of properties:
//!
//! * **Roundtrip**: random `Request` and `Reply` values — covering every
//!   variant and every `WireError` shape — survive
//!   `encode → encode_frame → read_frame → decode` byte-identically.
//! * **Hostile input**: torn frames, oversized length prefixes, and
//!   corrupted bytes are rejected with the right `FrameError`, the
//!   reader never allocates more than the bytes actually received, and
//!   body decoders never panic on garbage.

use bytes::Bytes;
use forkbase::cluster::wire::{
    encode_frame, encode_frame_with_version, read_frame, read_frame_versioned, FrameError, Reply,
    Request, WireError, WireOp, MAX_FRAME_LEN, MIN_WIRE_VERSION, WIRE_VERSION,
};
use forkbase::{BatchOutcome, CommitResult, DbStat, GcReport, GetResult, MapPage, PutOptions, Uid};
use forkbase_store::crc::crc32;
use forkbase_types::Value;
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use proptest::{num, option};

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

fn uid() -> BoxedStrategy<Uid> {
    vec(num::u8::ANY, 32usize)
        .prop_map(|b| {
            let mut a = [0u8; 32];
            a.copy_from_slice(&b);
            Uid::from_bytes(a)
        })
        .boxed()
}

fn key() -> BoxedStrategy<String> {
    "[a-z0-9./-]{0,24}".boxed()
}

fn text() -> BoxedStrategy<String> {
    ".{0,32}".boxed()
}

fn raw(max: usize) -> BoxedStrategy<Vec<u8>> {
    vec(num::u8::ANY, 0..max).boxed()
}

fn blob() -> BoxedStrategy<Bytes> {
    raw(64).prop_map(Bytes::from).boxed()
}

fn opts() -> BoxedStrategy<PutOptions> {
    ("[a-z0-9-]{1,12}", "[a-z ]{0,12}", ".{0,16}")
        .prop_map(|(branch, author, message)| PutOptions {
            branch,
            author,
            message,
        })
        .boxed()
}

fn value() -> BoxedStrategy<Value> {
    prop_oneof![
        proptest::bool::ANY.prop_map(Value::Bool),
        num::i64::ANY.prop_map(Value::Int),
        text().prop_map(Value::Str),
    ]
    .boxed()
}

fn wire_op() -> BoxedStrategy<WireOp> {
    prop_oneof![
        (key(), value(), opts()).prop_map(|(key, value, opts)| WireOp::Put { key, value, opts }),
        (key(), key()).prop_map(|(key, branch)| WireOp::DeleteBranch { key, branch }),
    ]
    .boxed()
}

fn request() -> BoxedStrategy<Request> {
    prop_oneof![
        Just(Request::Probe),
        (key(), value(), opts()).prop_map(|(key, value, opts)| Request::Put { key, value, opts }),
        (key(), blob(), opts()).prop_map(|(key, content, opts)| Request::PutBlob {
            key,
            content,
            opts
        }),
        (key(), key()).prop_map(|(key, branch)| Request::Get { key, branch }),
        vec((key(), key()), 0..6).prop_map(|pairs| Request::Heads { pairs }),
        Just(Request::Stat),
        (
            (key(), key()),
            (option::of(blob()), option::of(blob()), num::u64::ANY)
        )
            .prop_map(|((key, branch), (start, end, limit))| Request::MapRange {
                key,
                branch,
                start,
                end,
                limit,
            }),
        Just(Request::ListKeys),
        Just(Request::StoredBytes),
        Just(Request::Gc),
        vec(wire_op(), 0..5).prop_map(|ops| Request::Batch { ops }),
        vec(key(), 0..6).prop_map(|keys| Request::ExportBundle { keys }),
        raw(96).prop_map(|bundle| Request::ImportBundle { bundle }),
        vec(key(), 0..6).prop_map(|keys| Request::ForgetKeys { keys }),
        ".{0,48}".prop_map(|refs| Request::LoadRefs { refs }),
        Just(Request::DumpRefs),
        raw(96).prop_map(|bundle| Request::Replicate { bundle }),
    ]
    .boxed()
}

fn wire_error() -> BoxedStrategy<WireError> {
    prop_oneof![
        key().prop_map(|key| WireError::NoSuchKey { key }),
        (key(), key()).prop_map(|(key, branch)| WireError::NoSuchBranch { key, branch }),
        uid().prop_map(|uid| WireError::NoSuchVersion { uid }),
        (key(), key()).prop_map(|(key, branch)| WireError::BranchExists { key, branch }),
        (uid(), uid()).prop_map(|(a, b)| WireError::NoCommonAncestor { a, b }),
        text().prop_map(|message| WireError::TamperDetected { message }),
        num::u64::ANY.prop_map(|servelet| WireError::ServeletUnavailable { servelet }),
        num::u64::ANY.prop_map(|servelet| WireError::ServeletTimeout { servelet }),
        text().prop_map(|message| WireError::PermissionDenied { message }),
        text().prop_map(|message| WireError::InvalidInput { message }),
        ("[a-z_]{1,24}", text()).prop_map(|(code, message)| WireError::Remote { code, message }),
    ]
    .boxed()
}

fn outcome() -> BoxedStrategy<BatchOutcome> {
    prop_oneof![
        (uid(), key())
            .prop_map(|(uid, branch)| BatchOutcome::Committed(CommitResult { uid, branch })),
        (key(), key()).prop_map(|(key, branch)| BatchOutcome::Deleted { key, branch }),
    ]
    .boxed()
}

fn stat() -> BoxedStrategy<DbStat> {
    vec(num::u64::ANY, 14usize)
        .prop_map(|v| DbStat {
            keys: v[0],
            branches: v[1],
            store: forkbase_store::StoreStats {
                unique_chunks: v[2],
                stored_bytes: v[3],
                puts: v[4],
                logical_bytes: v[5],
                dedup_hits: v[6],
                dedup_saved_bytes: v[7],
                gets: v[8],
                misses: v[9],
                compaction_chunks_rewritten: v[10],
                compaction_bytes_rewritten: v[11],
                sweep_chunks_reclaimed: v[12],
                sweep_bytes_reclaimed: v[13],
            },
        })
        .boxed()
}

fn gc_report() -> BoxedStrategy<GcReport> {
    vec(num::u64::ANY, 8usize)
        .prop_map(|v| GcReport {
            live_chunks: v[0],
            sweep: forkbase_store::SweepReport {
                chunks_reclaimed: v[1],
                bytes_reclaimed: v[2],
                chunks_rewritten: v[3],
                bytes_rewritten: v[4],
                segments_deleted: v[5],
                disk_bytes_before: v[6],
                disk_bytes_after: v[7],
            },
        })
        .boxed()
}

fn reply() -> BoxedStrategy<Reply> {
    prop_oneof![
        Just(Reply::Unit),
        (uid(), key()).prop_map(|(uid, branch)| Reply::Committed(CommitResult { uid, branch })),
        (value(), uid()).prop_map(|(value, uid)| Reply::Got(GetResult { value, uid })),
        vec(uid(), 0..6).prop_map(Reply::Uids),
        stat().prop_map(Reply::Stat),
        (vec((blob(), blob()), 0..6), proptest::bool::ANY, uid()).prop_map(
            |(entries, truncated, version)| Reply::Page(MapPage {
                entries,
                truncated,
                version,
            })
        ),
        vec(key(), 0..6).prop_map(Reply::Keys),
        num::u64::ANY.prop_map(Reply::Count),
        gc_report().prop_map(Reply::Gc),
        vec(outcome(), 0..5).prop_map(Reply::Outcomes),
        raw(96).prop_map(Reply::Blob),
        ".{0,48}".prop_map(Reply::Text),
        wire_error().prop_map(Reply::Err),
    ]
    .boxed()
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    /// Every request survives the full body→frame→body→value round trip.
    #[test]
    fn request_roundtrips_through_the_frame_codec(req in request()) {
        let body = req.encode();
        let framed = encode_frame(&body);
        let read = read_frame(&mut framed.as_slice()).expect("well-formed frame");
        prop_assert_eq!(&read, &body, "frame body drifted");
        let decoded = Request::decode(&read).expect("well-formed body");
        prop_assert_eq!(decoded, req);
    }

    /// Every reply — including every error shape — round trips.
    #[test]
    fn reply_roundtrips_through_the_frame_codec(rep in reply()) {
        let body = rep.encode();
        let framed = encode_frame(&body);
        let read = read_frame(&mut framed.as_slice()).expect("well-formed frame");
        prop_assert_eq!(&read, &body, "frame body drifted");
        let decoded = Reply::decode(&read).expect("well-formed body");
        prop_assert_eq!(decoded, rep);
    }

    /// Cutting a frame at ANY byte boundary yields `Torn`, never a
    /// partial decode, a hang, or a panic.
    #[test]
    fn torn_frames_are_rejected(req in request(), cut in num::usize::ANY) {
        let framed = encode_frame(&req.encode());
        let cut = cut % framed.len(); // strictly shorter than the frame
        let result = read_frame(&mut &framed[..cut]);
        prop_assert!(
            matches!(result, Err(FrameError::Torn)),
            "cut at {} of {} gave {:?}",
            cut,
            framed.len(),
            result
        );
    }

    /// A length prefix past `MAX_FRAME_LEN` is rejected before any
    /// payload is read — regardless of what follows it.
    #[test]
    fn oversized_length_prefixes_are_rejected(
        extra in 1u32..=u32::MAX - MAX_FRAME_LEN,
        junk in vec(num::u8::ANY, 0..32),
    ) {
        let claimed = MAX_FRAME_LEN + extra;
        let mut data = claimed.to_le_bytes().to_vec();
        data.extend_from_slice(&junk);
        let result = read_frame(&mut data.as_slice());
        prop_assert!(
            matches!(result, Err(FrameError::TooLarge(n)) if n == claimed),
            "claimed {} gave {:?}",
            claimed,
            result
        );
    }

    /// A huge length prefix *under* the cap with almost no bytes behind
    /// it must fail fast as `Torn` with allocation bounded by the bytes
    /// actually received (the reader tracks received bytes, not the
    /// claimed length — a 200 MiB claim with 8 junk bytes behind it
    /// would OOM-spray under an eager allocator and completes instantly
    /// here).
    #[test]
    fn large_claims_with_tiny_payloads_fail_bounded(
        claimed in (64 * 1024 * 1024u32)..MAX_FRAME_LEN,
        junk in vec(num::u8::ANY, 0..16),
    ) {
        let mut data = claimed.to_le_bytes().to_vec();
        data.extend_from_slice(&junk);
        let result = read_frame(&mut data.as_slice());
        prop_assert!(
            matches!(result, Err(FrameError::Torn)),
            "claimed {} with {} real bytes gave {:?}",
            claimed,
            junk.len(),
            result
        );
    }

    /// Flipping any bit after the length prefix trips the CRC tail.
    #[test]
    fn corrupted_frames_fail_the_crc(req in request(), pos in num::usize::ANY, bit in 0u8..8) {
        let mut framed = encode_frame(&req.encode());
        let pos = 4 + pos % (framed.len() - 4); // anywhere past the prefix
        framed[pos] ^= 1 << bit;
        let result = read_frame(&mut framed.as_slice());
        prop_assert!(
            matches!(result, Err(FrameError::BadCrc)),
            "flip at {} gave {:?}",
            pos,
            result
        );
    }

    /// Every version in the supported range decodes, and the reader
    /// reports the version it saw (servelets echo it in the reply frame
    /// so a down-level peer can parse the answer).
    #[test]
    fn supported_versions_are_accepted_and_reported(
        req in request(),
        version in MIN_WIRE_VERSION..=WIRE_VERSION,
    ) {
        let body = req.encode();
        let framed = encode_frame_with_version(version, &body);
        let (seen, read) = read_frame_versioned(&mut framed.as_slice())
            .expect("supported version");
        prop_assert_eq!(seen, version);
        prop_assert_eq!(&read, &body);
        let decoded = Request::decode(&read).expect("well-formed body");
        prop_assert_eq!(decoded, req);
    }

    /// A frame with a valid CRC but a version outside the supported
    /// range is refused with `BadVersion` (version skew must not decode
    /// as garbage).
    #[test]
    fn foreign_versions_are_rejected(req in request(), version in num::u8::ANY) {
        prop_assume!(!(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version));
        let body = req.encode();
        let len = 1 + body.len() + 4;
        let mut data = Vec::with_capacity(4 + len);
        data.extend_from_slice(&(len as u32).to_le_bytes());
        data.push(version);
        data.extend_from_slice(&body);
        let crc = crc32(&data[4..]);
        data.extend_from_slice(&crc.to_le_bytes());
        let result = read_frame(&mut data.as_slice());
        prop_assert!(
            matches!(result, Err(FrameError::BadVersion(v)) if v == version),
            "version {} gave {:?}",
            version,
            result
        );
    }

    /// Body decoders are total on garbage: random bytes produce
    /// `Ok`/`Err`, never a panic or an out-of-frame read.
    #[test]
    fn decoders_never_panic_on_garbage(body in vec(num::u8::ANY, 0..96)) {
        let _ = Request::decode(&body);
        let _ = Reply::decode(&body);
    }
}
