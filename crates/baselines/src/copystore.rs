//! RStore-style multi-version store: **no deduplication**.
//!
//! Table I lists RStore as an unstructured multi-version key-value store
//! with no dedup: every version materializes its full content. This is
//! the lower bound every dedup strategy is measured against.

use crate::{encode_pair, Snapshot, VersionedStore};

/// Full-copy multi-version store.
#[derive(Default)]
pub struct CopyStore {
    versions: Vec<Vec<u8>>,
}

impl CopyStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl VersionedStore for CopyStore {
    fn name(&self) -> &'static str {
        "copy (RStore-like, no dedup)"
    }

    fn commit(&mut self, snapshot: &Snapshot) -> u64 {
        let mut blob = Vec::new();
        for (k, v) in snapshot {
            blob.extend_from_slice(&encode_pair(k, v));
        }
        self.versions.push(blob);
        (self.versions.len() - 1) as u64
    }

    fn storage_bytes(&self) -> u64 {
        self.versions.iter().map(|v| v.len() as u64).sum()
    }

    fn get_version(&self, version: u64) -> Option<Snapshot> {
        let blob = self.versions.get(version as usize)?;
        decode_snapshot(blob)
    }

    fn version_count(&self) -> u64 {
        self.versions.len() as u64
    }
}

/// Decode the concatenated pair encoding back into a snapshot.
pub(crate) fn decode_snapshot(blob: &[u8]) -> Option<Snapshot> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < blob.len() {
        let klen = u32::from_le_bytes(blob.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let k = blob.get(pos..pos + klen)?;
        pos += klen;
        let vlen = u32::from_le_bytes(blob.get(pos..pos + 4)?.try_into().ok()?) as usize;
        pos += 4;
        let v = blob.get(pos..pos + vlen)?;
        pos += vlen;
        out.push((
            bytes::Bytes::copy_from_slice(k),
            bytes::Bytes::copy_from_slice(v),
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn conformance() {
        testutil::conformance(&mut CopyStore::new());
    }

    #[test]
    fn storage_grows_linearly_with_versions() {
        let mut s = CopyStore::new();
        let snap = testutil::snapshot(1000, None);
        s.commit(&snap);
        let one = s.storage_bytes();
        for i in 0..9 {
            s.commit(&testutil::snapshot(1000, Some(i)));
        }
        // Ten near-identical versions cost ~10× one version: no dedup.
        let ten = s.storage_bytes();
        assert!(ten > one * 9, "copy store must not dedup: {one} -> {ten}");
    }
}
