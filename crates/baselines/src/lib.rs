#![forbid(unsafe_code)]
//! Baseline versioning systems from the paper's Table I.
//!
//! The paper positions ForkBase against contemporaries by *deduplication
//! granularity* and versioning model:
//!
//! | System | Data model | Deduplication |
//! |---|---|---|
//! | ForkBase | structured/unstructured, immutable | **page level** |
//! | DataHub / Decibel | structured (table), mutable | table oriented |
//! | OrpheusDB | structured (table), mutable | table oriented |
//! | MusaeusDB | structured (table), mutable | table oriented |
//! | RStore | unstructured, mutable key-value | none |
//! | (Git) | files, immutable | whole-object |
//!
//! This crate implements the storage strategies of those comparators so
//! the Table I experiment can measure them on identical workloads. Each
//! implements [`VersionedStore`]: commit full table snapshots, report
//! storage cost, reproduce any version (so correctness is testable, not
//! assumed).
//!
//! Also here: the element-wise diff and merge baselines against which
//! POS-Tree's `O(D log N)` diff (Fig. 5) and sub-tree merge (Fig. 3) are
//! compared.

pub mod copystore;
pub mod deltastore;
pub mod elementwise;
pub mod gitstore;
pub mod tuplestore;

use bytes::Bytes;

pub use copystore::CopyStore;
pub use deltastore::DeltaStore;
pub use elementwise::{elementwise_diff, elementwise_merge, ElementDiff};
pub use gitstore::GitStore;
pub use tuplestore::TupleStore;

/// A logical table snapshot: rows sorted by key, unique keys.
pub type Snapshot = Vec<(Bytes, Bytes)>;

/// The interface every comparator implements: commit snapshots, account
/// storage, reproduce versions.
pub trait VersionedStore {
    /// Short system name for experiment output.
    fn name(&self) -> &'static str;

    /// Commit a snapshot (rows sorted by key); returns the version id.
    fn commit(&mut self, snapshot: &Snapshot) -> u64;

    /// Physical bytes consumed so far.
    fn storage_bytes(&self) -> u64;

    /// Reconstruct the snapshot of a committed version.
    fn get_version(&self, version: u64) -> Option<Snapshot>;

    /// Number of versions committed.
    fn version_count(&self) -> u64;
}

/// Serialized size of a snapshot (keys + values + framing); the logical
/// data volume against which dedup is judged.
pub fn snapshot_bytes(snapshot: &Snapshot) -> u64 {
    snapshot
        .iter()
        .map(|(k, v)| (k.len() + v.len() + 8) as u64)
        .sum()
}

/// Serialize one row for content addressing / storage accounting.
pub(crate) fn encode_pair(k: &Bytes, v: &Bytes) -> Vec<u8> {
    let mut out = Vec::with_capacity(k.len() + v.len() + 8);
    out.extend_from_slice(&(k.len() as u32).to_le_bytes());
    out.extend_from_slice(k);
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    out.extend_from_slice(v);
    out
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::Snapshot;
    use bytes::Bytes;

    /// A deterministic snapshot of `n` rows; `edit` mutates one row.
    pub fn snapshot(n: u32, edit: Option<u32>) -> Snapshot {
        (0..n)
            .map(|i| {
                let v = if Some(i) == edit {
                    format!("EDITED-value-{i}")
                } else {
                    format!("value-{i}-{}", i * 31)
                };
                (Bytes::from(format!("key-{i:08}")), Bytes::from(v))
            })
            .collect()
    }

    /// Shared conformance suite run by every implementation's tests.
    pub fn conformance(store: &mut dyn super::VersionedStore) {
        let s1 = snapshot(500, None);
        let s2 = snapshot(500, Some(250));
        let v1 = store.commit(&s1);
        let v2 = store.commit(&s2);
        assert_ne!(v1, v2);
        assert_eq!(store.version_count(), 2);
        assert_eq!(store.get_version(v1).as_ref(), Some(&s1));
        assert_eq!(store.get_version(v2).as_ref(), Some(&s2));
        assert_eq!(store.get_version(999), None);
        assert!(store.storage_bytes() > 0);
    }
}
