//! Element-wise diff and merge baselines.
//!
//! "In conventional approaches, the two phases are performed
//! element-wise" (§II-B). These functions operate on fully-materialized
//! snapshots, so their cost is `O(N)` regardless of how small the actual
//! difference is — the comparison point for POS-Tree's `O(D log N)` diff
//! (Fig. 5) and sub-tree merge (Fig. 3).

use bytes::Bytes;

use crate::Snapshot;

/// One element-level difference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElementDiff {
    /// Key only in the right snapshot.
    Added(Bytes, Bytes),
    /// Key only in the left snapshot.
    Removed(Bytes, Bytes),
    /// Key in both with different values: `(key, from, to)`.
    Modified(Bytes, Bytes, Bytes),
}

/// Element-wise diff of two key-sorted snapshots. `O(|a| + |b|)` always.
pub fn elementwise_diff(a: &Snapshot, b: &Snapshot) -> Vec<ElementDiff> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some((ka, va)), Some((kb, vb))) => match ka.cmp(kb) {
                std::cmp::Ordering::Equal => {
                    if va != vb {
                        out.push(ElementDiff::Modified(ka.clone(), va.clone(), vb.clone()));
                    }
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    out.push(ElementDiff::Removed(ka.clone(), va.clone()));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(ElementDiff::Added(kb.clone(), vb.clone()));
                    j += 1;
                }
            },
            (Some((ka, va)), None) => {
                out.push(ElementDiff::Removed(ka.clone(), va.clone()));
                i += 1;
            }
            (None, Some((kb, vb))) => {
                out.push(ElementDiff::Added(kb.clone(), vb.clone()));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// Element-wise three-way merge of key-sorted snapshots. Walks all three
/// inputs entirely. Returns `Err(conflicting_keys)` when both sides change
/// a key differently.
pub fn elementwise_merge(
    base: &Snapshot,
    ours: &Snapshot,
    theirs: &Snapshot,
) -> Result<Snapshot, Vec<Bytes>> {
    use std::collections::BTreeMap;
    // Materialize maps (the element-wise approach's inherent O(N) cost).
    let base_m: BTreeMap<&Bytes, &Bytes> = base.iter().map(|(k, v)| (k, v)).collect();
    let ours_m: BTreeMap<&Bytes, &Bytes> = ours.iter().map(|(k, v)| (k, v)).collect();
    let theirs_m: BTreeMap<&Bytes, &Bytes> = theirs.iter().map(|(k, v)| (k, v)).collect();

    let mut all_keys: Vec<&Bytes> = base_m
        .keys()
        .chain(ours_m.keys())
        .chain(theirs_m.keys())
        .copied()
        .collect();
    all_keys.sort();
    all_keys.dedup();

    let mut out = Vec::new();
    let mut conflicts = Vec::new();
    for k in all_keys {
        let b = base_m.get(k).copied();
        let o = ours_m.get(k).copied();
        let t = theirs_m.get(k).copied();
        let winner = if o == t {
            o
        } else if o == b {
            t
        } else if t == b {
            o
        } else {
            conflicts.push((*k).clone());
            continue;
        };
        if let Some(v) = winner {
            out.push(((*k).clone(), v.clone()));
        }
    }
    if conflicts.is_empty() {
        Ok(out)
    } else {
        Err(conflicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::snapshot;

    #[test]
    fn diff_finds_the_edit() {
        let a = snapshot(100, None);
        let b = snapshot(100, Some(50));
        let d = elementwise_diff(&a, &b);
        assert_eq!(d.len(), 1);
        assert!(matches!(&d[0], ElementDiff::Modified(k, _, _)
            if k.as_ref() == format!("key-{:08}", 50).as_bytes()));
    }

    #[test]
    fn diff_detects_adds_and_removes() {
        let a = snapshot(10, None);
        let b = snapshot(12, None);
        let d = elementwise_diff(&a, &b);
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|e| matches!(e, ElementDiff::Added(..))));
        let d = elementwise_diff(&b, &a);
        assert!(d.iter().all(|e| matches!(e, ElementDiff::Removed(..))));
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let a = snapshot(100, None);
        assert!(elementwise_diff(&a, &a).is_empty());
    }

    #[test]
    fn merge_disjoint_edits() {
        let base = snapshot(100, None);
        let ours = snapshot(100, Some(10));
        let theirs = snapshot(100, Some(90));
        let merged = elementwise_merge(&base, &ours, &theirs).unwrap();
        assert_eq!(merged.len(), 100);
        assert_eq!(merged[10].1.as_ref(), b"EDITED-value-10");
        assert_eq!(merged[90].1.as_ref(), b"EDITED-value-90");
    }

    #[test]
    fn merge_conflict_detected() {
        let base = snapshot(10, None);
        let mut ours = base.clone();
        ours[3].1 = bytes::Bytes::from_static(b"ours");
        let mut theirs = base.clone();
        theirs[3].1 = bytes::Bytes::from_static(b"theirs");
        let conflicts = elementwise_merge(&base, &ours, &theirs).unwrap_err();
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0], base[3].0);
    }

    #[test]
    fn merge_handles_deletes() {
        let base = snapshot(10, None);
        let mut ours = base.clone();
        ours.remove(2); // we delete key 2
        let theirs = base.clone();
        let merged = elementwise_merge(&base, &ours, &theirs).unwrap();
        assert_eq!(merged.len(), 9);
    }
}
