//! Decibel/DataHub-style versioned table: **tuple dedup + version deltas**.
//!
//! Decibel ("the relational dataset branching system") materializes a
//! version as a delta against its parent: the sets of tuples added and
//! removed. Tuples are stored once; a version chain costs its cumulative
//! delta sizes. Reconstruction replays the chain — cheap on storage,
//! linear in chain length on reads (the classic trade-off ForkBase's
//! persistent trees avoid).

use std::collections::HashMap;

use forkbase_crypto::{sha256, Hash};

use crate::{encode_pair, Snapshot, VersionedStore};

type TupleId = u64;

struct Delta {
    parent: Option<u64>,
    added: Vec<TupleId>,
    removed: Vec<TupleId>,
}

/// Tuple-dedup store with parent deltas.
#[derive(Default)]
pub struct DeltaStore {
    tuples: Vec<Vec<u8>>,
    index: HashMap<Hash, TupleId>,
    deltas: Vec<Delta>,
    /// Materialized tuple-id set of the latest committed version, used to
    /// compute the next delta (Decibel keeps the head materialized too).
    head_ids: Vec<TupleId>,
}

impl DeltaStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, row: Vec<u8>) -> TupleId {
        let hash = sha256(&row);
        if let Some(&id) = self.index.get(&hash) {
            return id;
        }
        let id = self.tuples.len() as TupleId;
        self.tuples.push(row);
        self.index.insert(hash, id);
        id
    }

    /// Number of distinct tuples stored (for tests).
    pub fn distinct_tuples(&self) -> usize {
        self.tuples.len()
    }
}

impl VersionedStore for DeltaStore {
    fn name(&self) -> &'static str {
        "tuple+delta (Decibel-like)"
    }

    fn commit(&mut self, snapshot: &Snapshot) -> u64 {
        let new_ids: Vec<TupleId> = snapshot
            .iter()
            .map(|(k, v)| self.intern(encode_pair(k, v)))
            .collect();
        let mut new_sorted = new_ids.clone();
        new_sorted.sort_unstable();
        let mut old_sorted = self.head_ids.clone();
        old_sorted.sort_unstable();

        // Set difference both ways (sorted merge).
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < new_sorted.len() || j < old_sorted.len() {
            match (new_sorted.get(i), old_sorted.get(j)) {
                (Some(a), Some(b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    added.push(*a);
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    removed.push(*b);
                    j += 1;
                }
                (Some(a), None) => {
                    added.push(*a);
                    i += 1;
                }
                (None, Some(b)) => {
                    removed.push(*b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }

        let parent = if self.deltas.is_empty() {
            None
        } else {
            Some((self.deltas.len() - 1) as u64)
        };
        self.deltas.push(Delta {
            parent,
            added,
            removed,
        });
        self.head_ids = new_ids;
        (self.deltas.len() - 1) as u64
    }

    fn storage_bytes(&self) -> u64 {
        let tuple_bytes: u64 = self.tuples.iter().map(|t| t.len() as u64).sum();
        let delta_bytes: u64 = self
            .deltas
            .iter()
            .map(|d| ((d.added.len() + d.removed.len()) * 8 + 16) as u64)
            .sum();
        tuple_bytes + delta_bytes
    }

    fn get_version(&self, version: u64) -> Option<Snapshot> {
        if version as usize >= self.deltas.len() {
            return None;
        }
        // Replay the chain from the root.
        let mut chain = Vec::new();
        let mut cur = Some(version);
        while let Some(v) = cur {
            chain.push(v);
            cur = self.deltas[v as usize].parent;
        }
        chain.reverse();
        let mut ids: std::collections::BTreeSet<TupleId> = std::collections::BTreeSet::new();
        for v in chain {
            let d = &self.deltas[v as usize];
            for r in &d.removed {
                ids.remove(r);
            }
            for a in &d.added {
                ids.insert(*a);
            }
        }
        // Decode and re-sort by key (ids do not preserve key order).
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let row = self.tuples.get(id as usize)?;
            out.extend(crate::copystore::decode_snapshot(row)?);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Some(out)
    }

    fn version_count(&self) -> u64 {
        self.deltas.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn conformance() {
        testutil::conformance(&mut DeltaStore::new());
    }

    #[test]
    fn deltas_stay_small_for_small_edits() {
        let mut s = DeltaStore::new();
        s.commit(&testutil::snapshot(1000, None));
        let one = s.storage_bytes();
        for i in 0..9 {
            s.commit(&testutil::snapshot(1000, Some(i)));
        }
        let ten = s.storage_bytes();
        // Each edit adds one new tuple (+ its id churn): tiny growth.
        assert!(
            ten - one < one / 5,
            "delta growth too large: {one} -> {ten}"
        );
    }

    #[test]
    fn long_chain_reconstruction_is_correct() {
        let mut s = DeltaStore::new();
        let mut versions = Vec::new();
        for i in 0..20 {
            versions.push(s.commit(&testutil::snapshot(200, Some(i % 7))));
        }
        // Every intermediate version reconstructs exactly.
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(
                s.get_version(*v).unwrap(),
                testutil::snapshot(200, Some(i as u32 % 7)),
                "version {i}"
            );
        }
    }
}
