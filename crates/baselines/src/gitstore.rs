//! Git-style whole-object store: **file-granule deduplication**.
//!
//! The paper's introduction argues that "the original Git design handles
//! data at the file granule, which is considered too coarse-grained for
//! many database applications". This baseline makes that concrete: each
//! version's content is a single content-addressed blob — identical
//! versions dedup perfectly, but a one-byte change re-stores the entire
//! object.

use std::collections::HashMap;

use forkbase_crypto::{sha256, Hash};

use crate::{encode_pair, Snapshot, VersionedStore};

/// Whole-object content-addressed versioned store.
#[derive(Default)]
pub struct GitStore {
    objects: HashMap<Hash, Vec<u8>>,
    versions: Vec<Hash>,
}

impl GitStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of unique objects (for tests).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

impl VersionedStore for GitStore {
    fn name(&self) -> &'static str {
        "git (whole-object dedup)"
    }

    fn commit(&mut self, snapshot: &Snapshot) -> u64 {
        let mut blob = Vec::new();
        for (k, v) in snapshot {
            blob.extend_from_slice(&encode_pair(k, v));
        }
        let hash = sha256(&blob);
        self.objects.entry(hash).or_insert(blob);
        self.versions.push(hash);
        (self.versions.len() - 1) as u64
    }

    fn storage_bytes(&self) -> u64 {
        // Object payloads plus one 32-byte ref per version.
        self.objects.values().map(|b| b.len() as u64).sum::<u64>() + 32 * self.versions.len() as u64
    }

    fn get_version(&self, version: u64) -> Option<Snapshot> {
        let hash = self.versions.get(version as usize)?;
        crate::copystore::decode_snapshot(self.objects.get(hash)?)
    }

    fn version_count(&self) -> u64 {
        self.versions.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn conformance() {
        testutil::conformance(&mut GitStore::new());
    }

    #[test]
    fn identical_versions_dedup_perfectly() {
        let mut s = GitStore::new();
        let snap = testutil::snapshot(500, None);
        s.commit(&snap);
        let one = s.storage_bytes();
        s.commit(&snap);
        s.commit(&snap);
        // Only the 32-byte version refs accumulate.
        assert!(s.storage_bytes() <= one + 64);
        assert_eq!(s.object_count(), 1);
    }

    #[test]
    fn one_byte_change_recopies_everything() {
        // The file-granule weakness the paper calls out.
        let mut s = GitStore::new();
        s.commit(&testutil::snapshot(1000, None));
        let one = s.storage_bytes();
        s.commit(&testutil::snapshot(1000, Some(1)));
        let two = s.storage_bytes();
        assert!(
            two - one > (one * 9) / 10,
            "tiny edit must nearly double storage: {one} -> {two}"
        );
    }
}
