//! OrpheusDB-style versioned table: **tuple-oriented deduplication**.
//!
//! OrpheusDB ("bolt-on versioning for relational databases") stores each
//! distinct tuple once in a shared data table and represents a version as
//! an *rlist* — the array of tuple ids belonging to it. Tuples dedup
//! across versions, but every version pays the full id-array cost even
//! when it differs from its parent by one row.

use std::collections::HashMap;

use forkbase_crypto::{sha256, Hash};

use crate::{encode_pair, Snapshot, VersionedStore};

/// Tuple id within the shared tuple table.
type TupleId = u64;

/// Tuple-dedup store with per-version id arrays.
#[derive(Default)]
pub struct TupleStore {
    /// Distinct tuples, appended once each.
    tuples: Vec<Vec<u8>>,
    /// Content hash → tuple id (the dedup dictionary).
    index: HashMap<Hash, TupleId>,
    /// Version → rlist (tuple ids in key order).
    rlists: Vec<Vec<TupleId>>,
}

impl TupleStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, row: Vec<u8>) -> TupleId {
        let hash = sha256(&row);
        if let Some(&id) = self.index.get(&hash) {
            return id;
        }
        let id = self.tuples.len() as TupleId;
        self.tuples.push(row);
        self.index.insert(hash, id);
        id
    }

    /// Number of distinct tuples stored (for tests).
    pub fn distinct_tuples(&self) -> usize {
        self.tuples.len()
    }
}

impl VersionedStore for TupleStore {
    fn name(&self) -> &'static str {
        "tuple+rlist (OrpheusDB-like)"
    }

    fn commit(&mut self, snapshot: &Snapshot) -> u64 {
        let rlist: Vec<TupleId> = snapshot
            .iter()
            .map(|(k, v)| self.intern(encode_pair(k, v)))
            .collect();
        self.rlists.push(rlist);
        (self.rlists.len() - 1) as u64
    }

    fn storage_bytes(&self) -> u64 {
        let tuple_bytes: u64 = self.tuples.iter().map(|t| t.len() as u64).sum();
        let rlist_bytes: u64 = self
            .rlists
            .iter()
            .map(|r| (r.len() * std::mem::size_of::<TupleId>()) as u64)
            .sum();
        tuple_bytes + rlist_bytes
    }

    fn get_version(&self, version: u64) -> Option<Snapshot> {
        let rlist = self.rlists.get(version as usize)?;
        let mut out = Vec::with_capacity(rlist.len());
        for &id in rlist {
            let row = self.tuples.get(id as usize)?;
            out.extend(crate::copystore::decode_snapshot(row)?);
        }
        Some(out)
    }

    fn version_count(&self) -> u64 {
        self.rlists.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn conformance() {
        testutil::conformance(&mut TupleStore::new());
    }

    #[test]
    fn tuples_dedup_but_rlists_accumulate() {
        let mut s = TupleStore::new();
        let n = 1000u32;
        s.commit(&testutil::snapshot(n, None));
        let one = s.storage_bytes();
        for i in 0..9 {
            s.commit(&testutil::snapshot(n, Some(i)));
        }
        let ten = s.storage_bytes();
        // Tuples shared: far better than full copies…
        assert!(ten < one * 3, "tuple dedup failed: {one} -> {ten}");
        // …but every version still pays 8 bytes per row of rlist.
        let rlist_floor = 10 * n as u64 * 8;
        assert!(ten - one >= rlist_floor - one.min(rlist_floor));
        // 1000 base tuples + 9 edited variants.
        assert_eq!(s.distinct_tuples(), 1009);
    }
}
