//! Property tests for the value codec: total, injective-enough, stable.

use bytes::Bytes;
use forkbase_crypto::Hash;
use forkbase_postree::{BlobRef, TreeRef};
use forkbase_types::Value;
use proptest::prelude::*;

fn hash_strategy() -> impl Strategy<Value = Hash> {
    proptest::collection::vec(proptest::num::u8::ANY, 32)
        .prop_map(|v| Hash::from_slice(&v).expect("32 bytes"))
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        proptest::bool::ANY.prop_map(Value::Bool),
        proptest::num::i64::ANY.prop_map(Value::Int),
        proptest::num::f64::ANY.prop_map(Value::Float),
        ".{0,64}".prop_map(Value::Str),
        (
            hash_strategy(),
            proptest::num::u64::ANY,
            proptest::num::u8::ANY
        )
            .prop_map(|(root, len, depth)| Value::Blob(BlobRef { root, len, depth })),
        (hash_strategy(), proptest::num::u64::ANY)
            .prop_map(|(r, c)| Value::List(TreeRef::new(r, c))),
        (hash_strategy(), proptest::num::u64::ANY)
            .prop_map(|(r, c)| Value::Map(TreeRef::new(r, c))),
        (hash_strategy(), proptest::num::u64::ANY)
            .prop_map(|(r, c)| Value::Set(TreeRef::new(r, c))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// decode(encode(v)) == v (with NaN canonicalization) and re-encoding
    /// is byte-stable.
    #[test]
    fn codec_roundtrip(v in value_strategy()) {
        let enc = v.encode();
        let dec = Value::decode(&enc).unwrap();
        match (&v, &dec) {
            (Value::Float(a), Value::Float(b)) if a.is_nan() => prop_assert!(b.is_nan()),
            _ => prop_assert_eq!(&dec, &v),
        }
        prop_assert_eq!(dec.encode(), enc);
    }

    /// Truncating an encoding never decodes successfully (no ambiguous
    /// prefixes feeding the FNode hash).
    #[test]
    fn truncation_always_fails(v in value_strategy(), cut in proptest::num::usize::ANY) {
        let enc = v.encode();
        prop_assume!(enc.len() > 1);
        let cut = 1 + cut % (enc.len() - 1);
        prop_assert!(Value::decode(&enc[..cut]).is_err());
    }

    /// Appending junk never decodes successfully.
    #[test]
    fn trailing_bytes_always_fail(v in value_strategy(), junk in 0u8..=255) {
        let mut enc = v.encode();
        enc.push(junk);
        prop_assert!(Value::decode(&enc).is_err());
    }

    /// Random bytes essentially never decode (decoder is strict).
    #[test]
    fn random_bytes_rejected(data in proptest::collection::vec(proptest::num::u8::ANY, 0..64)) {
        // Skip inputs that begin with a valid tag AND have exactly valid
        // structure — astronomically rare for random bytes; if one occurs,
        // the re-encoding must at least be canonical.
        if let Ok(v) = Value::decode(&data) {
            prop_assert_eq!(v.encode(), data);
        }
    }

    /// Value summaries never panic and stay single-line.
    #[test]
    fn summaries_are_wellformed(v in value_strategy()) {
        let s = v.summary();
        prop_assert!(!s.contains('\n'));
        prop_assert!(!s.is_empty());
    }
}

#[test]
fn bytes_type_unused_warning_guard() {
    // Keep the Bytes import exercised (used by other tests via API types).
    let _b: Bytes = Bytes::new();
}
