//! `VSet`: ordered sets as maps with empty values.
//!
//! Sets inherit every POS-Tree property for free: structural invariance,
//! O(D log N) diff, page-sharing dedup, three-way merge.

use bytes::Bytes;
use forkbase_chunk::ChunkerConfig;
use forkbase_postree::map::MapIter;
use forkbase_postree::node::NodeResult;
use forkbase_postree::{MapEdit, PosMap, TreeRef};
use forkbase_store::ChunkStore;

/// An immutable ordered set of byte strings.
pub struct VSet<'s, S> {
    inner: PosMap<'s, S>,
}

impl<'s, S> Clone for VSet<'s, S> {
    fn clone(&self) -> Self {
        VSet {
            inner: self.inner.clone(),
        }
    }
}

impl<'s, S: ChunkStore> VSet<'s, S> {
    /// Create an empty set.
    pub fn empty(store: &'s S, cfg: ChunkerConfig) -> NodeResult<Self> {
        Ok(VSet {
            inner: PosMap::empty(store, cfg)?,
        })
    }

    /// Open an existing set by tree reference.
    pub fn open(store: &'s S, cfg: ChunkerConfig, tree: TreeRef) -> Self {
        VSet {
            inner: PosMap::open(store, cfg, tree),
        }
    }

    /// Build from members (need not be sorted or unique).
    pub fn build(
        store: &'s S,
        cfg: ChunkerConfig,
        members: impl IntoIterator<Item = Bytes>,
    ) -> NodeResult<Self> {
        let pairs: Vec<(Bytes, Bytes)> = members.into_iter().map(|m| (m, Bytes::new())).collect();
        Ok(VSet {
            inner: PosMap::build_from_pairs(store, cfg, pairs)?,
        })
    }

    /// The tree reference.
    pub fn tree(&self) -> TreeRef {
        self.inner.tree()
    }

    /// Root hash: equal roots ⟺ equal member sets.
    pub fn root(&self) -> forkbase_crypto::Hash {
        self.inner.root()
    }

    /// Number of members.
    pub fn len(&self) -> u64 {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Membership test, `O(log N)`.
    pub fn contains(&self, member: &[u8]) -> NodeResult<bool> {
        self.inner.contains(member)
    }

    /// Insert a member, returning the new set.
    pub fn insert(&self, member: impl Into<Bytes>) -> NodeResult<Self> {
        Ok(VSet {
            inner: self.inner.insert(member, Bytes::new())?,
        })
    }

    /// Remove a member, returning the new set.
    pub fn remove(&self, member: impl Into<Bytes>) -> NodeResult<Self> {
        Ok(VSet {
            inner: self.inner.remove(member)?,
        })
    }

    /// Batch insert/remove: `(member, true)` inserts, `(member, false)`
    /// removes.
    pub fn apply(&self, edits: impl IntoIterator<Item = (Bytes, bool)>) -> NodeResult<Self> {
        let edits = edits.into_iter().map(|(m, add)| {
            if add {
                MapEdit::put(m, Bytes::new())
            } else {
                MapEdit::delete(m)
            }
        });
        Ok(VSet {
            inner: self.inner.apply(edits)?,
        })
    }

    /// Iterate members in order.
    pub fn iter(&self) -> NodeResult<SetIter<'s, S>> {
        Ok(SetIter {
            inner: self.inner.iter()?,
        })
    }

    /// Collect all members.
    pub fn to_vec(&self) -> NodeResult<Vec<Bytes>> {
        self.iter()?.collect()
    }
}

/// Iterator over set members.
pub struct SetIter<'s, S> {
    inner: MapIter<'s, S>,
}

impl<'s, S: ChunkStore> Iterator for SetIter<'s, S> {
    type Item = NodeResult<Bytes>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|r| r.map(|e| e.key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_store::MemStore;

    fn cfg() -> ChunkerConfig {
        ChunkerConfig::test_small()
    }

    #[test]
    fn build_dedups_members() {
        let store = MemStore::new();
        let s = VSet::build(
            &store,
            cfg(),
            [
                Bytes::from_static(b"b"),
                Bytes::from_static(b"a"),
                Bytes::from_static(b"b"),
            ],
        )
        .unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(b"a").unwrap());
        assert!(s.contains(b"b").unwrap());
        assert!(!s.contains(b"c").unwrap());
    }

    #[test]
    fn insert_remove() {
        let store = MemStore::new();
        let s = VSet::empty(&store, cfg()).unwrap();
        let s = s.insert(Bytes::from_static(b"x")).unwrap();
        assert!(s.contains(b"x").unwrap());
        let s2 = s.remove(Bytes::from_static(b"x")).unwrap();
        assert!(!s2.contains(b"x").unwrap());
        // Original unchanged.
        assert!(s.contains(b"x").unwrap());
    }

    #[test]
    fn set_equality_is_order_independent() {
        let store = MemStore::new();
        let s1 = VSet::build(
            &store,
            cfg(),
            (0..500).map(|i| Bytes::from(format!("m{i:05}"))),
        )
        .unwrap();
        let s2 = VSet::build(
            &store,
            cfg(),
            (0..500).rev().map(|i| Bytes::from(format!("m{i:05}"))),
        )
        .unwrap();
        assert_eq!(s1.root(), s2.root());
    }

    #[test]
    fn iteration_is_sorted() {
        let store = MemStore::new();
        let s = VSet::build(
            &store,
            cfg(),
            [
                Bytes::from_static(b"zebra"),
                Bytes::from_static(b"apple"),
                Bytes::from_static(b"mango"),
            ],
        )
        .unwrap();
        let v = s.to_vec().unwrap();
        assert_eq!(
            v,
            vec![
                Bytes::from_static(b"apple"),
                Bytes::from_static(b"mango"),
                Bytes::from_static(b"zebra")
            ]
        );
    }

    #[test]
    fn batch_apply() {
        let store = MemStore::new();
        let s = VSet::build(&store, cfg(), [Bytes::from_static(b"keep")]).unwrap();
        let s2 = s
            .apply([
                (Bytes::from_static(b"new"), true),
                (Bytes::from_static(b"keep"), false),
            ])
            .unwrap();
        assert!(s2.contains(b"new").unwrap());
        assert!(!s2.contains(b"keep").unwrap());
    }
}
