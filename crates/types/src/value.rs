//! The `Value` enum and its canonical byte encoding.

use bytes::Bytes;
use forkbase_postree::{BlobRef, TreeRef};

/// Type of a [`Value`], used by the `Meta` verb and schema checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Boolean primitive.
    Bool,
    /// Signed 64-bit integer primitive.
    Int,
    /// IEEE-754 double primitive.
    Float,
    /// UTF-8 string primitive.
    Str,
    /// Byte string (possibly large, chunked).
    Blob,
    /// Positional list of byte elements.
    List,
    /// Ordered key→value map.
    Map,
    /// Ordered set of byte keys.
    Set,
}

impl ValueType {
    /// Stable one-byte tag used in the canonical encoding.
    pub fn tag(self) -> u8 {
        match self {
            ValueType::Bool => 0x01,
            ValueType::Int => 0x02,
            ValueType::Float => 0x03,
            ValueType::Str => 0x04,
            ValueType::Blob => 0x10,
            ValueType::List => 0x11,
            ValueType::Map => 0x12,
            ValueType::Set => 0x13,
        }
    }

    /// Inverse of [`ValueType::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0x01 => ValueType::Bool,
            0x02 => ValueType::Int,
            0x03 => ValueType::Float,
            0x04 => ValueType::Str,
            0x10 => ValueType::Blob,
            0x11 => ValueType::List,
            0x12 => ValueType::Map,
            0x13 => ValueType::Set,
            _ => return None,
        })
    }

    /// Human-readable name (CLI / REST output).
    pub fn name(self) -> &'static str {
        match self {
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "string",
            ValueType::Blob => "blob",
            ValueType::List => "list",
            ValueType::Map => "map",
            ValueType::Set => "set",
        }
    }
}

impl std::fmt::Display for ValueType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed ForkBase value.
///
/// Collection variants store *references*; the data lives in the chunk
/// store as POS-Trees. Equality is value equality: thanks to structural
/// invariance, two collections are equal iff their references are.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// IEEE-754 double. Encoded by raw bits; NaNs are canonicalized to the
    /// quiet NaN bit pattern so equal-looking values encode identically.
    Float(f64),
    /// UTF-8 string (stored inline; use `Blob` for large payloads).
    Str(String),
    /// Chunked byte string.
    Blob(BlobRef),
    /// Positional list.
    List(TreeRef),
    /// Ordered map.
    Map(TreeRef),
    /// Ordered set.
    Set(TreeRef),
}

/// Error decoding a value from canonical bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueDecodeError(pub String);

impl std::fmt::Display for ValueDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "value decode error: {}", self.0)
    }
}

impl std::error::Error for ValueDecodeError {}

const QNAN_BITS: u64 = 0x7ff8_0000_0000_0000;

impl Value {
    /// This value's type.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Blob(_) => ValueType::Blob,
            Value::List(_) => ValueType::List,
            Value::Map(_) => ValueType::Map,
            Value::Set(_) => ValueType::Set,
        }
    }

    /// Canonical encoding: `tag | payload`. Deterministic and total; feeds
    /// the FNode hash.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.push(self.value_type().tag());
        match self {
            Value::Bool(b) => out.push(u8::from(*b)),
            Value::Int(i) => out.extend_from_slice(&i.to_le_bytes()),
            Value::Float(f) => {
                let bits = if f.is_nan() { QNAN_BITS } else { f.to_bits() };
                out.extend_from_slice(&bits.to_le_bytes());
            }
            Value::Str(s) => {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Blob(r) => {
                out.extend_from_slice(r.root.as_bytes());
                out.extend_from_slice(&r.len.to_le_bytes());
                out.push(r.depth);
            }
            Value::List(t) | Value::Map(t) | Value::Set(t) => {
                out.extend_from_slice(t.root.as_bytes());
                out.extend_from_slice(&t.count.to_le_bytes());
            }
        }
        out
    }

    /// Decode the canonical encoding.
    pub fn decode(bytes: &[u8]) -> Result<Value, ValueDecodeError> {
        let (&tag, rest) = bytes
            .split_first()
            .ok_or_else(|| ValueDecodeError("empty input".into()))?;
        let vt = ValueType::from_tag(tag)
            .ok_or_else(|| ValueDecodeError(format!("unknown tag 0x{tag:02x}")))?;
        let take = |n: usize| -> Result<&[u8], ValueDecodeError> {
            rest.get(..n)
                .ok_or_else(|| ValueDecodeError(format!("truncated {vt} payload")))
        };
        let exact = |n: usize| -> Result<&[u8], ValueDecodeError> {
            if rest.len() != n {
                return Err(ValueDecodeError(format!(
                    "{vt} payload length {} != {n}",
                    rest.len()
                )));
            }
            Ok(rest)
        };
        Ok(match vt {
            ValueType::Bool => {
                let b = exact(1)?[0];
                if b > 1 {
                    return Err(ValueDecodeError(format!("bad bool byte {b}")));
                }
                Value::Bool(b == 1)
            }
            ValueType::Int => {
                Value::Int(i64::from_le_bytes(exact(8)?.try_into().expect("8 bytes")))
            }
            ValueType::Float => Value::Float(f64::from_bits(u64::from_le_bytes(
                exact(8)?.try_into().expect("8 bytes"),
            ))),
            ValueType::Str => {
                let len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
                let body = rest
                    .get(4..4 + len)
                    .ok_or_else(|| ValueDecodeError("truncated string".into()))?;
                if rest.len() != 4 + len {
                    return Err(ValueDecodeError("trailing bytes after string".into()));
                }
                Value::Str(
                    String::from_utf8(body.to_vec())
                        .map_err(|e| ValueDecodeError(format!("invalid UTF-8: {e}")))?,
                )
            }
            ValueType::Blob => {
                let body = exact(32 + 8 + 1)?;
                Value::Blob(BlobRef {
                    root: forkbase_crypto::Hash::from_slice(&body[..32]).expect("32 bytes"),
                    len: u64::from_le_bytes(body[32..40].try_into().expect("8 bytes")),
                    depth: body[40],
                })
            }
            ValueType::List | ValueType::Map | ValueType::Set => {
                let body = exact(32 + 8)?;
                let t = TreeRef::new(
                    forkbase_crypto::Hash::from_slice(&body[..32]).expect("32 bytes"),
                    u64::from_le_bytes(body[32..40].try_into().expect("8 bytes")),
                );
                match vt {
                    ValueType::List => Value::List(t),
                    ValueType::Map => Value::Map(t),
                    _ => Value::Set(t),
                }
            }
        })
    }

    /// Short human-readable rendering for CLI output. Collections show
    /// their root id prefix and size rather than content.
    pub fn summary(&self) -> String {
        match self {
            Value::Bool(b) => format!("{b}"),
            Value::Int(i) => format!("{i}"),
            Value::Float(f) => format!("{f}"),
            Value::Str(s) => {
                if s.len() <= 64 {
                    format!("{s:?}")
                } else {
                    // Cut on a char boundary: byte 61 may fall inside a
                    // multi-byte code point.
                    let cut = s
                        .char_indices()
                        .map(|(i, _)| i)
                        .take_while(|&i| i <= 61)
                        .last()
                        .unwrap_or(0);
                    format!("{:?}… ({} bytes)", &s[..cut], s.len())
                }
            }
            Value::Blob(r) => format!("blob<{} bytes, root {}>", r.len, r.root.short()),
            Value::List(t) => format!("list<{} items, root {}>", t.count, t.root.short()),
            Value::Map(t) => format!("map<{} entries, root {}>", t.count, t.root.short()),
            Value::Set(t) => format!("set<{} members, root {}>", t.count, t.root.short()),
        }
    }

    /// Convenience constructor: inline string.
    pub fn string(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The raw bytes if this is a `Str` (CLI convenience).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The tree reference if this is a collection.
    pub fn tree_ref(&self) -> Option<TreeRef> {
        match self {
            Value::List(t) | Value::Map(t) | Value::Set(t) => Some(*t),
            _ => None,
        }
    }

    /// The blob reference if this is a blob.
    pub fn blob_ref(&self) -> Option<BlobRef> {
        match self {
            Value::Blob(r) => Some(*r),
            _ => None,
        }
    }

    /// Encode to owned [`Bytes`].
    pub fn encode_bytes(&self) -> Bytes {
        Bytes::from(self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_crypto::sha256;

    fn roundtrip(v: Value) {
        let enc = v.encode();
        let dec = Value::decode(&enc).unwrap();
        assert_eq!(dec, v);
        assert_eq!(dec.encode(), enc, "re-encoding must be stable");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::Int(0));
        roundtrip(Value::Int(i64::MIN));
        roundtrip(Value::Int(i64::MAX));
        roundtrip(Value::Float(0.0));
        roundtrip(Value::Float(-1234.5678));
        roundtrip(Value::Float(f64::INFINITY));
        roundtrip(Value::Str(String::new()));
        roundtrip(Value::string("hello world"));
        roundtrip(Value::string("unicode: 日本語 ✓"));
    }

    #[test]
    fn nan_is_canonicalized() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(-f64::NAN);
        assert_eq!(a.encode(), b.encode());
        // Decoded NaN re-encodes identically.
        let dec = Value::decode(&a.encode()).unwrap();
        assert_eq!(dec.encode(), a.encode());
    }

    #[test]
    fn references_roundtrip() {
        roundtrip(Value::Blob(forkbase_postree::BlobRef {
            root: sha256(b"blob"),
            len: 12345,
            depth: 3,
        }));
        roundtrip(Value::List(TreeRef::new(sha256(b"list"), 42)));
        roundtrip(Value::Map(TreeRef::new(sha256(b"map"), 7)));
        roundtrip(Value::Set(TreeRef::new(sha256(b"set"), 0)));
    }

    #[test]
    fn type_tags_are_stable() {
        // These are on-disk format constants. Changing them breaks every
        // existing store — the test exists to make that loud.
        assert_eq!(ValueType::Bool.tag(), 0x01);
        assert_eq!(ValueType::Int.tag(), 0x02);
        assert_eq!(ValueType::Float.tag(), 0x03);
        assert_eq!(ValueType::Str.tag(), 0x04);
        assert_eq!(ValueType::Blob.tag(), 0x10);
        assert_eq!(ValueType::List.tag(), 0x11);
        assert_eq!(ValueType::Map.tag(), 0x12);
        assert_eq!(ValueType::Set.tag(), 0x13);
        for vt in [
            ValueType::Bool,
            ValueType::Int,
            ValueType::Float,
            ValueType::Str,
            ValueType::Blob,
            ValueType::List,
            ValueType::Map,
            ValueType::Set,
        ] {
            assert_eq!(ValueType::from_tag(vt.tag()), Some(vt));
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Value::decode(&[]).is_err());
        assert!(Value::decode(&[0xEE]).is_err(), "unknown tag");
        assert!(Value::decode(&[0x01, 2]).is_err(), "bad bool");
        assert!(Value::decode(&[0x02, 1, 2]).is_err(), "short int");
        let mut s = Value::string("abc").encode();
        s.push(0);
        assert!(Value::decode(&s).is_err(), "trailing bytes");
        let bad_utf8 = [0x04, 2, 0, 0, 0, 0xff, 0xfe];
        assert!(Value::decode(&bad_utf8).is_err(), "invalid utf8");
    }

    #[test]
    fn distinct_values_encode_distinctly() {
        let values = [
            Value::Bool(false),
            Value::Int(0),
            Value::Float(0.0),
            Value::Str(String::new()),
            Value::Int(1),
            Value::Bool(true),
        ];
        let encodings: Vec<Vec<u8>> = values.iter().map(Value::encode).collect();
        for i in 0..encodings.len() {
            for j in i + 1..encodings.len() {
                assert_ne!(encodings[i], encodings[j], "{i} vs {j}");
            }
        }
    }

    #[test]
    fn summary_is_compact() {
        assert_eq!(Value::Int(5).summary(), "5");
        assert!(Value::string("x".repeat(200))
            .summary()
            .contains("200 bytes"));
        let blob = Value::Blob(forkbase_postree::BlobRef {
            root: sha256(b"b"),
            len: 10,
            depth: 0,
        });
        assert!(blob.summary().starts_with("blob<10 bytes"));
    }

    #[test]
    fn value_type_display() {
        assert_eq!(ValueType::Map.to_string(), "map");
        assert_eq!(ValueType::Blob.to_string(), "blob");
    }
}
