#![forbid(unsafe_code)]
//! ForkBase typed values (paper §II, "Data Access APIs").
//!
//! "Supported data types include primitives (string, number, boolean),
//! blob, map, set and list, as well as composite data structures built on
//! them (e.g., relational table)."
//!
//! A [`Value`] is what a ForkBase key maps to in each branch. Primitives
//! are stored inline in the FNode; the collection types hold references to
//! POS-Trees so that multi-megabyte values still version, diff and dedup
//! at page granularity. The canonical encoding implemented here feeds the
//! FNode hash, making values part of the tamper-evident uid.

pub mod set;
pub mod value;

pub use set::VSet;
pub use value::{Value, ValueDecodeError, ValueType};
