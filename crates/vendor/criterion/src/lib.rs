//! Minimal `criterion`-shaped benchmark harness.
//!
//! Vendored for offline builds. It keeps the criterion API shape the
//! workspace benches use (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `Bencher::iter`) but replaces the statistics engine with
//! a simple calibrated wall-clock loop: each benchmark is auto-scaled to
//! ~20 ms per sample, `sample_size` samples are taken, and the median
//! ns/iter (plus throughput, when declared) is printed. Good enough for
//! relative comparisons on one machine; not a statistics suite.

use std::fmt::Display;
use std::time::Instant;

/// Prevent the optimizer from deleting a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Measure `f`, auto-calibrating iterations per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and calibrate: find an iteration count lasting ~20 ms.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed.as_millis() >= 20 || iters_per_sample >= 1 << 30 {
                break;
            }
            // Aim directly for the target once we have any signal.
            let scale = if elapsed.as_micros() == 0 {
                64
            } else {
                ((20_000.0 / elapsed.as_micros() as f64).ceil() as u64).clamp(2, 64)
            };
            iters_per_sample = iters_per_sample.saturating_mul(scale);
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples_ns[samples_ns.len() / 2];
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(group: &str, id: &str, ns: f64, throughput: Option<Throughput>) {
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbps = n as f64 / (ns / 1e9) / (1024.0 * 1024.0);
            format!("  [{mbps:.1} MiB/s]")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (ns / 1e9);
            format!("  [{eps:.0} elem/s]")
        }
        None => String::new(),
    };
    println!("{full:<48} time: {:>12}{rate}", format_time(ns));
    write_json_line(&full, ns, throughput);
}

/// When `BENCH_JSON_PATH` names a file, append one JSON object per result
/// (JSON-lines) so CI can upload machine-readable bench artifacts instead
/// of scraping logs.
fn write_json_line(bench: &str, ns: f64, throughput: Option<Throughput>) {
    let Ok(path) = std::env::var("BENCH_JSON_PATH") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    write_json_line_to(std::path::Path::new(&path), bench, ns, throughput);
}

fn write_json_line_to(
    path: &std::path::Path,
    bench: &str,
    ns: f64,
    throughput: Option<Throughput>,
) {
    let escaped: String = bench
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    let mut line = format!("{{\"bench\":\"{escaped}\",\"ns_per_iter\":{ns:.1}");
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mibps = n as f64 / (ns / 1e9) / (1024.0 * 1024.0);
            line.push_str(&format!(",\"bytes_per_iter\":{n},\"mib_per_s\":{mibps:.1}"));
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (ns / 1e9);
            line.push_str(&format!(
                ",\"elements_per_iter\":{n},\"elem_per_s\":{eps:.0}"
            ));
        }
        None => {}
    }
    line.push('}');
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(f, "{line}");
    }
}

/// Benchmark driver; one is created per `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark (builder form).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b);
        report("", &id.id, b.result_ns, None);
        self
    }
}

/// A set of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b);
        report(&self.name, &id.id, b.result_ns, self.throughput);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            result_ns: 0.0,
        };
        f(&mut b, input);
        report(&self.name, &id.id, b.result_ns, self.throughput);
        self
    }

    /// Finish the group (printing happens eagerly; kept for API shape).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn json_lines_escape_and_report_throughput() {
        // Call the path-taking writer directly: mutating the process
        // environment from a test races concurrently running tests that
        // read it (setenv/getenv is UB under glibc).
        let file = std::env::temp_dir().join(format!("criterion-json-{}", std::process::id()));
        let _ = std::fs::remove_file(&file);
        write_json_line_to(
            &file,
            "group/\"quoted\"",
            2_000.0,
            Some(Throughput::Bytes(1 << 20)),
        );
        write_json_line_to(&file, "plain", 10.0, None);
        let text = std::fs::read_to_string(&file).unwrap();
        let _ = std::fs::remove_file(&file);
        let mut lines = text.lines();
        let first = lines.next().unwrap();
        assert!(first.contains("\\\"quoted\\\""), "quotes escaped: {first}");
        assert!(
            first.contains("\"mib_per_s\":500000.0"),
            "1 MiB in 2 µs: {first}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"bench\":\"plain\",\"ns_per_iter\":10.0}"
        );
    }
}
