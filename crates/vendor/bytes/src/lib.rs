//! Minimal, API-compatible subset of the `bytes` crate.
//!
//! Vendored because this build environment has no network access to
//! crates.io. Only the surface the ForkBase workspace uses is provided:
//! cheaply-clonable, sliceable, immutable byte buffers. The representation
//! is an `Arc<[u8]>` (or a `&'static [u8]`) plus a `(start, end)` view, so
//! [`Bytes::clone`] and [`Bytes::slice`] are O(1) and never copy — the
//! property the zero-copy blob ingestion path relies on.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates a new empty `Bytes`.
    #[inline]
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Creates `Bytes` from a static slice without copying.
    #[inline]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copies `data` into a freshly allocated buffer (exactly one copy).
    #[inline]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the backing allocation this view keeps alive (equals
    /// [`len`](Self::len) for compact buffers, more for sub-slices).
    #[inline]
    pub fn backing_len(&self) -> usize {
        match &self.repr {
            Repr::Static(s) => s.len(),
            Repr::Shared(a) => a.len(),
        }
    }

    /// Returns a view that does not pin substantially more memory than it
    /// exposes: when this view covers less than half of its (heap) backing
    /// allocation, the bytes are copied into a tight buffer; otherwise the
    /// view is cheaply cloned. Long-lived stores call this before retaining
    /// a chunk so a small slice of a large ingest buffer cannot keep the
    /// whole buffer alive.
    pub fn compact(&self) -> Bytes {
        match &self.repr {
            // Static data is not owned; nothing is pinned.
            Repr::Static(_) => self.clone(),
            Repr::Shared(a) => {
                if self.len() * 2 >= a.len() {
                    self.clone()
                } else {
                    Bytes::copy_from_slice(self.as_slice())
                }
            }
        }
    }

    /// Number of bytes in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a zero-copy sub-view of `self` for the given range.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range start must be <= end and end <= len ({begin}..{end} of {len})"
        );
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes as a plain slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => &s[self.start..self.end],
            Repr::Shared(a) => &a[self.start..self.end],
        }
    }

    /// Copies the view into a `Vec<u8>`.
    #[inline]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    #[inline]
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// O(1): the vector becomes the backing buffer without copying.
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(Vec::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            match b {
                b'\\' => write!(f, "\\\\")?,
                b'"' => write!(f, "\\\"")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_view() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s, [2u8, 3, 4]);
        let ss = s.slice(..2);
        assert_eq!(ss, [2u8, 3]);
        // Underlying allocation is shared, not copied.
        if let (Repr::Shared(a), Repr::Shared(b)) = (&b.repr, &ss.repr) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!("expected shared representation");
        }
    }

    #[test]
    fn equality_and_ordering_follow_contents() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(vec![b'a', b'b', b'c']);
        assert_eq!(a, b);
        assert!(Bytes::from_static(b"abd") > a);
        assert_eq!(a, *b"abc");
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
        assert_eq!(Bytes::from("hi"), *b"hi");
    }

    #[test]
    fn from_vec_is_zero_copy() {
        let v = vec![7u8; 1000];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_slice().as_ptr(), ptr, "From<Vec> must not copy");
    }

    #[test]
    fn compact_releases_oversized_backing() {
        let big = Bytes::from(vec![1u8; 10_000]);
        let tiny = big.slice(100..200);
        assert_eq!(tiny.backing_len(), 10_000);
        let compacted = tiny.compact();
        assert_eq!(compacted, tiny);
        assert_eq!(compacted.backing_len(), 100);
        // A view covering most of its backing is cloned, not copied.
        let most = big.slice(..9_000);
        assert_eq!(most.compact().backing_len(), 10_000);
        // Static data is never copied.
        let st = Bytes::from_static(b"0123456789").slice(..2);
        assert_eq!(st.compact().backing_len(), 10);
    }
}
