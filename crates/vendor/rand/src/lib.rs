//! Minimal `rand` 0.8-shaped shim for offline builds.
//!
//! Deterministic (SplitMix64 + xoshiro-style mixing) and NOT
//! cryptographically secure — exactly what the benchmark workload
//! generators need, nothing more. `StdRng::seed_from_u64(s)` yields the
//! same stream on every platform, which the workloads already rely on.

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait UniformInt: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`.
    fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// Types producible from raw generator output (the `Standard`
/// distribution in real rand).
pub trait Standard: Sized {
    /// Produce one value from the generator.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

/// Object-safe random core: one 64-bit output per call.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant for workload gen.
                let off = (rng.next_u64() as u128) % span;
                (low as i128 + off as i128) as $t
            }
        }
        impl Standard for $t {
            fn from_rng(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// User-facing sampling methods, in the rand 0.8 shape.
pub trait Rng: RngCore + Sized {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Sample uniformly from `[range.start, range.end)`.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Construction from seeds, in the rand 0.8 shape.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly choose one element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        for _ in 0..1000 {
            let v = a.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = StdRng::seed_from_u64(7);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice fully ordered");
    }
}
