//! Minimal `crossbeam`-compatible shim for offline builds.
//!
//! Only `crossbeam::channel::{bounded, unbounded, Sender, Receiver}` is
//! provided, implemented on `std::sync::mpsc` (whose `Sender` has been
//! `Sync` since the crossbeam-based rewrite of std's channels).

/// Multi-producer channels in the crossbeam API shape.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when the receiving half has disconnected.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is sent or the channel disconnects.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the sending half has disconnected.
    pub use std::sync::mpsc::RecvError;
    /// Error returned by [`Receiver::recv_timeout`]: either the deadline
    /// elapsed or the sending half disconnected.
    pub use std::sync::mpsc::RecvTimeoutError;

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks until a message arrives, the channel disconnects, or
        /// `timeout` elapses — the primitive behind RPC deadlines.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// A channel of unbounded capacity.
    ///
    /// Backed by a large-capacity sync channel so `Sender` stays one type;
    /// 2^20 in-flight jobs is far beyond anything the in-process cluster
    /// simulation enqueues.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(1 << 20);
        (Sender(tx), Receiver(rx))
    }

    /// A channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn channels_roundtrip_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        drop(tx);
        assert!(rx.recv().is_err());

        let (btx, brx) = bounded::<&str>(1);
        btx.send("one").unwrap();
        assert_eq!(brx.recv().unwrap(), "one");
    }
}
