//! Minimal `parking_lot`-compatible shim over `std::sync` primitives.
//!
//! Vendored for offline builds. The API difference that matters to callers
//! is that `lock()/read()/write()` return guards directly (no poison
//! `Result`); a poisoned std lock here means a thread panicked while
//! holding the guard, and we propagate by taking the inner value anyway —
//! matching parking_lot's no-poisoning semantics.

use std::sync;

/// A mutual exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Mutex").field(&&self.0).finish()
    }
}

/// A reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&&self.0).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
