//! Minimal `proptest`-shaped randomized testing harness.
//!
//! Vendored because this build environment cannot reach crates.io. The
//! subset implemented is exactly what the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert*` / `prop_assume!`, [`prop_oneof!`],
//! strategies for integer ranges, tuples, `collection::vec`, `option::of`,
//! `num::*::ANY`, `bool::ANY`, simple regex-string strategies, and
//! `prop_map`. Differences from real proptest:
//!
//! * **No shrinking.** A failing case reports its values via the assertion
//!   message only.
//! * Case generation is deterministic per test (seeded from the test's
//!   module path and name), so failures reproduce across runs.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    ///
    /// Only `cases` is honoured; the struct is constructible with
    /// `ProptestConfig { cases: N, ..ProptestConfig::default() }` just like
    /// the real crate.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
        /// Upper bound on rejected cases before the test aborts.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not failed.
        Reject(String),
        /// A `prop_assert*` failed; the whole test fails.
        Fail(String),
    }

    /// Deterministic per-test random source (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the identifier.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies ([`crate::prop_oneof!`]).
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Build from a non-empty option list.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }

    /// `&str` as a strategy: the pattern is interpreted as a tiny regex
    /// subset (`.{a,b}` or `[class]{a,b}`) generating matching strings.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
                .unwrap_or_else(|e| panic!("unsupported string pattern {self:?}: {e}"))
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec()`]: an exact count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Full-range numeric strategies (`proptest::num::u8::ANY`, …).
pub mod num {
    macro_rules! any_int_module {
        ($($mod_name:ident => $t:ty, $conv:expr);* $(;)?) => {$(
            pub mod $mod_name {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Strategy type behind [`ANY`].
                #[derive(Clone, Copy, Debug)]
                pub struct Any;

                /// Generates any value of the type, uniformly over bits.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let conv: fn(u64) -> $t = $conv;
                        conv(rng.next_u64())
                    }
                }
            }
        )*};
    }

    any_int_module! {
        u8 => u8, |v| v as u8;
        u16 => u16, |v| v as u16;
        u32 => u32, |v| v as u32;
        u64 => u64, |v| v;
        usize => usize, |v| v as usize;
        i8 => i8, |v| v as i8;
        i16 => i16, |v| v as i16;
        i32 => i32, |v| v as i32;
        i64 => i64, |v| v as i64;
        f64 => f64, f64::from_bits;
        f32 => f32, |v| f32::from_bits(v as u32);
    }
}

/// `bool::ANY`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `option::of`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `None` about a quarter of the time, otherwise
    /// `Some` of the inner strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Regex-subset string strategies.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating strings matching a supported pattern.
    pub struct RegexGeneratorStrategy {
        pattern: &'static str,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_matching(self.pattern, rng)
                .unwrap_or_else(|e| panic!("unsupported string pattern {:?}: {e}", self.pattern))
        }
    }

    /// Build a strategy for strings matching `pattern`.
    ///
    /// Supported subset: `CLASS{a,b}` / `CLASS{n}` / `CLASS` where `CLASS`
    /// is `.` (printable ASCII) or a `[...]` character class with literal
    /// characters and `x-y` ranges.
    pub fn string_regex(pattern: &'static str) -> Result<RegexGeneratorStrategy, String> {
        // Validate eagerly so misuse fails at construction.
        parse(pattern)?;
        Ok(RegexGeneratorStrategy { pattern })
    }

    fn parse(pattern: &str) -> Result<(Vec<char>, usize, usize), String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut class: Vec<char> = Vec::new();
        if i < chars.len() && chars[i] == '.' {
            class.extend((0x20u8..0x7f).map(|b| b as char));
            i += 1;
        } else if i < chars.len() && chars[i] == '[' {
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i], chars[i + 2]);
                    if lo > hi {
                        return Err(format!("inverted class range {lo}-{hi}"));
                    }
                    class.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                    i += 3;
                } else {
                    class.push(chars[i]);
                    i += 1;
                }
            }
            if i >= chars.len() {
                return Err("unterminated character class".into());
            }
            i += 1; // ']'
        } else {
            return Err("pattern must start with '.' or '[...]'".into());
        }
        if class.is_empty() {
            return Err("empty character class".into());
        }
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let rest: String = chars[i + 1..].iter().collect();
            let Some(close) = rest.find('}') else {
                return Err("unterminated repetition".into());
            };
            if close + 1 != rest.len() {
                return Err("trailing tokens after repetition".into());
            }
            let body = &rest[..close];
            match body.split_once(',') {
                Some((a, b)) => (
                    a.parse::<usize>().map_err(|e| e.to_string())?,
                    b.parse::<usize>().map_err(|e| e.to_string())?,
                ),
                None => {
                    let n = body.parse::<usize>().map_err(|e| e.to_string())?;
                    (n, n)
                }
            }
        } else if i == chars.len() {
            (1, 1)
        } else {
            return Err(format!("unsupported token at offset {i}"));
        };
        if lo > hi {
            return Err("inverted repetition bounds".into());
        }
        Ok((class, lo, hi))
    }

    pub(crate) fn generate_matching(pattern: &str, rng: &mut TestRng) -> Result<String, String> {
        let (class, lo, hi) = parse(pattern)?;
        let len = lo + rng.below(hi - lo + 1);
        Ok((0..len).map(|_| class[rng.below(class.len())]).collect())
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests.
///
/// Accepts the same surface the real crate does for the forms used in this
/// workspace: an optional `#![proptest_config(..)]` header followed by
/// `fn name(binding in strategy, ...) { body }` items (attributes,
/// including `#[test]`, pass through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __cfg.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                        __rejected += 1;
                        if __rejected > __cfg.max_global_rejects {
                            panic!(
                                "proptest '{}' rejected too many cases (last: {})",
                                stringify!($name),
                                __why
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest '{}' failed on case {}: {}",
                            stringify!($name),
                            __accepted + 1,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)+), __a, __b),
            ));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        $crate::prop_assert!(__a != __b, "assertion failed: `{:?}` == `{:?}`", __a, __b);
    }};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(crate::num::u8::ANY, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_prop_map(v in prop_oneof![
            (0u8..10).prop_map(|x| x as u32),
            100u32..110,
        ]) {
            prop_assert!(v < 10 || (100..110).contains(&v));
        }
    }

    #[test]
    fn string_patterns_generate_matching() {
        let mut rng = crate::test_runner::TestRng::deterministic("strings");
        for _ in 0..50 {
            let s = crate::string::generate_matching("[a-z ]{0,12}", &mut rng).unwrap();
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            let t = crate::string::generate_matching(".{0,64}", &mut rng).unwrap();
            assert!(t.chars().count() <= 64);
        }
    }
}
