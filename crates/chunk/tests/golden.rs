//! Format-pinning tests for chunk boundaries.
//!
//! Chunk boundaries are part of the on-disk dedup format: a build that
//! slices the same content differently silently loses all cross-version
//! deduplication and changes every blob root hash. These tests pin the
//! boundary sequence for fixed streams so any drift — a Γ-table change, a
//! pattern-rule tweak, a fast-path bug — fails loudly, and exercise the
//! bulk/per-byte equivalence on adversarial streams the property tests
//! would be unlikely to generate.

use forkbase_chunk::{chunk_boundaries, chunk_boundaries_per_byte, ByteChunker, ChunkerConfig};

fn xorshift_stream(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s & 0xff) as u8
        })
        .collect()
}

fn fnv(offsets: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &o in offsets {
        for b in (o as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Pinned boundaries for a fixed seed stream under the test config.
#[test]
fn golden_offsets_test_config() {
    let data = xorshift_stream(100_000, 0x00C0_FFEE);
    let ends = chunk_boundaries(&data, ChunkerConfig::test_small());
    assert_eq!(
        ends,
        chunk_boundaries_per_byte(&data, ChunkerConfig::test_small())
    );
    // Golden values: pinned from the original per-byte implementation.
    // If these change, the on-disk chunk format changed. Do NOT update the
    // constants without understanding why (see crate docs).
    assert_eq!(ends.len(), GOLDEN_TEST_SMALL_COUNT);
    assert_eq!(&ends[..8], GOLDEN_TEST_SMALL_FIRST8);
    assert_eq!(*ends.last().unwrap(), 100_000);
    assert_eq!(fnv(&ends), GOLDEN_TEST_SMALL_FNV);
}

/// Pinned boundaries for the production data config (skip-ahead active:
/// `min_size` 512 ≫ `window` 48).
#[test]
fn golden_offsets_data_default() {
    let data = xorshift_stream(1 << 20, 0xF0CA_CC1A);
    let cfg = ChunkerConfig::data_default();
    let ends = chunk_boundaries(&data, cfg);
    assert_eq!(ends, chunk_boundaries_per_byte(&data, cfg));
    assert_eq!(ends.len(), GOLDEN_DATA_DEFAULT_COUNT);
    assert_eq!(&ends[..4], GOLDEN_DATA_DEFAULT_FIRST4);
    assert_eq!(fnv(&ends), GOLDEN_DATA_DEFAULT_FNV);
}

const GOLDEN_TEST_SMALL_COUNT: usize = 1237;
const GOLDEN_TEST_SMALL_FIRST8: &[usize] = &[40, 69, 114, 194, 264, 513, 529, 555];
const GOLDEN_TEST_SMALL_FNV: u64 = 0xea0a_35ef_6e93_43be;
const GOLDEN_DATA_DEFAULT_COUNT: usize = 229;
const GOLDEN_DATA_DEFAULT_FIRST4: &[usize] = &[10766, 19093, 24986, 26938];
const GOLDEN_DATA_DEFAULT_FNV: u64 = 0xcb8e_800b_3ddd_1b34;

/// Bulk and per-byte boundaries agree on degenerate and adversarial
/// streams: constant bytes, short inputs, patterns planted exactly at the
/// min-size edge, and max-size force cuts.
#[test]
fn bulk_equals_per_byte_on_adversarial_streams() {
    let configs = [
        ChunkerConfig::test_small(),
        ChunkerConfig::data_default(),
        ChunkerConfig::node_default(),
        // min == max: every chunk is a forced cut.
        ChunkerConfig {
            window: 8,
            pattern_bits: 4,
            min_size: 100,
            max_size: 100,
        },
        // Pattern essentially never fires: all cuts at max_size.
        ChunkerConfig {
            window: 16,
            pattern_bits: 40,
            min_size: 64,
            max_size: 1000,
        },
        // min_size below window: bulk path must take the fallback.
        ChunkerConfig {
            window: 48,
            pattern_bits: 6,
            min_size: 4,
            max_size: 4096,
        },
    ];
    let mut streams: Vec<Vec<u8>> = vec![
        vec![],
        vec![0u8; 1],
        vec![0u8; 200_000],
        vec![0xffu8; 200_000],
        (0..200_000usize).map(|i| (i % 251) as u8).collect(),
        xorshift_stream(200_000, 0xDEAD_BEEF),
    ];
    // Short inputs bracketing min/max edges of the first config.
    for n in [15, 16, 17, 511, 512, 513, 1023, 1024, 1025] {
        streams.push(xorshift_stream(n, n as u64));
    }
    for cfg in configs {
        for (si, s) in streams.iter().enumerate() {
            assert_eq!(
                chunk_boundaries(s, cfg),
                chunk_boundaries_per_byte(s, cfg),
                "stream {si} cfg {cfg:?}"
            );
        }
    }
}

/// Plant a pattern so the cut lands exactly at `min_size`, the skip-ahead
/// edge: the bulk scanner's first probed position must agree with the
/// per-byte machine, and the chunk after the cut must restart cleanly.
#[test]
fn planted_pattern_at_min_size_edge() {
    let cfg = ChunkerConfig::data_default(); // min 512, window 48
    let prefix = xorshift_stream(cfg.min_size - 4, 7);
    // Search a 4-byte tail that makes the per-byte chunker cut at exactly
    // min_size. The candidate is verified on an extended stream so the cut
    // is a real pattern hit, not the final-partial-chunk end marker.
    // Expected tries ≈ 2^pattern_bits = 4096.
    let probe_tail = xorshift_stream(1000, 1);
    let mut planted = None;
    for t in 0..=5_000_000u32 {
        let mut candidate = prefix.clone();
        candidate.extend_from_slice(&t.to_le_bytes());
        let mut probe = candidate.clone();
        probe.extend_from_slice(&probe_tail);
        if chunk_boundaries_per_byte(&probe, cfg).first() == Some(&cfg.min_size) {
            planted = Some(candidate);
            break;
        }
    }
    let planted = planted.expect("a min-size pattern tail exists within the search budget");

    // The planted cut, alone and embedded mid-stream.
    assert_eq!(chunk_boundaries(&planted, cfg), vec![cfg.min_size]);
    let mut embedded = planted.clone();
    embedded.extend_from_slice(&xorshift_stream(100_000, 99));
    assert_eq!(
        chunk_boundaries(&embedded, cfg),
        chunk_boundaries_per_byte(&embedded, cfg)
    );
    // And repeated back-to-back: every repetition cuts at the same spot
    // (reset-on-cut determinism through the skip-ahead path).
    let repeated: Vec<u8> = planted.repeat(5);
    let ends = chunk_boundaries(&repeated, cfg);
    assert_eq!(ends, (1..=5).map(|i| i * cfg.min_size).collect::<Vec<_>>());
}

/// A stream long enough to force max-size cuts through the bulk path, fed
/// fragment-by-fragment, still matches the whole-slice result.
#[test]
fn max_size_cuts_through_fragmented_feed() {
    let cfg = ChunkerConfig {
        window: 48,
        pattern_bits: 40, // never fires
        min_size: 512,
        max_size: 4096,
    };
    let data = xorshift_stream(3 * 4096 + 1234, 0xABCD);
    let whole = chunk_boundaries(&data, cfg);
    assert_eq!(whole, vec![4096, 8192, 12288, 13522]);
    let mut ck = ByteChunker::new(cfg);
    let mut ends = Vec::new();
    let mut i = 0;
    for frag in [100usize, 4000, 5000, 1, 47, 96, 4000, 4000].iter().cycle() {
        if i >= data.len() {
            break;
        }
        let end = (i + frag).min(data.len());
        let mut pos = i;
        while let Some(off) = ck.next_boundary(&data[pos..end]) {
            pos += off;
            ends.push(pos);
        }
        i = end;
    }
    if ends.last().copied() != Some(data.len()) {
        ends.push(data.len());
    }
    assert_eq!(ends, whole);
}
