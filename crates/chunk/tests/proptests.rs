//! Property tests for the rolling hash and chunkers — the determinism
//! properties the whole POS-Tree correctness argument rests on.

use forkbase_chunk::{chunk_boundaries, ByteChunker, ChunkerConfig, EntryChunker, RollingHash};
use proptest::prelude::*;

fn small_cfg() -> ChunkerConfig {
    ChunkerConfig {
        window: 16,
        pattern_bits: 6,
        min_size: 16,
        max_size: 512,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Rolling hash value equals the direct hash of the window contents at
    /// every position, for any input and window size.
    #[test]
    fn rolling_matches_direct(
        data in proptest::collection::vec(proptest::num::u8::ANY, 1..500),
        window in 1usize..64,
    ) {
        let mut rh = RollingHash::new(window);
        for (i, &b) in data.iter().enumerate() {
            let v = rh.push(b);
            let start = i.saturating_sub(window - 1);
            prop_assert_eq!(v, RollingHash::direct(&data[start..=i]));
        }
    }

    /// Boundaries are a pure function of the input.
    #[test]
    fn chunking_deterministic(data in proptest::collection::vec(proptest::num::u8::ANY, 0..20_000)) {
        prop_assert_eq!(
            chunk_boundaries(&data, small_cfg()),
            chunk_boundaries(&data, small_cfg())
        );
    }

    /// Size bounds always hold: no chunk exceeds max_size; every chunk but
    /// the last is at least min_size.
    #[test]
    fn chunk_size_bounds(data in proptest::collection::vec(proptest::num::u8::ANY, 0..20_000)) {
        let cfg = small_cfg();
        let ends = chunk_boundaries(&data, cfg);
        let mut prev = 0usize;
        for (i, &e) in ends.iter().enumerate() {
            let len = e - prev;
            prop_assert!(len <= cfg.max_size);
            if i + 1 != ends.len() {
                prop_assert!(len >= cfg.min_size);
            }
            prev = e;
        }
        if !data.is_empty() {
            prop_assert_eq!(*ends.last().unwrap(), data.len());
        }
    }

    /// Reset-on-cut composition: splitting the stream at any existing
    /// boundary and chunking the halves separately reproduces the whole.
    #[test]
    fn composition_at_boundaries(
        data in proptest::collection::vec(proptest::num::u8::ANY, 100..10_000),
        pick in proptest::num::usize::ANY,
    ) {
        let cfg = small_cfg();
        let ends = chunk_boundaries(&data, cfg);
        prop_assume!(ends.len() >= 2);
        let cut = ends[pick % (ends.len() - 1)];
        let left = chunk_boundaries(&data[..cut], cfg);
        let right = chunk_boundaries(&data[cut..], cfg);
        let recombined: Vec<usize> = left
            .iter()
            .copied()
            .chain(right.iter().map(|e| e + cut))
            .collect();
        prop_assert_eq!(recombined, ends);
    }

    /// Local-edit resynchronization: a point mutation leaves boundaries
    /// before the edit untouched and the tail boundaries re-align.
    #[test]
    fn boundaries_resync_after_point_edit(
        data in proptest::collection::vec(proptest::num::u8::ANY, 2_000..20_000),
        pos_pick in proptest::num::usize::ANY,
        flip in 1u8..=255,
    ) {
        let cfg = small_cfg();
        let pos = pos_pick % data.len();
        let mut edited = data.clone();
        edited[pos] ^= flip;
        let a = chunk_boundaries(&data, cfg);
        let b = chunk_boundaries(&edited, cfg);
        // Boundaries strictly before the edit position are identical.
        let before_a: Vec<_> = a.iter().take_while(|&&e| e <= pos).collect();
        let before_b: Vec<_> = b.iter().take_while(|&&e| e <= pos).collect();
        prop_assert_eq!(before_a, before_b);
        // And the last boundary (stream end) always matches.
        prop_assert_eq!(a.last(), b.last());
    }

    /// Entry chunker: cuts always land on entry boundaries and identical
    /// entry streams cut identically.
    #[test]
    fn entry_chunker_alignment(
        entries in proptest::collection::vec(
            proptest::collection::vec(proptest::num::u8::ANY, 1..60),
            1..200,
        ),
    ) {
        let cfg = small_cfg();
        let run = |entries: &[Vec<u8>]| -> Vec<usize> {
            let mut ck = EntryChunker::new(cfg);
            entries
                .iter()
                .enumerate()
                .filter_map(|(i, e)| ck.push_entry(e).then_some(i))
                .collect()
        };
        prop_assert_eq!(run(&entries), run(&entries));
    }

    /// ByteChunker's streaming interface agrees with chunk_boundaries.
    #[test]
    fn streaming_equals_batch(data in proptest::collection::vec(proptest::num::u8::ANY, 0..5_000)) {
        let cfg = small_cfg();
        let mut ck = ByteChunker::new(cfg);
        let mut ends = Vec::new();
        for (i, &b) in data.iter().enumerate() {
            if ck.push(b) {
                ends.push(i + 1);
            }
        }
        if ends.last().copied() != Some(data.len()) && !data.is_empty() {
            ends.push(data.len());
        }
        prop_assert_eq!(ends, chunk_boundaries(&data, cfg));
    }

    /// THE format guarantee behind the bulk fast path: the slice scanner
    /// and the per-byte state machine emit identical boundary offsets on
    /// arbitrary input, for configs on both sides of the
    /// `min_size ≥ window` skip-ahead threshold.
    #[test]
    fn bulk_equals_per_byte(data in proptest::collection::vec(proptest::num::u8::ANY, 0..30_000)) {
        for cfg in [
            small_cfg(),
            ChunkerConfig::data_default(),
            // min_size below the window: bulk path must fall back correctly.
            ChunkerConfig { window: 32, pattern_bits: 5, min_size: 8, max_size: 4096 },
            // Degenerate window.
            ChunkerConfig { window: 1, pattern_bits: 4, min_size: 4, max_size: 64 },
        ] {
            prop_assert_eq!(
                chunk_boundaries(&data, cfg),
                forkbase_chunk::chunk_boundaries_per_byte(&data, cfg),
                "cfg {:?}", cfg
            );
        }
    }

    /// Feeding the bulk interface in arbitrary fragments (as a streaming
    /// network ingester would) yields the same boundaries as one whole
    /// slice — the continuation state after a partial scan is exact.
    #[test]
    fn fragmented_next_boundary_equals_whole_slice(
        data in proptest::collection::vec(proptest::num::u8::ANY, 0..20_000),
        frag_lens in proptest::collection::vec(1usize..700, 1..80),
    ) {
        let cfg = small_cfg();
        let whole = chunk_boundaries(&data, cfg);

        let mut ck = ByteChunker::new(cfg);
        let mut ends = Vec::new();
        let mut i = 0usize;
        let mut frag_iter = frag_lens.iter().cycle();
        while i < data.len() {
            let frag_end = (i + frag_iter.next().unwrap()).min(data.len());
            // Consume one fragment, which may contain several boundaries.
            let mut pos = i;
            while let Some(off) = ck.next_boundary(&data[pos..frag_end]) {
                pos += off;
                ends.push(pos);
            }
            i = frag_end;
        }
        if ends.last().copied() != Some(data.len()) && !data.is_empty() {
            ends.push(data.len());
        }
        prop_assert_eq!(ends, whole);
    }

    /// Mixing per-byte pushes and bulk scans on one stream is coherent.
    #[test]
    fn mixed_push_and_bulk_equals_whole_slice(
        data in proptest::collection::vec(proptest::num::u8::ANY, 0..10_000),
        lens in proptest::collection::vec(1usize..300, 1..40),
        start_with_push in proptest::bool::ANY,
    ) {
        let cfg = small_cfg();
        let whole = chunk_boundaries(&data, cfg);

        let mut ck = ByteChunker::new(cfg);
        let mut ends = Vec::new();
        let mut i = 0usize;
        let mut use_push = start_with_push;
        let mut lens_iter = lens.iter().cycle();
        while i < data.len() {
            let seg_end = (i + lens_iter.next().unwrap()).min(data.len());
            if use_push {
                for (j, &b) in data[i..seg_end].iter().enumerate() {
                    if ck.push(b) {
                        ends.push(i + j + 1);
                    }
                }
            } else {
                let mut pos = i;
                while let Some(off) = ck.next_boundary(&data[pos..seg_end]) {
                    pos += off;
                    ends.push(pos);
                }
            }
            use_push = !use_push;
            i = seg_end;
        }
        if ends.last().copied() != Some(data.len()) && !data.is_empty() {
            ends.push(data.len());
        }
        prop_assert_eq!(ends, whole);
    }

    /// Slice-based EntryChunker cuts exactly like the per-byte reference.
    #[test]
    fn entry_chunker_bulk_equals_per_byte_reference(
        entries in proptest::collection::vec(
            proptest::collection::vec(proptest::num::u8::ANY, 1..80),
            1..150,
        ),
    ) {
        let cfg = small_cfg();
        // Reference: the original per-byte semantics, reimplemented here.
        let reference = |entries: &[Vec<u8>]| -> Vec<usize> {
            let mut rh = forkbase_chunk::RollingHash::new(cfg.window);
            let mut in_chunk = 0usize;
            let mut cuts = Vec::new();
            for (i, e) in entries.iter().enumerate() {
                let mut pattern = false;
                for &b in e {
                    let v = rh.push(b);
                    in_chunk += 1;
                    if in_chunk >= cfg.min_size && v & ((1u64 << cfg.pattern_bits) - 1) == 0 {
                        pattern = true;
                    }
                }
                if pattern || in_chunk >= cfg.max_size {
                    rh.reset();
                    in_chunk = 0;
                    cuts.push(i);
                }
            }
            cuts
        };
        let mut ck = EntryChunker::new(cfg);
        let bulk: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| ck.push_entry(e).then_some(i))
            .collect();
        prop_assert_eq!(bulk, reference(&entries));
    }
}
