//! Pattern-oriented chunkers built on the rolling hash.
//!
//! Both chunkers share the same pattern rule: a boundary candidate arises at
//! the first byte position (≥ `min_size` into the current chunk) where the
//! rolling hash has `pattern_bits` zero low bits. The state machine resets at
//! every emitted boundary so boundaries are a greedy deterministic function
//! of the stream (see crate docs).

use crate::rolling::{scan_boundary, RollingHash};

/// Parameters controlling pattern detection and chunk size bounds.
///
/// The expected chunk size on random data is `2^pattern_bits` bytes past the
/// minimum, i.e. roughly `min_size + 2^pattern_bits`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkerConfig {
    /// Rolling-hash window `k` in bytes.
    pub window: usize,
    /// `q`: a pattern fires when the low `q` bits of Φ are zero.
    pub pattern_bits: u32,
    /// Chunks never end before this many bytes (pattern detection disabled).
    pub min_size: usize,
    /// Chunks are force-cut at this size even without a pattern.
    pub max_size: usize,
}

impl ChunkerConfig {
    /// Default parameters for data (blob) chunks: ~4 KiB average.
    pub fn data_default() -> Self {
        ChunkerConfig {
            window: 48,
            pattern_bits: 12,
            min_size: 512,
            max_size: 64 * 1024,
        }
    }

    /// Default parameters for POS-Tree nodes: ~4 KiB average pages.
    pub fn node_default() -> Self {
        ChunkerConfig {
            window: 48,
            pattern_bits: 12,
            min_size: 256,
            max_size: 64 * 1024,
        }
    }

    /// Small chunks for tests: ~64 B average, so trees get deep quickly.
    pub fn test_small() -> Self {
        ChunkerConfig {
            window: 16,
            pattern_bits: 6,
            min_size: 16,
            max_size: 1024,
        }
    }

    /// Validate invariants; panics on nonsensical configurations.
    pub fn validate(&self) {
        assert!(self.window >= 1, "window must be >= 1");
        assert!(self.pattern_bits >= 1 && self.pattern_bits < 63);
        assert!(self.min_size >= 1, "min_size must be >= 1");
        assert!(
            self.max_size >= self.min_size,
            "max_size {} < min_size {}",
            self.max_size,
            self.min_size
        );
    }

    #[inline(always)]
    fn mask(&self) -> u64 {
        (1u64 << self.pattern_bits) - 1
    }
}

impl Default for ChunkerConfig {
    fn default() -> Self {
        Self::node_default()
    }
}

/// Byte-granularity chunker: boundaries may fall after any byte.
///
/// Used to slice `Blob` content into data chunks (Fig. 2 "Data Chunk").
///
/// Two equivalent interfaces are offered: the per-byte [`push`](Self::push)
/// for streaming callers, and the bulk [`next_boundary`](Self::next_boundary)
/// fast path for callers holding whole slices. They produce byte-identical
/// boundaries (a format guarantee — see the crate docs) and may be mixed
/// freely on one stream.
#[derive(Clone)]
pub struct ByteChunker {
    cfg: ChunkerConfig,
    /// `cfg.mask()`, hoisted out of the hot loops.
    mask: u64,
    rh: RollingHash,
    in_chunk: usize,
}

impl ByteChunker {
    /// Create a chunker with the given configuration.
    pub fn new(cfg: ChunkerConfig) -> Self {
        cfg.validate();
        ByteChunker {
            rh: RollingHash::new(cfg.window),
            mask: cfg.mask(),
            cfg,
            in_chunk: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ChunkerConfig {
        &self.cfg
    }

    /// Bytes accumulated in the current (unfinished) chunk.
    pub fn pending(&self) -> usize {
        self.in_chunk
    }

    /// Push one byte; returns `true` if a chunk boundary falls *after* it,
    /// in which case the internal state has been reset for the next chunk.
    #[inline]
    pub fn push(&mut self, b: u8) -> bool {
        let v = self.rh.push(b);
        self.in_chunk += 1;
        let cut = self.in_chunk >= self.cfg.max_size
            || (self.in_chunk >= self.cfg.min_size && v & self.mask == 0);
        if cut {
            self.reset();
        }
        cut
    }

    /// Bulk fast path: consume `data` until the next chunk boundary.
    ///
    /// Returns `Some(end)` when a boundary falls after `data[..end]`
    /// (internal state is then reset, ready for the next chunk at
    /// `data[end..]`), or `None` when all of `data` was consumed without
    /// reaching a boundary (internal state then reflects the consumed
    /// bytes, exactly as if each had been [`push`](Self::push)ed).
    ///
    /// When the first pattern-eligible position's window lies entirely
    /// inside `data` — always the case for a fresh chunk with
    /// `min_size ≥ window` — the scan runs ring-buffer-free with skip-ahead
    /// via [`scan_boundary`]; otherwise it falls back to per-byte pushes.
    pub fn next_boundary(&mut self, data: &[u8]) -> Option<usize> {
        let n = data.len();
        let already = self.in_chunk;
        // Position p in `data` has stream count `already + p + 1`.
        // First pattern-eligible position, and the forced-cut offset.
        let p_first = self.cfg.min_size.saturating_sub(already + 1);
        let p_cut = self.cfg.max_size - already;
        if p_first + 1 >= self.cfg.window {
            // Eligible windows never reach back into ring-buffered history:
            // scan the slice directly.
            if let Some(i) = scan_boundary(data, self.cfg.window, self.mask, p_first, p_cut.min(n))
            {
                self.reset();
                return Some(i + 1);
            }
            if n >= p_cut {
                self.reset();
                return Some(p_cut);
            }
            // No boundary here: fold the tail into streaming state so a
            // later push()/next_boundary() continues seamlessly.
            self.rh.absorb(data);
            self.in_chunk = already + n;
            None
        } else {
            // Mid-chunk continuation (or min_size < window): the eligible
            // window overlaps bytes held only by the ring buffer.
            for (i, &b) in data.iter().enumerate() {
                if self.push(b) {
                    return Some(i + 1);
                }
            }
            None
        }
    }

    /// Forget all state (start of a fresh chunk).
    pub fn reset(&mut self) {
        self.rh.reset();
        self.in_chunk = 0;
    }
}

/// Entry-granularity chunker: boundaries only at entry ends.
///
/// Feed whole entries with [`EntryChunker::push_entry`]. If the pattern
/// fires anywhere inside an entry, the boundary is extended to that entry's
/// end (paper §II-A). Oversized single entries simply become oversized
/// nodes — entries are never split.
#[derive(Clone)]
pub struct EntryChunker {
    cfg: ChunkerConfig,
    /// `cfg.mask()`, hoisted out of the hot loops.
    mask: u64,
    rh: RollingHash,
    in_chunk: usize,
}

impl EntryChunker {
    /// Create a chunker with the given configuration.
    pub fn new(cfg: ChunkerConfig) -> Self {
        cfg.validate();
        EntryChunker {
            rh: RollingHash::new(cfg.window),
            mask: cfg.mask(),
            cfg,
            in_chunk: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ChunkerConfig {
        &self.cfg
    }

    /// Bytes accumulated in the current (unfinished) node.
    pub fn pending(&self) -> usize {
        self.in_chunk
    }

    /// Push one entry (its canonical serialized bytes); returns `true` if a
    /// node boundary falls after this entry, in which case the state has
    /// been reset for the next node.
    ///
    /// Bytes below `min_size` into the node are never pattern-tested, only
    /// absorbed into the hash state in bulk ([`RollingHash::absorb`] skips
    /// hashing entirely for all but the trailing window of such a run);
    /// eligible bytes run through a loop with the mask hoisted.
    pub fn push_entry(&mut self, entry: &[u8]) -> bool {
        let end_count = self.in_chunk + entry.len();
        let mut pattern = false;
        if end_count < self.cfg.min_size {
            // Nothing in this entry is pattern-eligible: bulk state update.
            self.rh.absorb(entry);
        } else {
            // First entry index whose stream count reaches min_size.
            let p_first = self.cfg.min_size.saturating_sub(self.in_chunk + 1);
            if p_first > 0 {
                self.rh.absorb(&entry[..p_first]);
            }
            for &b in &entry[p_first..] {
                let v = self.rh.push(b);
                if v & self.mask == 0 {
                    pattern = true;
                    // Keep rolling to the end of the entry: state must
                    // reflect the full stream (the loop is also the
                    // eviction path).
                }
            }
        }
        self.in_chunk = end_count;
        let cut = pattern || self.in_chunk >= self.cfg.max_size;
        if cut {
            self.reset();
        }
        cut
    }

    /// Forget all state (start of a fresh node).
    pub fn reset(&mut self) {
        self.rh.reset();
        self.in_chunk = 0;
    }
}

/// Convenience: compute the boundary offsets of `data` under `cfg` using the
/// byte chunker's bulk fast path. The returned offsets are exclusive chunk
/// ends; the final partial chunk (if any) ends at `data.len()`.
pub fn chunk_boundaries(data: &[u8], cfg: ChunkerConfig) -> Vec<usize> {
    let mut ck = ByteChunker::new(cfg);
    let mut ends = Vec::new();
    let mut pos = 0usize;
    while let Some(off) = ck.next_boundary(&data[pos..]) {
        pos += off;
        ends.push(pos);
    }
    if pos < data.len() {
        ends.push(data.len());
    }
    ends
}

/// Reference implementation of [`chunk_boundaries`] using only the per-byte
/// state machine. Exists so tests (and benchmarks) can pin the bulk fast
/// path against the original semantics; the two must agree on every input,
/// byte for byte, because boundaries are on-disk format.
pub fn chunk_boundaries_per_byte(data: &[u8], cfg: ChunkerConfig) -> Vec<usize> {
    let mut ck = ByteChunker::new(cfg);
    let mut ends = Vec::new();
    for (i, &b) in data.iter().enumerate() {
        if ck.push(b) {
            ends.push(i + 1);
        }
    }
    if ends.last().copied() != Some(data.len()) && !data.is_empty() {
        ends.push(data.len());
    }
    ends
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 0xff) as u8
            })
            .collect()
    }

    #[test]
    fn boundaries_cover_input() {
        let data = pseudo_random(100_000, 7);
        let ends = chunk_boundaries(&data, ChunkerConfig::test_small());
        assert_eq!(*ends.last().unwrap(), data.len());
        let mut prev = 0;
        for &e in &ends {
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn chunk_sizes_respect_bounds() {
        let cfg = ChunkerConfig {
            window: 16,
            pattern_bits: 6,
            min_size: 32,
            max_size: 256,
        };
        let data = pseudo_random(200_000, 99);
        let ends = chunk_boundaries(&data, cfg);
        let mut prev = 0;
        for (i, &e) in ends.iter().enumerate() {
            let len = e - prev;
            assert!(len <= cfg.max_size, "chunk {i} too large: {len}");
            if e != data.len() {
                assert!(len >= cfg.min_size, "chunk {i} too small: {len}");
            }
            prev = e;
        }
    }

    #[test]
    fn average_size_tracks_pattern_bits() {
        let cfg = ChunkerConfig {
            window: 32,
            pattern_bits: 8, // expected ~min+256
            min_size: 64,
            max_size: 8192,
        };
        let data = pseudo_random(1_000_000, 3);
        let ends = chunk_boundaries(&data, cfg);
        let avg = data.len() as f64 / ends.len() as f64;
        let expected = cfg.min_size as f64 + 256.0;
        assert!(
            avg > expected * 0.6 && avg < expected * 1.6,
            "avg = {avg:.1}, expected ≈ {expected}"
        );
    }

    #[test]
    fn chunking_is_deterministic() {
        let data = pseudo_random(50_000, 1234);
        let a = chunk_boundaries(&data, ChunkerConfig::test_small());
        let b = chunk_boundaries(&data, ChunkerConfig::test_small());
        assert_eq!(a, b);
    }

    /// Core CDC property: a local edit only perturbs nearby boundaries; the
    /// boundary sequences resynchronize afterwards.
    #[test]
    fn boundaries_resynchronize_after_edit() {
        let cfg = ChunkerConfig::test_small();
        let original = pseudo_random(50_000, 42);
        let mut edited = original.clone();
        // Flip a burst of bytes in the middle.
        for b in &mut edited[25_000..25_016] {
            *b ^= 0xff;
        }
        let ends_a = chunk_boundaries(&original, cfg);
        let ends_b = chunk_boundaries(&edited, cfg);
        // Both streams have the same length, so shared suffix boundaries are
        // directly comparable.
        let shared_suffix = ends_a
            .iter()
            .rev()
            .zip(ends_b.iter().rev())
            .take_while(|(a, b)| a == b)
            .count();
        assert!(
            shared_suffix * 8 > ends_a.len() * 3, // > ~37% of chunks shared at tail
            "only {shared_suffix} of {} suffix boundaries shared",
            ends_a.len()
        );
        // And the prefix before the edit is untouched.
        let prefix_a: Vec<_> = ends_a.iter().take_while(|&&e| e <= 24_000).collect();
        let prefix_b: Vec<_> = ends_b.iter().take_while(|&&e| e <= 24_000).collect();
        assert_eq!(prefix_a, prefix_b);
    }

    /// Reset-on-cut determinism: chunking a stream that ends exactly at a
    /// boundary then continuing equals chunking the concatenation.
    #[test]
    fn reset_on_cut_composition() {
        let cfg = ChunkerConfig::test_small();
        let data = pseudo_random(20_000, 5);
        let ends = chunk_boundaries(&data, cfg);
        // Pick an interior boundary and chunk the two halves independently.
        let mid = ends[ends.len() / 2];
        let first = chunk_boundaries(&data[..mid], cfg);
        let second = chunk_boundaries(&data[mid..], cfg);
        let recombined: Vec<usize> = first
            .iter()
            .copied()
            .chain(second.iter().map(|e| e + mid))
            .collect();
        assert_eq!(recombined, ends);
    }

    #[test]
    fn entry_chunker_never_splits_entries() {
        let cfg = ChunkerConfig {
            window: 16,
            pattern_bits: 5,
            min_size: 16,
            max_size: 512,
        };
        let mut ck = EntryChunker::new(cfg);
        let data = pseudo_random(40_000, 77);
        // 100-byte entries; every boundary must land on a multiple of 100.
        let mut consumed = 0usize;
        let mut node_bytes = 0usize;
        for entry in data.chunks(100) {
            let cut = ck.push_entry(entry);
            consumed += entry.len();
            node_bytes += entry.len();
            if cut {
                assert_eq!(consumed % 100, 0);
                assert!(node_bytes <= cfg.max_size + 100, "node too large");
                node_bytes = 0;
            }
        }
    }

    #[test]
    fn entry_chunker_oversized_entry_is_kept_whole() {
        let cfg = ChunkerConfig {
            window: 16,
            pattern_bits: 6,
            min_size: 16,
            max_size: 64,
        };
        let mut ck = EntryChunker::new(cfg);
        let huge = vec![0x5au8; 1000]; // single entry far beyond max_size
        let cut = ck.push_entry(&huge);
        assert!(cut, "oversized entry must terminate its node");
        assert_eq!(ck.pending(), 0);
    }

    #[test]
    fn entry_chunker_deterministic_across_entry_partitions() {
        // The SAME byte stream partitioned into entries differently can cut
        // differently (boundaries align to entry ends) — but an identical
        // entry sequence must always cut identically.
        let cfg = ChunkerConfig::test_small();
        let data = pseudo_random(10_000, 9);
        let run = |entries: &[&[u8]]| -> Vec<usize> {
            let mut ck = EntryChunker::new(cfg);
            let mut cuts = Vec::new();
            for (i, e) in entries.iter().enumerate() {
                if ck.push_entry(e) {
                    cuts.push(i);
                }
            }
            cuts
        };
        let entries: Vec<&[u8]> = data.chunks(37).collect();
        assert_eq!(run(&entries), run(&entries));
    }

    #[test]
    #[should_panic(expected = "max_size")]
    fn config_validation_rejects_bad_bounds() {
        ChunkerConfig {
            window: 8,
            pattern_bits: 4,
            min_size: 100,
            max_size: 10,
        }
        .validate();
    }

    #[test]
    fn byte_chunker_pending_tracks_progress() {
        let mut ck = ByteChunker::new(ChunkerConfig {
            window: 4,
            pattern_bits: 20, // effectively never fires
            min_size: 1,
            max_size: 10,
        });
        for i in 0..9 {
            assert!(!ck.push(i as u8));
            assert_eq!(ck.pending(), i + 1);
        }
        assert!(ck.push(9), "max_size must force a cut");
        assert_eq!(ck.pending(), 0);
    }
}
