#![forbid(unsafe_code)]
//! Content-defined chunking for ForkBase.
//!
//! The POS-Tree (paper §II-A) defines node boundaries by *patterns* detected
//! in the byte stream of serialized entries, exactly like content-based
//! slicing in file-deduplication systems (LBFS). Given a `k`-byte window
//! `(b₁ … b_k)` and a pseudo-random function `Φ`, a pattern occurs iff
//!
//! ```text
//! Φ(b₁, …, b_k) mod 2^q == 0
//! ```
//!
//! `Φ` is the *cyclic polynomial* rolling hash (a.k.a. buzhash):
//!
//! ```text
//! Φ(b₁ … b_k) = δ(Φ(b₀ … b_{k-1})) ⊕ δᵏ(Γ(b₀)) ⊕ Γ(b_k)
//! ```
//!
//! where `δ` is a 1-bit left barrel rotate and `Γ` maps bytes to random
//! integers. Each step drops the oldest byte and admits the newest, in O(1).
//!
//! Two chunking modes are provided:
//!
//! * [`ByteChunker`] — boundaries may fall after any byte. Used for `Blob`
//!   leaf chunks.
//! * [`EntryChunker`] — boundaries only ever fall at *entry* ends: "if a
//!   pattern occurs in the middle of an entry, the page boundary is extended
//!   to cover the whole entry" (§II-A). Used for map/list/index nodes so no
//!   entry is split across pages.
//!
//! **Determinism rule.** The chunker state fully resets at every emitted
//! boundary, so the boundary sequence is a pure greedy function of the input
//! stream. This is what lets incremental POS-Tree updates re-chunk from the
//! first affected boundary and converge back onto the old boundary sequence.
//!
//! # The bulk-slice fast path
//!
//! Ingestion throughput is the gating cost of a content-addressed store, so
//! alongside the per-byte state machines ([`ByteChunker::push`],
//! [`RollingHash::push`]) this crate provides slice-granularity APIs that
//! run the same boundary rule at close to memory bandwidth:
//!
//! * [`rolling::scan_boundary`] — finds the first pattern position in a
//!   slice with no ring buffer (evictions index the input directly) and the
//!   mask and `δᵏ` rotation hoisted out of the loop.
//! * [`ByteChunker::next_boundary`] — consumes a slice up to the next
//!   boundary, using **skip-ahead**: after a cut, the first
//!   `min_size − window` bytes of the new chunk can never influence an
//!   eligible hash value (the window preceding the first eligible position
//!   starts after them), so they are never even read by the hash loop.
//! * [`RollingHash::absorb`] / the slice-aware [`EntryChunker::push_entry`]
//!   — bulk state updates that hash only the trailing window of any
//!   pattern-ineligible run.
//!
//! **Skip-ahead invariant.** `Φ` at position `i` depends only on
//! `data[i+1−window ..= i]`; a position is pattern-tested only when at least
//! `min_size` bytes of the chunk precede it. Therefore no byte earlier than
//! `min_size − window` into a chunk is ever an input to a tested hash, and
//! skipping it cannot change any boundary.
//!
//! **Format stability.** Chunk boundaries (together with the Γ table seed
//! and the pattern rule) are part of the on-disk dedup format: two builds
//! must slice identical content identically or chunk-level dedup across
//! processes breaks. The bulk path is verified byte-identical to the
//! per-byte path by property tests ([`chunk_boundaries_per_byte`] is kept
//! as the executable reference semantics) and by a golden-offsets test that
//! pins boundaries for a fixed stream.

pub mod chunker;
pub mod rolling;

pub use chunker::{
    chunk_boundaries, chunk_boundaries_per_byte, ByteChunker, ChunkerConfig, EntryChunker,
};
pub use rolling::{gamma, scan_boundary, RollingHash};
