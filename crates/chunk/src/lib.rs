//! Content-defined chunking for ForkBase.
//!
//! The POS-Tree (paper §II-A) defines node boundaries by *patterns* detected
//! in the byte stream of serialized entries, exactly like content-based
//! slicing in file-deduplication systems (LBFS). Given a `k`-byte window
//! `(b₁ … b_k)` and a pseudo-random function `Φ`, a pattern occurs iff
//!
//! ```text
//! Φ(b₁, …, b_k) mod 2^q == 0
//! ```
//!
//! `Φ` is the *cyclic polynomial* rolling hash (a.k.a. buzhash):
//!
//! ```text
//! Φ(b₁ … b_k) = δ(Φ(b₀ … b_{k-1})) ⊕ δᵏ(Γ(b₀)) ⊕ Γ(b_k)
//! ```
//!
//! where `δ` is a 1-bit left barrel rotate and `Γ` maps bytes to random
//! integers. Each step drops the oldest byte and admits the newest, in O(1).
//!
//! Two chunking modes are provided:
//!
//! * [`ByteChunker`] — boundaries may fall after any byte. Used for `Blob`
//!   leaf chunks.
//! * [`EntryChunker`] — boundaries only ever fall at *entry* ends: "if a
//!   pattern occurs in the middle of an entry, the page boundary is extended
//!   to cover the whole entry" (§II-A). Used for map/list/index nodes so no
//!   entry is split across pages.
//!
//! **Determinism rule.** The chunker state fully resets at every emitted
//! boundary, so the boundary sequence is a pure greedy function of the input
//! stream. This is what lets incremental POS-Tree updates re-chunk from the
//! first affected boundary and converge back onto the old boundary sequence.

pub mod chunker;
pub mod rolling;

pub use chunker::{chunk_boundaries, ByteChunker, ChunkerConfig, EntryChunker};
pub use rolling::{gamma, RollingHash};
