//! Cyclic polynomial (buzhash) rolling hash.
//!
//! Implements the exact recurrence from the paper (§II-A):
//!
//! ```text
//! Φ(b₁ … b_k) = δ(Φ(b₀ … b_{k-1})) ⊕ δᵏ(Γ(b₀)) ⊕ Γ(b_k)
//! ```
//!
//! `δ` rotates its 64-bit input left by one bit; applying it `k` times is a
//! rotate by `k mod 64`. `Γ` is a fixed table of pseudo-random 64-bit values,
//! generated deterministically at compile time with SplitMix64 so every
//! ForkBase build detects identical patterns — a prerequisite for pages to
//! dedup across processes and machines.

/// Fixed seed for the Γ table. Changing it changes every chunk boundary in
/// every store, so it is part of the on-disk format.
const GAMMA_SEED: u64 = 0x464f_524b_4241_5345; // "FORKBASE"

/// SplitMix64 step (public-domain constant set from Vigna).
const fn splitmix64(state: u64) -> (u64, u64) {
    let s = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (s, z ^ (z >> 31))
}

const fn build_gamma() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut state = GAMMA_SEED;
    let mut i = 0;
    while i < 256 {
        let (next, value) = splitmix64(state);
        state = next;
        table[i] = value;
        i += 1;
    }
    table
}

/// Γ: byte → pseudo-random 64-bit integer.
static GAMMA: [u64; 256] = build_gamma();

/// Γ pre-rotated by every possible δ amount, laid out twice:
/// `GAMMA_ROT[r][b] == Γ(b).rotate_left(r % 64)` for `r < 128`.
///
/// Compile-time tables so the hot eviction term `δᵏ(Γ(b_out))` is a single
/// load instead of a load plus a rotate. The doubled layout lets the bulk
/// scanner address rows `rot + c` for small constants `c` without a `% 64`,
/// turning all of its per-lane row pointers into constant offsets from one
/// base. Only the rows for the configured window are ever hot (≤ 32 KiB).
static GAMMA_ROT: [[u64; 256]; 128] = build_gamma_rot();

const fn build_gamma_rot() -> [[u64; 256]; 128] {
    let g = build_gamma();
    let mut t = [[0u64; 256]; 128];
    let mut r = 0;
    while r < 128 {
        let mut b = 0;
        while b < 256 {
            t[r][b] = g[b].rotate_left((r % 64) as u32);
            b += 1;
        }
        r += 1;
    }
    t
}

/// Look up Γ(b).
#[inline(always)]
pub fn gamma(b: u8) -> u64 {
    GAMMA[b as usize]
}

/// Streaming cyclic-polynomial hash over a sliding window of `window` bytes.
///
/// Until `window` bytes have been pushed, the hash covers the bytes seen so
/// far; afterwards each push evicts the oldest byte in O(1).
///
/// Ring-buffer wrap-around is a compare-and-reset rather than a modulo, and
/// the `δᵏ` rotation amount is precomputed. For whole-slice work prefer
/// [`RollingHash::absorb`] (bulk state updates) and [`scan_boundary`]
/// (pattern search without any ring buffer at all).
#[derive(Clone)]
pub struct RollingHash {
    window: usize,
    /// Circular buffer of the last `window` bytes.
    ring: Vec<u8>,
    /// Index in `ring` of the oldest byte (next eviction point). Stays 0
    /// throughout the fill phase: it only advances on evictions.
    head: usize,
    /// Bytes currently held (≤ window).
    filled: usize,
    /// Precomputed `window % 64`, the δᵏ rotation amount.
    rot: u32,
    value: u64,
}

impl RollingHash {
    /// Create a hash with the given window size (must be ≥ 1).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "rolling hash window must be at least 1 byte");
        RollingHash {
            window,
            ring: vec![0u8; window],
            head: 0,
            filled: 0,
            rot: (window % 64) as u32,
            value: 0,
        }
    }

    /// The configured window size `k`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of bytes currently contributing to [`Self::value`].
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Current hash value Φ over the window contents.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Push one byte, evicting the oldest if the window is full, and return
    /// the updated hash value.
    #[inline]
    pub fn push(&mut self, b: u8) -> u64 {
        if self.filled < self.window {
            // Still filling: Φ ← δ(Φ) ⊕ Γ(b). `head` is 0 here (it only
            // moves on evictions), so the slot is just `filled`.
            debug_assert_eq!(self.head, 0);
            self.value = self.value.rotate_left(1) ^ gamma(b);
            self.ring[self.filled] = b;
            self.filled += 1;
        } else {
            // Full window: Φ ← δ(Φ) ⊕ δᵏ(Γ(b_out)) ⊕ Γ(b_in)
            let out = self.ring[self.head];
            self.value =
                self.value.rotate_left(1) ^ GAMMA_ROT[self.rot as usize][out as usize] ^ gamma(b);
            self.ring[self.head] = b;
            self.head += 1;
            if self.head == self.window {
                self.head = 0;
            }
        }
        self.value
    }

    /// Absorb a whole slice, as if each byte were [`push`](Self::push)ed,
    /// and return the final hash value.
    ///
    /// Because Φ depends only on the trailing `window` bytes of the stream,
    /// a slice at least `window` long replaces the state outright — only its
    /// tail is hashed, no matter how long the slice is. This is the bulk
    /// path chunkers use to skip hash work for bytes that can never be
    /// pattern-tested.
    pub fn absorb(&mut self, bytes: &[u8]) -> u64 {
        if bytes.len() >= self.window {
            self.reset();
            for &b in &bytes[bytes.len() - self.window..] {
                self.push(b);
            }
        } else {
            for &b in bytes {
                self.push(b);
            }
        }
        self.value
    }

    /// Clear all state, as if freshly constructed.
    pub fn reset(&mut self) {
        self.head = 0;
        self.filled = 0;
        self.value = 0;
        // ring contents are dead once filled == 0
    }

    /// Hash a full window directly (non-rolling); used by tests to verify
    /// the rolling recurrence.
    pub fn direct(window_bytes: &[u8]) -> u64 {
        let mut v = 0u64;
        for &b in window_bytes {
            v = v.rotate_left(1) ^ gamma(b);
        }
        v
    }
}

/// Bulk boundary scan: the vectorizable inner loop of content-defined
/// chunking.
///
/// Returns the smallest index `i` in `[first_check, limit)` — `limit` is
/// clamped to `data.len()` — whose rolling-hash value `Φᵢ` satisfies
/// `Φᵢ & mask == 0`, where `Φᵢ` covers the window ending at `i` under
/// streaming semantics: `data[i + 1 - window ..= i]` once `i + 1 ≥ window`,
/// and `data[..= i]` (the whole stream so far) before that.
///
/// Two things make this fast relative to a per-byte [`RollingHash::push`]
/// loop:
///
/// * **Skip-ahead.** When `first_check + 1 > window`, bytes before
///   `data[first_check + 1 - window]` cannot influence any eligible hash
///   value, so they are never read — for a chunker with `min_size ≫ window`
///   this skips `min_size − window` bytes of hash work per chunk.
/// * **No ring buffer.** The evicted byte is `data[i - window]`, read
///   straight from the input slice; the steady-state loop is table lookups,
///   a rotate, and two XORs per byte with the mask and rotation hoisted out.
pub fn scan_boundary(
    data: &[u8],
    window: usize,
    mask: u64,
    first_check: usize,
    limit: usize,
) -> Option<usize> {
    debug_assert!(window >= 1);
    let limit = limit.min(data.len());
    if first_check >= limit {
        return None;
    }
    let rot = (window % 64) as u32;
    let mut v: u64;
    let i: usize;
    if first_check + 1 > window {
        // Skip-ahead: seed Φ on the window ending at `first_check`.
        let seed_start = first_check + 1 - window;
        v = 0;
        for &b in &data[seed_start..=first_check] {
            v = v.rotate_left(1) ^ gamma(b);
        }
        if v & mask == 0 {
            return Some(first_check);
        }
        i = first_check;
    } else {
        // Warm-up: Φ covers data[..=idx] until the window fills.
        v = 0;
        let warm_end = window.min(limit);
        let mut idx = 0usize;
        while idx < warm_end {
            v = v.rotate_left(1) ^ gamma(data[idx]);
            if idx >= first_check && v & mask == 0 {
                return Some(idx);
            }
            idx += 1;
        }
        if warm_end == limit {
            return None;
        }
        i = warm_end - 1;
    }
    // Steady state, 4 positions per block, in a *rotating frame*.
    //
    // The recurrence Φⱼ = δ(Φⱼ₋₁) ⊕ tⱼ (with tⱼ the two Γ lookups) is a
    // serial rotate-xor chain — 2 dependent ALU ops per byte. Substituting
    // uⱼ = δ⁻ʲ(Φⱼ) turns it into uⱼ = uⱼ₋₁ ⊕ δ⁻ʲ(tⱼ): a pure XOR prefix
    // chain, tree-reassociated below to 2 dependent XORs per 4 bytes. The
    // lookup inputs come straight out of GAMMA_ROT rows pre-rotated by −j
    // (constant row offsets thanks to the doubled table), and the pattern
    // test becomes `uⱼ & δ⁻ʲ(mask) == 0` against precomputed lane masks.
    // All 8 lookups of a block are independent of the chain, so the loads
    // run ahead of it. Four lanes keep the hot lookup rows at 16 KiB so
    // they coexist with the streamed input in L1.
    //
    // (A "value ring" variant that remembers each byte's Γ value to avoid
    // the second random load was tried and measured ~35% slower here: the
    // ring's load+store traffic and slot upkeep cost more than the extra
    // L1 lookup it saves.)
    const LANES: usize = 4;
    let rot = rot as usize;
    // Row for δ⁻ˡ(δᵏ(Γ(out))), l = 1..=LANES: rows `rot+60 ..= rot+63` of
    // the doubled table — constant offsets from one runtime base. The
    // δ⁻ˡ(Γ(in)) rows `60 ..= 63` are constant absolute addresses.
    let out_rows: &[[u64; 256]; LANES] = GAMMA_ROT[rot + 60..rot + 64]
        .try_into()
        .expect("4-row slice");
    let in_rows: &[[u64; 256]; LANES] = GAMMA_ROT[60..64].try_into().expect("4-row slice");
    let lane_masks: [u64; LANES] = std::array::from_fn(|l| mask.rotate_right(l as u32 + 1));

    let start = i + 1;
    let mut blocks_in = data[start..limit].chunks_exact(LANES);
    let mut blocks_out = data[start - window..limit - window].chunks_exact(LANES);
    let mut base = start;
    for (bi, bo) in (&mut blocks_in).zip(&mut blocks_out) {
        // One word load per stream; bytes come out of registers.
        let wi = u32::from_le_bytes(bi.try_into().expect("chunks_exact(4)"));
        let wo = u32::from_le_bytes(bo.try_into().expect("chunks_exact(4)"));
        let s = |l: usize| -> u64 {
            out_rows[LANES - 1 - l][(wo >> (8 * l)) as u8 as usize]
                ^ in_rows[LANES - 1 - l][(wi >> (8 * l)) as u8 as usize]
        };
        let (s0, s1, s2, s3) = (s(0), s(1), s(2), s(3));
        // Prefix XORs, tree-reassociated: the serial chain is only
        // v → u1 → u3; the even lanes hang off it in parallel.
        let u0 = v ^ s0;
        let u1 = v ^ (s0 ^ s1);
        let u2 = u1 ^ s2;
        let u3 = u1 ^ (s2 ^ s3);
        let hit = (u0 & lane_masks[0] == 0)
            | (u1 & lane_masks[1] == 0)
            | (u2 & lane_masks[2] == 0)
            | (u3 & lane_masks[3] == 0);
        if hit {
            let u = [u0, u1, u2, u3];
            for (l, ul) in u.iter().enumerate() {
                if ul & lane_masks[l] == 0 {
                    return Some(base + l);
                }
            }
        }
        // Back to the normal frame for the next block (δ^LANES).
        v = u3.rotate_left(LANES as u32);
        base += LANES;
    }
    let grot = &GAMMA_ROT[rot];
    for (&bin, &bout) in blocks_in.remainder().iter().zip(blocks_out.remainder()) {
        v = v.rotate_left(1) ^ grot[bout as usize] ^ GAMMA[bin as usize];
        if v & mask == 0 {
            return Some(base);
        }
        base += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_is_deterministic_and_spread() {
        // Spot-check the table is non-trivial and stable across calls.
        assert_ne!(gamma(0), gamma(1));
        assert_eq!(gamma(42), gamma(42));
        // All 256 entries distinct (SplitMix64 collisions over 256 draws are
        // astronomically unlikely; this guards accidental table corruption).
        let mut vals: Vec<u64> = (0..=255u8).map(gamma).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 256);
    }

    #[test]
    fn rolling_equals_direct_window_hash() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        let k = 48;
        let mut rh = RollingHash::new(k);
        for (i, &b) in data.iter().enumerate() {
            let v = rh.push(b);
            let start = i.saturating_sub(k - 1);
            assert_eq!(
                v,
                RollingHash::direct(&data[start..=i]),
                "mismatch at position {i}"
            );
        }
    }

    #[test]
    fn value_depends_only_on_window() {
        // Two different prefixes, same final k bytes => same hash.
        let k = 16;
        let tail: Vec<u8> = (0..k as u8).collect();
        let mut a = RollingHash::new(k);
        let mut b = RollingHash::new(k);
        for byte in [9u8; 100] {
            a.push(byte);
        }
        for byte in [200u8; 7] {
            b.push(byte);
        }
        for &t in &tail {
            a.push(t);
            b.push(t);
        }
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut rh = RollingHash::new(8);
        for b in b"some data to hash" {
            rh.push(*b);
        }
        rh.reset();
        assert_eq!(rh.value(), 0);
        assert_eq!(rh.filled(), 0);
        let mut fresh = RollingHash::new(8);
        for b in b"abc" {
            rh.push(*b);
            fresh.push(*b);
        }
        assert_eq!(rh.value(), fresh.value());
    }

    #[test]
    fn window_one_degenerates_to_gamma() {
        let mut rh = RollingHash::new(1);
        for b in [0u8, 17, 255, 3] {
            assert_eq!(rh.push(b), gamma(b));
        }
    }

    #[test]
    fn absorb_equals_pushes() {
        let data: Vec<u8> = (0..777u32).map(|i| (i * 131 % 251) as u8).collect();
        for window in [1usize, 3, 16, 48, 64] {
            // Absorb in arbitrary-sized pieces vs pushing byte-by-byte.
            for piece in [1usize, 7, window, window + 5, 300] {
                let mut bulk = RollingHash::new(window);
                let mut scalar = RollingHash::new(window);
                for chunk in data.chunks(piece) {
                    bulk.absorb(chunk);
                    for &b in chunk {
                        scalar.push(b);
                    }
                    assert_eq!(bulk.value(), scalar.value(), "w={window} piece={piece}");
                    assert_eq!(bulk.filled(), scalar.filled());
                }
                // And continuation after absorb behaves identically.
                for &b in &data[..window.min(data.len())] {
                    assert_eq!(bulk.push(b), scalar.push(b));
                }
            }
        }
    }

    #[test]
    fn scan_boundary_matches_push_loop() {
        let data: Vec<u8> = {
            let mut s = 0x5eed_5eed_5eed_5eedu64;
            (0..30_000)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s & 0xff) as u8
                })
                .collect()
        };
        for (window, bits, first_check) in [
            (16usize, 6u32, 15usize),
            (48, 8, 511),
            (48, 8, 10),
            (5, 4, 0),
            (64, 10, 63),
        ] {
            let mask = (1u64 << bits) - 1;
            // Reference: streaming pushes, checking from first_check.
            let reference = |limit: usize| -> Option<usize> {
                let mut rh = RollingHash::new(window);
                for (i, &b) in data[..limit.min(data.len())].iter().enumerate() {
                    let v = rh.push(b);
                    if i >= first_check && v & mask == 0 {
                        return Some(i);
                    }
                }
                None
            };
            for limit in [100usize, 1000, 30_000, 40_000] {
                assert_eq!(
                    scan_boundary(&data, window, mask, first_check, limit),
                    reference(limit),
                    "w={window} q={bits} first={first_check} limit={limit}"
                );
            }
        }
    }

    #[test]
    fn scan_boundary_empty_and_short_inputs() {
        assert_eq!(scan_boundary(&[], 8, 0xff, 0, 100), None);
        let tiny = [1u8, 2, 3];
        // mask 0 fires at the first eligible position.
        assert_eq!(scan_boundary(&tiny, 8, 0, 0, 100), Some(0));
        assert_eq!(scan_boundary(&tiny, 8, 0, 2, 100), Some(2));
        assert_eq!(scan_boundary(&tiny, 8, 0, 3, 100), None);
        assert_eq!(scan_boundary(&tiny, 2, 0, 1, 2), Some(1));
    }

    #[test]
    fn distribution_of_low_bits_is_uniformish() {
        // Over random-ish data, P(low q bits == 0) ≈ 2^-q. With q=8 and
        // 200k positions we expect ~781 hits; accept a generous band.
        let q = 8;
        let data: Vec<u8> = {
            // xorshift-ish deterministic stream
            let mut s = 0x1234_5678_9abc_def0u64;
            (0..200_000)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s & 0xff) as u8
                })
                .collect()
        };
        let mut rh = RollingHash::new(48);
        let mut hits = 0u32;
        for &b in &data {
            let v = rh.push(b);
            if rh.filled() == 48 && v & ((1 << q) - 1) == 0 {
                hits += 1;
            }
        }
        let expected = 200_000f64 / 256.0;
        assert!(
            (hits as f64) > expected * 0.5 && (hits as f64) < expected * 1.5,
            "hits = {hits}, expected ≈ {expected}"
        );
    }
}
