//! Cyclic polynomial (buzhash) rolling hash.
//!
//! Implements the exact recurrence from the paper (§II-A):
//!
//! ```text
//! Φ(b₁ … b_k) = δ(Φ(b₀ … b_{k-1})) ⊕ δᵏ(Γ(b₀)) ⊕ Γ(b_k)
//! ```
//!
//! `δ` rotates its 64-bit input left by one bit; applying it `k` times is a
//! rotate by `k mod 64`. `Γ` is a fixed table of pseudo-random 64-bit values,
//! generated deterministically at compile time with SplitMix64 so every
//! ForkBase build detects identical patterns — a prerequisite for pages to
//! dedup across processes and machines.

/// Fixed seed for the Γ table. Changing it changes every chunk boundary in
/// every store, so it is part of the on-disk format.
const GAMMA_SEED: u64 = 0x464f_524b_4241_5345; // "FORKBASE"

/// SplitMix64 step (public-domain constant set from Vigna).
const fn splitmix64(state: u64) -> (u64, u64) {
    let s = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = s;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (s, z ^ (z >> 31))
}

const fn build_gamma() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut state = GAMMA_SEED;
    let mut i = 0;
    while i < 256 {
        let (next, value) = splitmix64(state);
        state = next;
        table[i] = value;
        i += 1;
    }
    table
}

/// Γ: byte → pseudo-random 64-bit integer.
static GAMMA: [u64; 256] = build_gamma();

/// Look up Γ(b).
#[inline(always)]
pub fn gamma(b: u8) -> u64 {
    GAMMA[b as usize]
}

/// Streaming cyclic-polynomial hash over a sliding window of `window` bytes.
///
/// Until `window` bytes have been pushed, the hash covers the bytes seen so
/// far; afterwards each push evicts the oldest byte in O(1).
#[derive(Clone)]
pub struct RollingHash {
    window: usize,
    /// Circular buffer of the last `window` bytes.
    ring: Vec<u8>,
    /// Index in `ring` of the oldest byte (next eviction point).
    head: usize,
    /// Bytes currently held (≤ window).
    filled: usize,
    value: u64,
}

impl RollingHash {
    /// Create a hash with the given window size (must be ≥ 1).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "rolling hash window must be at least 1 byte");
        RollingHash {
            window,
            ring: vec![0u8; window],
            head: 0,
            filled: 0,
            value: 0,
        }
    }

    /// The configured window size `k`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of bytes currently contributing to [`Self::value`].
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Current hash value Φ over the window contents.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Push one byte, evicting the oldest if the window is full, and return
    /// the updated hash value.
    #[inline]
    pub fn push(&mut self, b: u8) -> u64 {
        if self.filled < self.window {
            // Still filling: Φ ← δ(Φ) ⊕ Γ(b)
            self.value = self.value.rotate_left(1) ^ gamma(b);
            let idx = (self.head + self.filled) % self.window;
            self.ring[idx] = b;
            self.filled += 1;
        } else {
            // Full window: Φ ← δ(Φ) ⊕ δᵏ(Γ(b_out)) ⊕ Γ(b_in)
            let out = self.ring[self.head];
            self.value = self.value.rotate_left(1)
                ^ gamma(out).rotate_left((self.window % 64) as u32)
                ^ gamma(b);
            self.ring[self.head] = b;
            self.head = (self.head + 1) % self.window;
        }
        self.value
    }

    /// Clear all state, as if freshly constructed.
    pub fn reset(&mut self) {
        self.head = 0;
        self.filled = 0;
        self.value = 0;
        // ring contents are dead once filled == 0
    }

    /// Hash a full window directly (non-rolling); used by tests to verify
    /// the rolling recurrence.
    pub fn direct(window_bytes: &[u8]) -> u64 {
        let mut v = 0u64;
        for &b in window_bytes {
            v = v.rotate_left(1) ^ gamma(b);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_is_deterministic_and_spread() {
        // Spot-check the table is non-trivial and stable across calls.
        assert_ne!(gamma(0), gamma(1));
        assert_eq!(gamma(42), gamma(42));
        // All 256 entries distinct (SplitMix64 collisions over 256 draws are
        // astronomically unlikely; this guards accidental table corruption).
        let mut vals: Vec<u64> = (0..=255u8).map(gamma).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 256);
    }

    #[test]
    fn rolling_equals_direct_window_hash() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        let k = 48;
        let mut rh = RollingHash::new(k);
        for (i, &b) in data.iter().enumerate() {
            let v = rh.push(b);
            let start = i.saturating_sub(k - 1);
            assert_eq!(
                v,
                RollingHash::direct(&data[start..=i]),
                "mismatch at position {i}"
            );
        }
    }

    #[test]
    fn value_depends_only_on_window() {
        // Two different prefixes, same final k bytes => same hash.
        let k = 16;
        let tail: Vec<u8> = (0..k as u8).collect();
        let mut a = RollingHash::new(k);
        let mut b = RollingHash::new(k);
        for byte in [9u8; 100] {
            a.push(byte);
        }
        for byte in [200u8; 7] {
            b.push(byte);
        }
        for &t in &tail {
            a.push(t);
            b.push(t);
        }
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut rh = RollingHash::new(8);
        for b in b"some data to hash" {
            rh.push(*b);
        }
        rh.reset();
        assert_eq!(rh.value(), 0);
        assert_eq!(rh.filled(), 0);
        let mut fresh = RollingHash::new(8);
        for b in b"abc" {
            rh.push(*b);
            fresh.push(*b);
        }
        assert_eq!(rh.value(), fresh.value());
    }

    #[test]
    fn window_one_degenerates_to_gamma() {
        let mut rh = RollingHash::new(1);
        for b in [0u8, 17, 255, 3] {
            assert_eq!(rh.push(b), gamma(b));
        }
    }

    #[test]
    fn distribution_of_low_bits_is_uniformish() {
        // Over random-ish data, P(low q bits == 0) ≈ 2^-q. With q=8 and
        // 200k positions we expect ~781 hits; accept a generous band.
        let q = 8;
        let data: Vec<u8> = {
            // xorshift-ish deterministic stream
            let mut s = 0x1234_5678_9abc_def0u64;
            (0..200_000)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    (s & 0xff) as u8
                })
                .collect()
        };
        let mut rh = RollingHash::new(48);
        let mut hits = 0u32;
        for &b in &data {
            let v = rh.push(b);
            if rh.filled() == 48 && v & ((1 << q) - 1) == 0 {
                hits += 1;
            }
        }
        let expected = 200_000f64 / 256.0;
        assert!(
            (hits as f64) > expected * 0.5 && (hits as f64) < expected * 1.5,
            "hits = {hits}, expected ≈ {expected}"
        );
    }
}
