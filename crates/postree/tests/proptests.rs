//! Property-based tests for the POS-Tree.
//!
//! These pin down the SIRI definition (paper Def. 1) and the algebraic
//! laws the rest of ForkBase relies on:
//!
//! * maps behave exactly like `BTreeMap` under arbitrary edit batches;
//! * the root hash is a pure function of the record set — regardless of
//!   how the set was reached (structural invariance, property 1);
//! * `diff` then `apply` reconstructs the target tree exactly;
//! * lists behave like `Vec` under arbitrary splices;
//! * blobs round-trip arbitrary byte strings and serve correct ranges.

use std::collections::BTreeMap;

use bytes::Bytes;
use forkbase_chunk::ChunkerConfig;
use forkbase_postree::diff::diff_maps;
use forkbase_postree::{DiffEntry, MapEdit, PosBlob, PosList, PosMap, TreeConfig};
use forkbase_store::MemStore;
use proptest::prelude::*;

fn cfg() -> ChunkerConfig {
    ChunkerConfig::test_small()
}

/// Key/value generator: short byte strings with plenty of collisions so
/// inserts, updates and deletes all get exercised.
fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::num::u8::ANY, 1..12)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::num::u8::ANY, 0..40)
}

/// A batch of edits: Some(value) = put, None = delete.
fn edits_strategy() -> impl Strategy<Value = Vec<(Vec<u8>, Option<Vec<u8>>)>> {
    proptest::collection::vec(
        (key_strategy(), proptest::option::of(value_strategy())),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Maps agree with a BTreeMap model across a sequence of edit batches.
    #[test]
    fn map_matches_btreemap_model(batches in proptest::collection::vec(edits_strategy(), 1..5)) {
        let store = MemStore::new();
        let mut map = PosMap::empty(&store, cfg()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for batch in &batches {
            let edits: Vec<MapEdit> = batch
                .iter()
                .map(|(k, v)| match v {
                    Some(v) => MapEdit::put(Bytes::from(k.clone()), Bytes::from(v.clone())),
                    None => MapEdit::delete(Bytes::from(k.clone())),
                })
                .collect();
            map = map.apply(edits).unwrap();
            for (k, v) in batch {
                match v {
                    Some(v) => { model.insert(k.clone(), v.clone()); }
                    None => { model.remove(k); }
                }
            }
            prop_assert_eq!(map.len(), model.len() as u64);
        }

        // Full scan equality.
        let got = map.to_vec().unwrap();
        let want: Vec<(Bytes, Bytes)> = model
            .iter()
            .map(|(k, v)| (Bytes::from(k.clone()), Bytes::from(v.clone())))
            .collect();
        prop_assert_eq!(got, want);

        // Point lookups for every model key plus some misses.
        for (k, v) in model.iter().take(20) {
            prop_assert_eq!(map.get(k).unwrap(), Some(Bytes::from(v.clone())));
        }
        prop_assert_eq!(map.get(b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff").unwrap(), None);
    }

    /// Structural invariance: the root depends only on the final record
    /// set, not on the path taken to it.
    #[test]
    fn root_is_history_independent(edits in edits_strategy()) {
        let store = MemStore::new();

        // Path 1: apply everything as one batch to an empty map.
        let m1 = PosMap::empty(&store, cfg()).unwrap().apply(
            edits.iter().map(|(k, v)| match v {
                Some(v) => MapEdit::put(Bytes::from(k.clone()), Bytes::from(v.clone())),
                None => MapEdit::delete(Bytes::from(k.clone())),
            })
        ).unwrap();

        // Path 2: rebuild the resulting record set from scratch.
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (k, v) in &edits {
            match v {
                Some(v) => { model.insert(k.clone(), v.clone()); }
                None => { model.remove(k); }
            }
        }
        let m2 = PosMap::build_from_sorted(
            &store,
            cfg(),
            model.iter().map(|(k, v)| (Bytes::from(k.clone()), Bytes::from(v.clone()))),
        ).unwrap();

        // Path 3: one edit at a time, in reverse key order.
        let mut m3 = PosMap::empty(&store, cfg()).unwrap();
        let mut dedup: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
        for (k, v) in edits.iter().rev() {
            if !dedup.iter().any(|(dk, _)| dk == k) {
                dedup.push((k.clone(), v.clone()));
            }
        }
        for (k, v) in &dedup {
            let edit = match v {
                Some(v) => MapEdit::put(Bytes::from(k.clone()), Bytes::from(v.clone())),
                None => MapEdit::delete(Bytes::from(k.clone())),
            };
            m3 = m3.apply([edit]).unwrap();
        }

        prop_assert_eq!(m1.root(), m2.root());
        prop_assert_eq!(m1.root(), m3.root());
    }

    /// diff then patch reconstructs the target exactly.
    #[test]
    fn diff_patch_roundtrip(base_edits in edits_strategy(), target_edits in edits_strategy()) {
        let store = MemStore::new();
        let to_batch = |edits: &[(Vec<u8>, Option<Vec<u8>>)]| -> Vec<MapEdit> {
            edits.iter().map(|(k, v)| match v {
                Some(v) => MapEdit::put(Bytes::from(k.clone()), Bytes::from(v.clone())),
                None => MapEdit::delete(Bytes::from(k.clone())),
            }).collect()
        };
        let a = PosMap::empty(&store, cfg()).unwrap().apply(to_batch(&base_edits)).unwrap();
        let b = a.apply(to_batch(&target_edits)).unwrap();

        let d = diff_maps(&store, a.tree(), b.tree()).unwrap();
        let patch: Vec<MapEdit> = d.entries.iter().map(|e| match e {
            DiffEntry::Added { key, value } => MapEdit::put(key.clone(), value.clone()),
            DiffEntry::Modified { key, to, .. } => MapEdit::put(key.clone(), to.clone()),
            DiffEntry::Removed { key, .. } => MapEdit::delete(key.clone()),
        }).collect();
        let patched = a.apply(patch).unwrap();
        prop_assert_eq!(patched.root(), b.root());
    }

    /// Lists agree with a Vec model across random splices.
    #[test]
    fn list_matches_vec_model(
        initial in proptest::collection::vec(value_strategy(), 0..40),
        splices in proptest::collection::vec(
            (0usize..50, 0usize..10, proptest::collection::vec(value_strategy(), 0..8)),
            0..6,
        ),
    ) {
        let store = MemStore::new();
        let mut list = PosList::build(
            &store,
            cfg(),
            initial.iter().map(|v| Bytes::from(v.clone())),
        ).unwrap();
        let mut model: Vec<Vec<u8>> = initial.clone();

        for (start, remove, insert) in &splices {
            let s = (*start).min(model.len());
            let r = (*remove).min(model.len() - s);
            list = list.splice(
                s as u64,
                r as u64,
                insert.iter().map(|v| Bytes::from(v.clone())),
            ).unwrap();
            model.splice(s..s + r, insert.iter().cloned());
            prop_assert_eq!(list.len(), model.len() as u64);
        }

        let got = list.to_vec().unwrap();
        let want: Vec<Bytes> = model.iter().map(|v| Bytes::from(v.clone())).collect();
        prop_assert_eq!(got, want);
    }

    /// Blob round-trip and random range reads.
    #[test]
    fn blob_roundtrip_and_ranges(
        content in proptest::collection::vec(proptest::num::u8::ANY, 0..30_000),
        ranges in proptest::collection::vec((0u64..40_000, 0u64..5_000), 0..5),
    ) {
        let store = MemStore::new();
        let blob = PosBlob::new(&store, TreeConfig::test_config());
        let r = blob.write(&content).unwrap();
        prop_assert_eq!(r.len, content.len() as u64);
        prop_assert_eq!(blob.read_all(&r).unwrap(), content.clone());
        for (off, len) in &ranges {
            let got = blob.read_range(&r, *off, *len).unwrap();
            let s = (*off as usize).min(content.len());
            let e = ((*off + *len) as usize).min(content.len());
            prop_assert_eq!(got, content[s..e].to_vec());
        }
    }

    /// Writing the same blob twice stores nothing new; equal content gives
    /// equal refs (dedup, Fig. 4's foundation).
    #[test]
    fn blob_dedup_is_total(content in proptest::collection::vec(proptest::num::u8::ANY, 0..20_000)) {
        let store = MemStore::new();
        let blob = PosBlob::new(&store, TreeConfig::test_config());
        let r1 = blob.write(&content).unwrap();
        let stored = forkbase_store::ChunkStore::stored_bytes(&store);
        let r2 = blob.write(&content).unwrap();
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(forkbase_store::ChunkStore::stored_bytes(&store), stored);
    }
}
