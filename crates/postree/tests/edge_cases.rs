//! Adversarial and boundary-condition tests for the POS-Tree.
//!
//! These inputs are chosen to stress the places where content-defined
//! structures usually crack: entries larger than the page bound, binary
//! keys at the extremes of the ordering, long shared prefixes (small
//! rolling-hash entropy), degenerate sizes, and edit patterns that land
//! exactly on node boundaries.

use bytes::Bytes;
use forkbase_chunk::ChunkerConfig;
use forkbase_postree::diff::diff_maps;
use forkbase_postree::verify::verify_map;
use forkbase_postree::{MapEdit, PosMap};
use forkbase_store::MemStore;

fn cfg() -> ChunkerConfig {
    ChunkerConfig::test_small()
}

#[test]
fn values_larger_than_max_page() {
    // A single entry bigger than max_size must become an oversized node,
    // not split or corrupt anything.
    let store = MemStore::new();
    let huge = Bytes::from(vec![0x42u8; 10_000]); // max_size is 1024
    let m = PosMap::build_from_sorted(
        &store,
        cfg(),
        [
            (Bytes::from_static(b"a"), Bytes::from_static(b"small")),
            (Bytes::from_static(b"b"), huge.clone()),
            (Bytes::from_static(b"c"), Bytes::from_static(b"small2")),
        ],
    )
    .unwrap();
    assert_eq!(m.get(b"b").unwrap(), Some(huge.clone()));
    verify_map(&store, m.tree(), cfg(), true).unwrap();

    // Updating next to the giant entry keeps it intact.
    let m2 = m
        .insert(Bytes::from_static(b"bb"), Bytes::from_static(b"mid"))
        .unwrap();
    assert_eq!(m2.get(b"b").unwrap(), Some(huge));
    verify_map(&store, m2.tree(), cfg(), true).unwrap();
}

#[test]
fn binary_keys_at_extremes() {
    let store = MemStore::new();
    let keys: Vec<Bytes> = vec![
        Bytes::from_static(&[0x00]),
        Bytes::from_static(&[0x00, 0x00]),
        Bytes::from_static(&[0x00, 0xff]),
        Bytes::from_static(&[0x7f]),
        Bytes::from_static(&[0xff]),
        Bytes::from_static(&[0xff, 0x00]),
        Bytes::from_static(&[0xff, 0xff, 0xff, 0xff]),
    ];
    let m = PosMap::build_from_sorted(
        &store,
        cfg(),
        keys.iter().map(|k| (k.clone(), Bytes::from_static(b"v"))),
    )
    .unwrap();
    for k in &keys {
        assert!(m.contains(k).unwrap(), "key {k:?}");
    }
    assert!(!m.contains(&[0x01]).unwrap());
    verify_map(&store, m.tree(), cfg(), true).unwrap();
}

#[test]
fn long_shared_prefixes_still_chunk() {
    // 2000 keys sharing a 200-byte prefix: low-entropy input for the
    // rolling hash. The tree must still split into multiple pages and
    // stay balanced-ish.
    let store = MemStore::new();
    let prefix = "p".repeat(200);
    let m = PosMap::build_from_sorted(
        &store,
        cfg(),
        (0..2000).map(|i| {
            (
                Bytes::from(format!("{prefix}{i:06}")),
                Bytes::from_static(b"x"),
            )
        }),
    )
    .unwrap();
    assert!(
        forkbase_store::ChunkStore::chunk_count(&store) > 10,
        "low-entropy input collapsed into too few pages"
    );
    assert_eq!(m.len(), 2000);
    verify_map(&store, m.tree(), cfg(), true).unwrap();
}

#[test]
fn empty_values_everywhere() {
    let store = MemStore::new();
    let m = PosMap::build_from_sorted(
        &store,
        cfg(),
        (0..500).map(|i| (Bytes::from(format!("k{i:04}")), Bytes::new())),
    )
    .unwrap();
    assert_eq!(m.get(b"k0250").unwrap(), Some(Bytes::new()));
    // Distinguish empty value from absence.
    assert_eq!(m.get(b"nope").unwrap(), None);
    verify_map(&store, m.tree(), cfg(), true).unwrap();
}

#[test]
fn insert_delete_cycle_returns_to_identical_root() {
    // History independence through a full round trip.
    let store = MemStore::new();
    let base = PosMap::build_from_sorted(
        &store,
        cfg(),
        (0..1000).map(|i| {
            (
                Bytes::from(format!("k{i:05}")),
                Bytes::from(format!("v{i}")),
            )
        }),
    )
    .unwrap();
    let mut m = base.clone();
    // Insert 100 extras, delete them again, in interleaved batches.
    for round in 0..4 {
        let inserts: Vec<MapEdit> = (0..25)
            .map(|j| {
                MapEdit::put(
                    Bytes::from(format!("extra-{round}-{j}")),
                    Bytes::from_static(b"tmp"),
                )
            })
            .collect();
        m = m.apply(inserts).unwrap();
    }
    assert_eq!(m.len(), 1100);
    for round in 0..4 {
        let deletes: Vec<MapEdit> = (0..25)
            .map(|j| MapEdit::delete(Bytes::from(format!("extra-{round}-{j}"))))
            .collect();
        m = m.apply(deletes).unwrap();
    }
    assert_eq!(
        m.root(),
        base.root(),
        "round trip must restore the exact tree"
    );
}

#[test]
fn edits_entirely_before_and_after_existing_range() {
    let store = MemStore::new();
    let base = PosMap::build_from_sorted(
        &store,
        cfg(),
        (500..1000).map(|i| (Bytes::from(format!("k{i:05}")), Bytes::from_static(b"v"))),
    )
    .unwrap();
    // All-prepend batch.
    let prepended = base
        .apply(
            (0..100)
                .map(|i| MapEdit::put(Bytes::from(format!("k{i:05}")), Bytes::from_static(b"p"))),
        )
        .unwrap();
    assert_eq!(prepended.len(), 600);
    // All-append batch.
    let appended = prepended
        .apply(
            (2000..2100)
                .map(|i| MapEdit::put(Bytes::from(format!("k{i:05}")), Bytes::from_static(b"a"))),
        )
        .unwrap();
    assert_eq!(appended.len(), 700);
    // Equal to a clean rebuild of the same record set.
    let mut all: Vec<(Bytes, Bytes)> = Vec::new();
    all.extend((0..100).map(|i| (Bytes::from(format!("k{i:05}")), Bytes::from_static(b"p"))));
    all.extend((500..1000).map(|i| (Bytes::from(format!("k{i:05}")), Bytes::from_static(b"v"))));
    all.extend((2000..2100).map(|i| (Bytes::from(format!("k{i:05}")), Bytes::from_static(b"a"))));
    let rebuilt = PosMap::build_from_sorted(&store, cfg(), all).unwrap();
    assert_eq!(appended.root(), rebuilt.root());
}

#[test]
fn diff_between_disjoint_key_spaces() {
    let store = MemStore::new();
    let a = PosMap::build_from_sorted(
        &store,
        cfg(),
        (0..300).map(|i| (Bytes::from(format!("a{i:04}")), Bytes::from_static(b"1"))),
    )
    .unwrap();
    let b = PosMap::build_from_sorted(
        &store,
        cfg(),
        (0..300).map(|i| (Bytes::from(format!("b{i:04}")), Bytes::from_static(b"2"))),
    )
    .unwrap();
    let d = diff_maps(&store, a.tree(), b.tree()).unwrap();
    assert_eq!(d.counts(), (300, 300, 0));
}

#[test]
fn repeated_identical_values_across_keys() {
    // Identical VALUES under different keys: entries differ (key is part
    // of the entry) so no correctness risk, but this shape historically
    // trips dedup accounting.
    let store = MemStore::new();
    let payload = Bytes::from(vec![7u8; 300]);
    let m = PosMap::build_from_sorted(
        &store,
        cfg(),
        (0..500).map(|i| (Bytes::from(format!("k{i:04}")), payload.clone())),
    )
    .unwrap();
    assert_eq!(m.len(), 500);
    for i in (0..500).step_by(97) {
        assert_eq!(
            m.get(format!("k{i:04}").as_bytes()).unwrap(),
            Some(payload.clone())
        );
    }
    verify_map(&store, m.tree(), cfg(), true).unwrap();
}

#[test]
fn many_tiny_trees_share_the_store() {
    // Thousands of small trees coexisting in one store: no cross-talk.
    let store = MemStore::new();
    let mut roots = Vec::new();
    for t in 0..200 {
        let m = PosMap::build_from_sorted(
            &store,
            cfg(),
            (0..5).map(|i| {
                (
                    Bytes::from(format!("t{t:03}-k{i}")),
                    Bytes::from(format!("t{t}v{i}")),
                )
            }),
        )
        .unwrap();
        roots.push((t, m.tree()));
    }
    for (t, tree) in roots {
        let m = PosMap::open(&store, cfg(), tree);
        assert_eq!(
            m.get(format!("t{t:03}-k3").as_bytes()).unwrap(),
            Some(Bytes::from(format!("t{t}v3")))
        );
    }
}

#[test]
fn apply_noop_edit_changes_nothing() {
    // Re-putting the existing value must produce the identical root and
    // write no new chunks.
    let store = MemStore::new();
    let m = PosMap::build_from_sorted(
        &store,
        cfg(),
        (0..500).map(|i| {
            (
                Bytes::from(format!("k{i:04}")),
                Bytes::from(format!("v{i}")),
            )
        }),
    )
    .unwrap();
    let chunks = forkbase_store::ChunkStore::chunk_count(&store);
    let m2 = m
        .insert(Bytes::from_static(b"k0100"), Bytes::from_static(b"v100"))
        .unwrap();
    assert_eq!(m2.root(), m.root());
    assert_eq!(forkbase_store::ChunkStore::chunk_count(&store), chunks);
}
