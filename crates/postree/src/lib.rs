#![forbid(unsafe_code)]
//! POS-Tree: the Pattern-Oriented-Split Tree (paper §II-A).
//!
//! The POS-Tree is ForkBase's core contribution — a single structure that is
//! simultaneously:
//!
//! * a **B+-tree**: index nodes hold `(split_key, child)` entries and
//!   lookups descend by split key in `O(log N)`;
//! * a **Merkle tree**: children are referenced by the SHA-256 hash of
//!   their content, so the root hash authenticates the whole tree;
//! * a **SIRI** (Structurally-Invariant Reusable Index, Def. 1): node
//!   boundaries are *patterns* detected by a rolling hash over the entry
//!   stream, so the page layout is a pure function of the record set —
//!   independent of insertion order or edit history. Logically equal trees
//!   are physically identical; overlapping trees share pages.
//!
//! Three value shapes are built on the same node machinery:
//!
//! * [`map`] — ordered byte-key → byte-value maps (also backs sets and
//!   relational tables);
//! * [`list`] — positional sequences of byte elements;
//! * [`blob`] — large byte strings chunked at byte granularity.
//!
//! Cross-cutting operations:
//!
//! * [`diff`] — recursive difference that prunes equal-hash sub-trees,
//!   `O(D log N)` (paper §II-B);
//! * [`merge`] — three-way merge that re-uses disjointly modified
//!   sub-trees instead of walking elements (paper Fig. 3);
//! * [`verify`] — full structural + cryptographic re-validation, the
//!   mechanism behind tamper evidence (paper §II-D);
//! * [`proof`] — compact Merkle proofs so light clients can check single
//!   entries against a trusted root hash.

pub mod blob;
pub mod builder;
pub mod cursor;
pub mod diff;
pub mod encoding;
pub mod list;
pub mod map;
pub mod merge;
pub mod node;
pub mod proof;
pub mod verify;

use forkbase_crypto::Hash;

pub use blob::{BlobCursor, BlobRef, PosBlob};
pub use builder::TreeBuilder;
pub use cursor::TreeCursor;
pub use diff::{DiffEntry, DiffStats, MapDiff};
pub use list::PosList;
pub use map::{MapEdit, PosMap};
pub use merge::{merge_maps, MergeOutcome, MergePolicy, MergeReport};
pub use node::{IndexEntry, LeafEntry, Node, NodeError, TreeConfig};
pub use proof::{prove_key, verify_proof, MerkleProof, ProofError};
pub use verify::{verify_map, VerifyError, VerifyReport};

/// A reference to a POS-Tree: root node hash plus cached entry count.
///
/// Two trees with the same record set have the same `root` — that is the
/// structural-invariance property the whole system leans on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TreeRef {
    /// Hash of the root node's canonical encoding.
    pub root: Hash,
    /// Total number of leaf entries in the tree.
    pub count: u64,
}

impl TreeRef {
    /// Reference to a tree with the given root and count.
    pub fn new(root: Hash, count: u64) -> Self {
        TreeRef { root, count }
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}
