//! `PosList`: positional sequences over a POS-Tree.
//!
//! Elements are arbitrary byte strings addressed by index. Leaf entries use
//! empty keys; index entries carry subtree element counts, so positional
//! access descends by count in `O(log N)`. Splices re-use unchanged leaf
//! nodes exactly like map updates do.

use bytes::Bytes;
use forkbase_chunk::ChunkerConfig;
use forkbase_store::ChunkStore;

use crate::builder::TreeBuilder;
use crate::cursor::LeafCursor;
use crate::node::{LeafEntry, Node, NodeResult};
use crate::TreeRef;

/// An immutable positional list stored as a POS-Tree.
pub struct PosList<'s, S> {
    store: &'s S,
    cfg: ChunkerConfig,
    tree: TreeRef,
}

impl<'s, S> Clone for PosList<'s, S> {
    fn clone(&self) -> Self {
        PosList {
            store: self.store,
            cfg: self.cfg,
            tree: self.tree,
        }
    }
}

impl<'s, S: ChunkStore> PosList<'s, S> {
    /// Create an empty list.
    pub fn empty(store: &'s S, cfg: ChunkerConfig) -> NodeResult<Self> {
        let finished = TreeBuilder::new(store, cfg).finish()?;
        Ok(PosList {
            store,
            cfg,
            tree: TreeRef::new(finished.hash, 0),
        })
    }

    /// Open an existing list by reference.
    pub fn open(store: &'s S, cfg: ChunkerConfig, tree: TreeRef) -> Self {
        PosList { store, cfg, tree }
    }

    /// Build from elements in order.
    pub fn build(
        store: &'s S,
        cfg: ChunkerConfig,
        elements: impl IntoIterator<Item = Bytes>,
    ) -> NodeResult<Self> {
        let mut builder = TreeBuilder::new(store, cfg);
        for el in elements {
            builder.push(LeafEntry::new(Bytes::new(), el))?;
        }
        let finished = builder.finish()?;
        Ok(PosList {
            store,
            cfg,
            tree: TreeRef::new(finished.hash, finished.count),
        })
    }

    /// The tree reference.
    pub fn tree(&self) -> TreeRef {
        self.tree
    }

    /// The backing store.
    pub fn store_ref(&self) -> &'s S {
        self.store
    }

    /// Root hash.
    pub fn root(&self) -> forkbase_crypto::Hash {
        self.tree.root
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.tree.count
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.count == 0
    }

    /// Element at `idx`, or `None` past the end. `O(log N)`.
    pub fn get(&self, mut idx: u64) -> NodeResult<Option<Bytes>> {
        if idx >= self.tree.count {
            return Ok(None);
        }
        let mut node = Node::load(self.store, &self.tree.root)?;
        loop {
            match node {
                Node::Leaf(entries) => {
                    return Ok(entries.get(idx as usize).map(|e| e.value.clone()));
                }
                Node::Index { children, .. } => {
                    let mut next = None;
                    for c in &children {
                        if idx < c.count {
                            next = Some(c.hash);
                            break;
                        }
                        idx -= c.count;
                    }
                    let hash = next.expect("index within subtree count");
                    node = Node::load(self.store, &hash)?;
                }
            }
        }
    }

    /// Iterate all elements in order.
    pub fn iter(&self) -> NodeResult<ListIter<'s, S>> {
        Ok(ListIter {
            cursor: LeafCursor::new(self.store, self.tree)?,
        })
    }

    /// Collect all elements (test/export helper; O(N)).
    pub fn to_vec(&self) -> NodeResult<Vec<Bytes>> {
        let mut out = Vec::with_capacity(self.tree.count as usize);
        for item in self.iter()? {
            out.push(item?);
        }
        Ok(out)
    }

    /// Replace the `remove` elements starting at `start` with `insert`
    /// (both clamped to the list length), returning the new list.
    pub fn splice(
        &self,
        start: u64,
        remove: u64,
        insert: impl IntoIterator<Item = Bytes>,
    ) -> NodeResult<Self> {
        let start = start.min(self.tree.count);
        let remove = remove.min(self.tree.count - start);

        let mut cursor = LeafCursor::new(self.store, self.tree)?;
        let mut builder = TreeBuilder::new(self.store, self.cfg);

        // Splice whole leading leaves that end at or before `start`.
        while builder.at_leaf_boundary()
            && cursor.at_leaf_start()
            && !cursor.at_end()
            && !cursor.leaf_is_last()
        {
            let leaf_ref = cursor.leaf_ref().expect("not at end").clone();
            if cursor.position() + leaf_ref.count <= start {
                builder.append_leaf_node(leaf_ref)?;
                cursor.skip_leaf()?;
            } else {
                break;
            }
        }
        // Stream entries up to `start`.
        while cursor.position() < start {
            let e = cursor.next_entry()?.expect("within bounds");
            builder.push(e)?;
        }
        // Drop the removed range.
        for _ in 0..remove {
            cursor.next_entry()?;
        }
        // Emit insertions.
        for el in insert {
            builder.push(LeafEntry::new(Bytes::new(), el))?;
        }
        // Tail: resynchronize and splice the rest wholesale.
        loop {
            if cursor.at_end() {
                break;
            }
            if builder.at_leaf_boundary() && cursor.at_leaf_start() {
                let leaf_ref = cursor.leaf_ref().expect("not at end").clone();
                builder.append_leaf_node(leaf_ref)?;
                cursor.skip_leaf()?;
                continue;
            }
            match cursor.next_entry()? {
                Some(e) => builder.push(e)?,
                None => break,
            }
        }

        let finished = builder.finish()?;
        Ok(PosList {
            store: self.store,
            cfg: self.cfg,
            tree: TreeRef::new(finished.hash, finished.count),
        })
    }

    /// Append one element.
    pub fn push_back(&self, element: Bytes) -> NodeResult<Self> {
        self.splice(self.tree.count, 0, [element])
    }
}

/// Iterator over list elements.
pub struct ListIter<'s, S> {
    cursor: LeafCursor<'s, S>,
}

impl<'s, S: ChunkStore> Iterator for ListIter<'s, S> {
    type Item = NodeResult<Bytes>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.cursor.next_entry() {
            Err(e) => Some(Err(e)),
            Ok(None) => None,
            Ok(Some(entry)) => Some(Ok(entry.value)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_store::{ChunkStore, MemStore};

    fn cfg() -> ChunkerConfig {
        ChunkerConfig::test_small()
    }

    fn el(i: u32) -> Bytes {
        Bytes::from(format!("element-{i:06}"))
    }

    fn sample(store: &MemStore, n: u32) -> PosList<'_, MemStore> {
        PosList::build(store, cfg(), (0..n).map(el)).unwrap()
    }

    #[test]
    fn empty_list() {
        let store = MemStore::new();
        let l = PosList::empty(&store, cfg()).unwrap();
        assert!(l.is_empty());
        assert_eq!(l.get(0).unwrap(), None);
        assert_eq!(l.to_vec().unwrap(), Vec::<Bytes>::new());
    }

    #[test]
    fn get_every_position() {
        let store = MemStore::new();
        let l = sample(&store, 2000);
        assert_eq!(l.len(), 2000);
        for i in (0..2000).step_by(101) {
            assert_eq!(l.get(i as u64).unwrap(), Some(el(i)), "index {i}");
        }
        assert_eq!(l.get(2000).unwrap(), None);
    }

    #[test]
    fn iteration_order() {
        let store = MemStore::new();
        let l = sample(&store, 1000);
        let v = l.to_vec().unwrap();
        assert_eq!(v.len(), 1000);
        for (i, e) in v.iter().enumerate() {
            assert_eq!(e, &el(i as u32));
        }
    }

    #[test]
    fn deterministic_roots() {
        let s1 = MemStore::new();
        let s2 = MemStore::new();
        assert_eq!(sample(&s1, 1234).root(), sample(&s2, 1234).root());
    }

    #[test]
    fn splice_insert_middle() {
        let store = MemStore::new();
        let l = sample(&store, 1000);
        let l2 = l
            .splice(500, 0, [Bytes::from_static(b"X"), Bytes::from_static(b"Y")])
            .unwrap();
        assert_eq!(l2.len(), 1002);
        assert_eq!(l2.get(499).unwrap(), Some(el(499)));
        assert_eq!(l2.get(500).unwrap(), Some(Bytes::from_static(b"X")));
        assert_eq!(l2.get(501).unwrap(), Some(Bytes::from_static(b"Y")));
        assert_eq!(l2.get(502).unwrap(), Some(el(500)));
        // Original unchanged.
        assert_eq!(l.len(), 1000);
    }

    #[test]
    fn splice_remove_and_replace() {
        let store = MemStore::new();
        let l = sample(&store, 100);
        let l2 = l.splice(10, 5, [Bytes::from_static(b"R")]).unwrap();
        assert_eq!(l2.len(), 96);
        assert_eq!(l2.get(9).unwrap(), Some(el(9)));
        assert_eq!(l2.get(10).unwrap(), Some(Bytes::from_static(b"R")));
        assert_eq!(l2.get(11).unwrap(), Some(el(15)));
    }

    #[test]
    fn splice_equals_rebuild() {
        // Structural invariance for lists: splice == build of the result.
        let store = MemStore::new();
        let l = sample(&store, 1500);
        let l2 = l
            .splice(700, 3, [Bytes::from_static(b"a"), Bytes::from_static(b"b")])
            .unwrap();
        let mut model: Vec<Bytes> = (0..1500).map(el).collect();
        model.splice(
            700..703,
            [Bytes::from_static(b"a"), Bytes::from_static(b"b")],
        );
        let rebuilt = PosList::build(&store, cfg(), model).unwrap();
        assert_eq!(l2.root(), rebuilt.root());
    }

    #[test]
    fn splice_reuses_pages() {
        let store = MemStore::new();
        let l = sample(&store, 20_000);
        let before = store.chunk_count();
        let _l2 = l.splice(10_000, 1, [Bytes::from_static(b"mid")]).unwrap();
        let new_pages = store.chunk_count() - before;
        assert!(new_pages <= 12, "splice created {new_pages} pages");
    }

    #[test]
    fn push_back_appends() {
        let store = MemStore::new();
        let l = sample(&store, 10);
        let l2 = l.push_back(Bytes::from_static(b"tail")).unwrap();
        assert_eq!(l2.len(), 11);
        assert_eq!(l2.get(10).unwrap(), Some(Bytes::from_static(b"tail")));
        // Equals a rebuild.
        let mut model: Vec<Bytes> = (0..10).map(el).collect();
        model.push(Bytes::from_static(b"tail"));
        let rebuilt = PosList::build(&store, cfg(), model).unwrap();
        assert_eq!(l2.root(), rebuilt.root());
    }

    #[test]
    fn splice_clamps_out_of_range() {
        let store = MemStore::new();
        let l = sample(&store, 10);
        let l2 = l.splice(100, 100, [Bytes::from_static(b"end")]).unwrap();
        assert_eq!(l2.len(), 11);
        assert_eq!(l2.get(10).unwrap(), Some(Bytes::from_static(b"end")));
    }
}
