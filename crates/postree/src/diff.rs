//! Fast differential queries between two POS-Trees (paper §II-B).
//!
//! "Because two sub-trees with identical content must have the same root
//! id, the Diff operation can be performed recursively by following the
//! sub-trees with different ids, and pruning ones with the same ids. The
//! complexity of Diff is therefore O(D · log N)."
//!
//! The implementation walks both trees with synchronized [`LeafCursor`]s.
//! Whenever both cursors stand at a node boundary, it climbs to the highest
//! ancestor pair that is (a) boundary-aligned on both sides and (b) equal
//! by hash, and skips that whole subtree in O(1). Structural invariance is
//! what makes this effective: unchanged key ranges produce *identical*
//! page boundaries in both trees, so equal regions align at high levels.

use bytes::Bytes;
use forkbase_store::ChunkStore;

use crate::cursor::LeafCursor;
use crate::node::NodeResult;
use crate::TreeRef;

/// One difference between two maps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffEntry {
    /// Key exists only in the right ("to") tree.
    Added {
        /// The key.
        key: Bytes,
        /// Value in the right tree.
        value: Bytes,
    },
    /// Key exists only in the left ("from") tree.
    Removed {
        /// The key.
        key: Bytes,
        /// Value in the left tree.
        value: Bytes,
    },
    /// Key exists in both with different values.
    Modified {
        /// The key.
        key: Bytes,
        /// Value in the left tree.
        from: Bytes,
        /// Value in the right tree.
        to: Bytes,
    },
}

impl DiffEntry {
    /// The key this difference concerns.
    pub fn key(&self) -> &Bytes {
        match self {
            DiffEntry::Added { key, .. }
            | DiffEntry::Removed { key, .. }
            | DiffEntry::Modified { key, .. } => key,
        }
    }
}

/// Instrumentation counters for the complexity experiment (Fig. 5): the
/// claim is `nodes_loaded = O(D log N)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiffStats {
    /// Total tree nodes decoded across both cursors.
    pub nodes_loaded: u64,
    /// Number of whole-subtree skips taken.
    pub subtree_skips: u64,
    /// Entry-to-entry comparisons performed.
    pub entries_compared: u64,
}

/// The result of diffing two maps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MapDiff {
    /// Differences in key order.
    pub entries: Vec<DiffEntry>,
    /// Work counters.
    pub stats: DiffStats,
}

impl MapDiff {
    /// Whether the two trees were identical.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of (added, removed, modified) entries.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut a = 0;
        let mut r = 0;
        let mut m = 0;
        for e in &self.entries {
            match e {
                DiffEntry::Added { .. } => a += 1,
                DiffEntry::Removed { .. } => r += 1,
                DiffEntry::Modified { .. } => m += 1,
            }
        }
        (a, r, m)
    }
}

/// Compute the differences from `from` to `to`.
pub fn diff_maps<S: ChunkStore>(store: &S, from: TreeRef, to: TreeRef) -> NodeResult<MapDiff> {
    let mut out = MapDiff::default();
    if from.root == to.root {
        return Ok(out); // identical trees: O(1)
    }
    let mut a = LeafCursor::new(store, from)?;
    let mut b = LeafCursor::new(store, to)?;

    loop {
        // Step past drained leaves first, otherwise the boundary-alignment
        // check below never observes the fresh-node state and the skip
        // optimisation silently degrades to an entry-wise walk.
        a.normalize()?;
        b.normalize()?;
        // Hierarchical skip: only meaningful when both sides sit at a node
        // boundary.
        if !a.at_end() && !b.at_end() && a.at_leaf_start() && b.at_leaf_start() {
            if let Some(levels) = highest_equal_alignment(&a, &b) {
                a.skip_subtree(levels)?;
                b.skip_subtree(levels)?;
                out.stats.subtree_skips += 1;
                continue;
            }
        }
        match (a.peek()?.cloned(), b.peek()?.cloned()) {
            (None, None) => break,
            (Some(e), None) => {
                out.entries.push(DiffEntry::Removed {
                    key: e.key,
                    value: e.value,
                });
                a.next_entry()?;
            }
            (None, Some(e)) => {
                out.entries.push(DiffEntry::Added {
                    key: e.key,
                    value: e.value,
                });
                b.next_entry()?;
            }
            (Some(ea), Some(eb)) => {
                out.stats.entries_compared += 1;
                match ea.key.cmp(&eb.key) {
                    std::cmp::Ordering::Less => {
                        out.entries.push(DiffEntry::Removed {
                            key: ea.key,
                            value: ea.value,
                        });
                        a.next_entry()?;
                    }
                    std::cmp::Ordering::Greater => {
                        out.entries.push(DiffEntry::Added {
                            key: eb.key,
                            value: eb.value,
                        });
                        b.next_entry()?;
                    }
                    std::cmp::Ordering::Equal => {
                        if ea.value != eb.value {
                            out.entries.push(DiffEntry::Modified {
                                key: ea.key,
                                from: ea.value,
                                to: eb.value,
                            });
                        }
                        a.next_entry()?;
                        b.next_entry()?;
                    }
                }
            }
        }
    }

    out.stats.nodes_loaded = a.nodes_loaded() + b.nodes_loaded();
    Ok(out)
}

/// Highest `levels_up` such that both cursors are at the start of their
/// level-`levels_up` ancestor and those ancestors have equal hashes.
/// Returns `None` when even the current leaf nodes differ (or alignment
/// fails at leaf level).
fn highest_equal_alignment<S: ChunkStore>(
    a: &LeafCursor<'_, S>,
    b: &LeafCursor<'_, S>,
) -> Option<usize> {
    let (ha, hb) = (a.ancestor_hash(0)?, b.ancestor_hash(0)?);
    if ha != hb {
        return None;
    }
    let mut best = 0usize;
    let mut lvl = 1usize;
    loop {
        if !a.at_start_of_ancestor(lvl) || !b.at_start_of_ancestor(lvl) {
            break;
        }
        match (a.ancestor_hash(lvl), b.ancestor_hash(lvl)) {
            (Some(x), Some(y)) if x == y => {
                best = lvl;
                lvl += 1;
            }
            _ => break,
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{MapEdit, PosMap};
    use forkbase_chunk::ChunkerConfig;
    use forkbase_store::MemStore;

    fn cfg() -> ChunkerConfig {
        ChunkerConfig::test_small()
    }

    fn k(i: u32) -> Bytes {
        Bytes::from(format!("key-{i:08}"))
    }

    fn v(i: u32) -> Bytes {
        Bytes::from(format!("value-{i}"))
    }

    fn sample(store: &MemStore, n: u32) -> PosMap<'_, MemStore> {
        PosMap::build_from_sorted(store, cfg(), (0..n).map(|i| (k(i), v(i)))).unwrap()
    }

    #[test]
    fn identical_trees_diff_empty_in_o1() {
        let store = MemStore::new();
        let m = sample(&store, 5000);
        let d = diff_maps(&store, m.tree(), m.tree()).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.stats.nodes_loaded, 0, "same root: no node loads at all");
    }

    #[test]
    fn detects_all_three_kinds() {
        let store = MemStore::new();
        let m1 = sample(&store, 1000);
        let m2 = m1
            .apply([
                MapEdit::put(k(2000), Bytes::from_static(b"added")),
                MapEdit::delete(k(500)),
                MapEdit::put(k(100), Bytes::from_static(b"modified")),
            ])
            .unwrap();
        let d = diff_maps(&store, m1.tree(), m2.tree()).unwrap();
        assert_eq!(d.counts(), (1, 1, 1));
        assert!(d.entries.iter().any(|e| matches!(e,
            DiffEntry::Added { key, value } if key == &k(2000) && value.as_ref() == b"added")));
        assert!(d.entries.iter().any(|e| matches!(e,
            DiffEntry::Removed { key, value } if key == &k(500) && value == &v(500))));
        assert!(d.entries.iter().any(|e| matches!(e,
            DiffEntry::Modified { key, from, to } if key == &k(100) && from == &v(100) && to.as_ref() == b"modified")));
    }

    #[test]
    fn diff_results_are_key_ordered() {
        let store = MemStore::new();
        let m1 = sample(&store, 2000);
        let edits: Vec<MapEdit> = (0..50)
            .map(|i| MapEdit::put(k(i * 37 % 2500), Bytes::from(format!("new{i}"))))
            .collect();
        let m2 = m1.apply(edits).unwrap();
        let d = diff_maps(&store, m1.tree(), m2.tree()).unwrap();
        for w in d.entries.windows(2) {
            assert!(w[0].key() < w[1].key());
        }
    }

    #[test]
    fn diff_against_empty_lists_everything() {
        let store = MemStore::new();
        let m = sample(&store, 200);
        let empty = PosMap::empty(&store, cfg()).unwrap();
        let d = diff_maps(&store, empty.tree(), m.tree()).unwrap();
        assert_eq!(d.counts(), (200, 0, 0));
        let d = diff_maps(&store, m.tree(), empty.tree()).unwrap();
        assert_eq!(d.counts(), (0, 200, 0));
    }

    #[test]
    fn diff_is_antisymmetric() {
        let store = MemStore::new();
        let m1 = sample(&store, 800);
        let m2 = m1
            .apply([
                MapEdit::put(k(10), Bytes::from_static(b"x")),
                MapEdit::delete(k(700)),
            ])
            .unwrap();
        let fwd = diff_maps(&store, m1.tree(), m2.tree()).unwrap();
        let rev = diff_maps(&store, m2.tree(), m1.tree()).unwrap();
        assert_eq!(fwd.entries.len(), rev.entries.len());
        let (a1, r1, m1c) = fwd.counts();
        let (a2, r2, m2c) = rev.counts();
        assert_eq!((a1, r1, m1c), (r2, a2, m2c));
    }

    #[test]
    fn sublinear_node_visits_for_small_diffs() {
        // The O(D log N) claim, observationally: diffing a 1-edit pair on a
        // 50k map must touch a tiny fraction of its ~thousands of nodes.
        let store = MemStore::new();
        let m1 = sample(&store, 50_000);
        let m2 = m1.insert(k(25_000), Bytes::from_static(b"!")).unwrap();
        let d = diff_maps(&store, m1.tree(), m2.tree()).unwrap();
        assert_eq!(d.counts(), (0, 0, 1));
        // The test chunker's fanout is tiny (~2-3), so the tree is ~14
        // levels deep and each subtree skip re-descends O(height) nodes.
        // 50k entries means ~35k nodes total; a 1-edit diff must touch a
        // vanishing fraction of them.
        assert!(
            d.stats.nodes_loaded < 800,
            "expected O(log N)-ish visits, got {}",
            d.stats.nodes_loaded
        );
        assert!(d.stats.subtree_skips > 0);
    }

    #[test]
    fn node_visits_scale_with_d() {
        let store = MemStore::new();
        let base = sample(&store, 20_000);
        let mut loads = Vec::new();
        for d in [1u32, 10, 100] {
            let edits: Vec<MapEdit> = (0..d)
                .map(|i| MapEdit::put(k(i * (20_000 / d)), Bytes::from(format!("{i}"))))
                .collect();
            let changed = base.apply(edits).unwrap();
            let diff = diff_maps(&store, base.tree(), changed.tree()).unwrap();
            loads.push(diff.stats.nodes_loaded);
        }
        assert!(loads[0] < loads[1] && loads[1] < loads[2]);
        // Far from linear in D: 100 edits should cost well under 100× the
        // 1-edit diff.
        assert!(
            loads[2] < loads[0] * 100,
            "loads = {loads:?} — not sublinear"
        );
    }
}
