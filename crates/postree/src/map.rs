//! `PosMap`: the ordered map over a POS-Tree.
//!
//! This is the workhorse value type — sets, relational tables and the
//! branch-head catalogue are all maps underneath. Keys and values are
//! arbitrary byte strings; keys are unique and ordered lexicographically.
//!
//! Updates go through [`PosMap::apply`], a batch splice that rebuilds only
//! the chunk-neighbourhood of each edit:
//!
//! 1. leaf nodes strictly before the first edit are spliced into the new
//!    tree verbatim (`O(1)` each, no decode);
//! 2. the affected region is re-chunked entry-by-entry, with edits merged
//!    into the stream;
//! 3. after the last edit the chunker *resynchronizes* — reset-on-cut
//!    chunking guarantees the new boundary sequence converges back onto
//!    the old one — after which remaining nodes are spliced verbatim.
//!
//! Because unchanged pages are re-used (not re-written), a single-record
//! update to an `N`-record map allocates `O(log N)` new pages: exactly
//! SIRI property (2), *recursively identical* (paper Def. 1).

use bytes::Bytes;
use forkbase_chunk::ChunkerConfig;
use forkbase_store::ChunkStore;

use crate::builder::TreeBuilder;
use crate::cursor::LeafCursor;
use crate::node::{LeafEntry, Node, NodeResult};
use crate::TreeRef;

/// One edit in a batch: `value: None` deletes the key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapEdit {
    /// Key to insert, replace, or delete.
    pub key: Bytes,
    /// New value, or `None` to delete.
    pub value: Option<Bytes>,
}

impl MapEdit {
    /// Insert or replace `key` with `value`.
    pub fn put(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        MapEdit {
            key: key.into(),
            value: Some(value.into()),
        }
    }

    /// Delete `key`.
    pub fn delete(key: impl Into<Bytes>) -> Self {
        MapEdit {
            key: key.into(),
            value: None,
        }
    }
}

/// An immutable ordered map stored as a POS-Tree.
///
/// `PosMap` is a *handle*: cheap to copy, tied to a store reference. All
/// mutating operations return a new `PosMap`; old versions stay readable
/// forever (immutability is what the whole versioning model rests on).
pub struct PosMap<'s, S> {
    store: &'s S,
    cfg: ChunkerConfig,
    tree: TreeRef,
}

impl<'s, S> Clone for PosMap<'s, S> {
    fn clone(&self) -> Self {
        PosMap {
            store: self.store,
            cfg: self.cfg,
            tree: self.tree,
        }
    }
}

impl<'s, S: ChunkStore> PosMap<'s, S> {
    /// Create an empty map.
    pub fn empty(store: &'s S, cfg: ChunkerConfig) -> NodeResult<Self> {
        let finished = TreeBuilder::new(store, cfg).finish()?;
        Ok(PosMap {
            store,
            cfg,
            tree: TreeRef::new(finished.hash, 0),
        })
    }

    /// Open an existing tree by reference.
    pub fn open(store: &'s S, cfg: ChunkerConfig, tree: TreeRef) -> Self {
        PosMap { store, cfg, tree }
    }

    /// Bulk-build from an iterator of key-ordered, de-duplicated entries.
    ///
    /// Panics in debug builds if the order is violated.
    pub fn build_from_sorted(
        store: &'s S,
        cfg: ChunkerConfig,
        entries: impl IntoIterator<Item = (Bytes, Bytes)>,
    ) -> NodeResult<Self> {
        let mut builder = TreeBuilder::new(store, cfg);
        let mut prev: Option<Bytes> = None;
        for (key, value) in entries {
            if let Some(p) = &prev {
                debug_assert!(
                    p < &key,
                    "build_from_sorted requires strictly ascending keys"
                );
            }
            prev = Some(key.clone());
            builder.push(LeafEntry::new(key, value))?;
        }
        let finished = builder.finish()?;
        Ok(PosMap {
            store,
            cfg,
            tree: TreeRef::new(finished.hash, finished.count),
        })
    }

    /// Bulk-build from unsorted pairs (sorts and keeps the last value per
    /// key).
    pub fn build_from_pairs(
        store: &'s S,
        cfg: ChunkerConfig,
        mut pairs: Vec<(Bytes, Bytes)>,
    ) -> NodeResult<Self> {
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs.reverse();
        pairs.dedup_by(|a, b| a.0 == b.0); // keeps first of reversed = last of original
        pairs.reverse();
        Self::build_from_sorted(store, cfg, pairs)
    }

    /// The tree reference (root hash + count).
    pub fn tree(&self) -> TreeRef {
        self.tree
    }

    /// Root hash; equal roots ⟺ equal contents (structural invariance).
    pub fn root(&self) -> forkbase_crypto::Hash {
        self.tree.root
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.tree.count
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.tree.count == 0
    }

    /// The chunker configuration.
    pub fn config(&self) -> ChunkerConfig {
        self.cfg
    }

    /// The backing store.
    pub fn store(&self) -> &'s S {
        self.store
    }

    /// Point lookup: `O(log N)` node fetches.
    pub fn get(&self, key: &[u8]) -> NodeResult<Option<Bytes>> {
        let mut node = Node::load(self.store, &self.tree.root)?;
        loop {
            match node {
                Node::Leaf(entries) => {
                    return Ok(entries
                        .binary_search_by(|e| e.key.as_ref().cmp(key))
                        .ok()
                        .map(|i| entries[i].value.clone()));
                }
                Node::Index { children, .. } => {
                    let idx = children.partition_point(|c| c.split_key.as_ref() < key);
                    if idx == children.len() {
                        return Ok(None); // key beyond the maximum
                    }
                    node = Node::load(self.store, &children[idx].hash)?;
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> NodeResult<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> NodeResult<MapIter<'s, S>> {
        Ok(MapIter {
            cursor: LeafCursor::new(self.store, self.tree)?,
            end: None,
        })
    }

    /// Iterate entries with `start ≤ key < end` (either bound optional).
    pub fn range(&self, start: Option<&[u8]>, end: Option<&[u8]>) -> NodeResult<MapIter<'s, S>> {
        let cursor = match start {
            Some(s) => LeafCursor::seek(self.store, self.tree, s)?,
            None => LeafCursor::new(self.store, self.tree)?,
        };
        Ok(MapIter {
            cursor,
            end: end.map(Bytes::copy_from_slice),
        })
    }

    /// Apply a batch of edits, returning the updated map. See module docs
    /// for the splice algorithm. Edits need not be sorted; on duplicate
    /// keys the **last** edit wins.
    pub fn apply(&self, edits: impl IntoIterator<Item = MapEdit>) -> NodeResult<Self> {
        let mut edits: Vec<MapEdit> = edits.into_iter().collect();
        if edits.is_empty() {
            return Ok(self.clone());
        }
        // Stable sort + keep last per key.
        edits.sort_by(|a, b| a.key.cmp(&b.key));
        edits.reverse();
        edits.dedup_by(|a, b| a.key == b.key);
        edits.reverse();

        let mut cursor = LeafCursor::new(self.store, self.tree)?;
        let mut builder = TreeBuilder::new(self.store, self.cfg);

        for edit in &edits {
            // Phase 1: splice whole leaf nodes strictly before the edit key.
            // The final leaf is never spliced mid-stream: its old boundary
            // was a stream end, not a pattern, so it would not re-occur.
            while builder.at_leaf_boundary()
                && cursor.at_leaf_start()
                && !cursor.at_end()
                && !cursor.leaf_is_last()
            {
                let leaf_ref = cursor.leaf_ref().expect("not at end").clone();
                if leaf_ref.split_key.as_ref() < edit.key.as_ref() {
                    builder.append_leaf_node(leaf_ref)?;
                    cursor.skip_leaf()?;
                } else {
                    break;
                }
            }
            // Phase 2: stream entries before the edit key.
            while let Some(e) = cursor.peek()? {
                if e.key.as_ref() < edit.key.as_ref() {
                    let e = cursor.next_entry()?.expect("peeked");
                    builder.push(e)?;
                } else {
                    break;
                }
            }
            // Phase 3: consume the old value of the edited key, if present.
            if let Some(e) = cursor.peek()? {
                if e.key == edit.key {
                    cursor.next_entry()?;
                }
            }
            // Phase 4: emit the new value (skip for deletes).
            if let Some(v) = &edit.value {
                builder.push(LeafEntry::new(edit.key.clone(), v.clone()))?;
            }
        }

        // Tail: resynchronize, then splice the remaining nodes wholesale
        // (including the final, stream-terminated leaf — the new stream
        // ends right after it too).
        loop {
            if cursor.at_end() {
                break;
            }
            if builder.at_leaf_boundary() && cursor.at_leaf_start() {
                let leaf_ref = cursor.leaf_ref().expect("not at end").clone();
                builder.append_leaf_node(leaf_ref)?;
                cursor.skip_leaf()?;
                continue;
            }
            match cursor.next_entry()? {
                Some(e) => builder.push(e)?,
                None => break,
            }
        }

        let finished = builder.finish()?;
        Ok(PosMap {
            store: self.store,
            cfg: self.cfg,
            tree: TreeRef::new(finished.hash, finished.count),
        })
    }

    /// Insert or replace a single key.
    pub fn insert(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> NodeResult<Self> {
        self.apply([MapEdit::put(key, value)])
    }

    /// Remove a single key (no-op if absent).
    pub fn remove(&self, key: impl Into<Bytes>) -> NodeResult<Self> {
        self.apply([MapEdit::delete(key)])
    }

    /// Collect everything into a `Vec` (test/export helper; O(N)).
    pub fn to_vec(&self) -> NodeResult<Vec<(Bytes, Bytes)>> {
        let mut out = Vec::with_capacity(self.tree.count as usize);
        for item in self.iter()? {
            let e = item?;
            out.push((e.key, e.value));
        }
        Ok(out)
    }
}

/// Iterator over map entries; yields `NodeResult<LeafEntry>` because node
/// fetches can fail.
pub struct MapIter<'s, S> {
    cursor: LeafCursor<'s, S>,
    end: Option<Bytes>,
}

impl<'s, S: ChunkStore> Iterator for MapIter<'s, S> {
    type Item = NodeResult<LeafEntry>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.cursor.next_entry() {
            Err(e) => Some(Err(e)),
            Ok(None) => None,
            Ok(Some(entry)) => {
                if let Some(end) = &self.end {
                    if entry.key.as_ref() >= end.as_ref() {
                        return None;
                    }
                }
                Some(Ok(entry))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_store::MemStore;
    use std::collections::BTreeMap;

    fn cfg() -> ChunkerConfig {
        ChunkerConfig::test_small()
    }

    fn k(i: u32) -> Bytes {
        Bytes::from(format!("key-{i:08}"))
    }

    fn v(i: u32) -> Bytes {
        Bytes::from(format!("value-{i}"))
    }

    fn sample(store: &MemStore, n: u32) -> PosMap<'_, MemStore> {
        PosMap::build_from_sorted(store, cfg(), (0..n).map(|i| (k(i), v(i)))).unwrap()
    }

    #[test]
    fn empty_map_basics() {
        let store = MemStore::new();
        let m = PosMap::empty(&store, cfg()).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(b"anything").unwrap(), None);
        assert_eq!(m.to_vec().unwrap(), vec![]);
    }

    #[test]
    fn get_finds_every_key() {
        let store = MemStore::new();
        let m = sample(&store, 2000);
        for i in (0..2000).step_by(97) {
            assert_eq!(m.get(&k(i)).unwrap(), Some(v(i)), "key {i}");
        }
        assert_eq!(m.get(b"absent").unwrap(), None);
        assert_eq!(m.get(&k(2000)).unwrap(), None, "beyond max");
        assert!(m.contains(&k(0)).unwrap());
    }

    #[test]
    fn iter_is_ordered_and_complete() {
        let store = MemStore::new();
        let m = sample(&store, 1500);
        let all = m.to_vec().unwrap();
        assert_eq!(all.len(), 1500);
        for (i, (key, value)) in all.iter().enumerate() {
            assert_eq!(key, &k(i as u32));
            assert_eq!(value, &v(i as u32));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let store = MemStore::new();
        let m = sample(&store, 1000);
        let got: Vec<_> = m
            .range(Some(&k(100)), Some(&k(110)))
            .unwrap()
            .map(|e| e.unwrap().key)
            .collect();
        assert_eq!(got, (100..110).map(k).collect::<Vec<_>>());
        // Open-ended.
        let from_990: Vec<_> = m
            .range(Some(&k(990)), None)
            .unwrap()
            .map(|e| e.unwrap().key)
            .collect();
        assert_eq!(from_990.len(), 10);
        let until_5: Vec<_> = m
            .range(None, Some(&k(5)))
            .unwrap()
            .map(|e| e.unwrap().key)
            .collect();
        assert_eq!(until_5.len(), 5);
    }

    #[test]
    fn build_from_pairs_dedups_last_wins() {
        let store = MemStore::new();
        let m = PosMap::build_from_pairs(
            &store,
            cfg(),
            vec![
                (k(1), v(1)),
                (k(0), v(0)),
                (k(1), Bytes::from_static(b"winner")),
            ],
        )
        .unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&k(1)).unwrap(), Some(Bytes::from_static(b"winner")));
    }

    #[test]
    fn apply_insert_update_delete() {
        let store = MemStore::new();
        let m = sample(&store, 1000);
        let m2 = m
            .apply([
                MapEdit::put(k(1_000_000), Bytes::from_static(b"appended")),
                MapEdit::put(k(500), Bytes::from_static(b"replaced")),
                MapEdit::delete(k(250)),
                MapEdit::delete(Bytes::from_static(b"never-existed")),
            ])
            .unwrap();
        assert_eq!(m2.len(), 1000); // +1 insert, −1 delete
        assert_eq!(
            m2.get(&k(500)).unwrap(),
            Some(Bytes::from_static(b"replaced"))
        );
        assert_eq!(m2.get(&k(250)).unwrap(), None);
        assert_eq!(
            m2.get(&k(1_000_000)).unwrap(),
            Some(Bytes::from_static(b"appended"))
        );
        // Old version is untouched (immutability).
        assert_eq!(m.get(&k(250)).unwrap(), Some(v(250)));
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn apply_equals_rebuild() {
        // The structural-invariance acid test: apply() must produce the
        // exact same root as building the resulting record set from
        // scratch.
        let store = MemStore::new();
        let m = sample(&store, 2000);
        let edits = vec![
            MapEdit::put(k(100), Bytes::from_static(b"x")),
            MapEdit::delete(k(1500)),
            MapEdit::put(
                Bytes::from_static(b"key-00000100a"),
                Bytes::from_static(b"y"),
            ),
            MapEdit::put(k(1999), Bytes::from_static(b"z")),
            MapEdit::delete(k(0)),
        ];
        let applied = m.apply(edits.clone()).unwrap();

        // Model the same edits on a BTreeMap and rebuild.
        let mut model: BTreeMap<Bytes, Bytes> = (0..2000).map(|i| (k(i), v(i))).collect();
        for e in &edits {
            match &e.value {
                Some(val) => {
                    model.insert(e.key.clone(), val.clone());
                }
                None => {
                    model.remove(&e.key);
                }
            }
        }
        let store2 = MemStore::new();
        let rebuilt = PosMap::build_from_sorted(&store2, cfg(), model).unwrap();
        assert_eq!(applied.root(), rebuilt.root());
        assert_eq!(applied.len(), rebuilt.len());
    }

    #[test]
    fn apply_duplicate_edits_last_wins() {
        let store = MemStore::new();
        let m = sample(&store, 100);
        let m2 = m
            .apply([
                MapEdit::put(k(5), Bytes::from_static(b"first")),
                MapEdit::delete(k(5)),
                MapEdit::put(k(5), Bytes::from_static(b"last")),
            ])
            .unwrap();
        assert_eq!(m2.get(&k(5)).unwrap(), Some(Bytes::from_static(b"last")));
    }

    #[test]
    fn apply_empty_batch_is_identity() {
        let store = MemStore::new();
        let m = sample(&store, 100);
        let m2 = m.apply([]).unwrap();
        assert_eq!(m.root(), m2.root());
    }

    #[test]
    fn single_update_touches_log_n_pages() {
        // SIRI property (2): |P(I₂) − P(I₁)| ≪ |P(I₂) ∩ P(I₁)|.
        let store = MemStore::new();
        let m = sample(&store, 20_000);
        let chunks_before = store.chunk_count();
        let m2 = m
            .insert(k(10_000), Bytes::from_static(b"new value"))
            .unwrap();
        let new_pages = store.chunk_count() - chunks_before;
        // A 20k-entry tree has hundreds of pages; an update should add only
        // a handful (changed leaf + path to root, modulo boundary shifts).
        assert!(
            new_pages <= 12,
            "single update created {new_pages} new pages"
        );
        assert_eq!(m2.len(), 20_000);
    }

    #[test]
    fn insert_on_empty_map() {
        let store = MemStore::new();
        let m = PosMap::empty(&store, cfg()).unwrap();
        let m2 = m
            .insert(Bytes::from_static(b"k"), Bytes::from_static(b"v"))
            .unwrap();
        assert_eq!(m2.len(), 1);
        assert_eq!(m2.get(b"k").unwrap(), Some(Bytes::from_static(b"v")));
        // Equal to a fresh build.
        let rebuilt = PosMap::build_from_sorted(
            &store,
            cfg(),
            [(Bytes::from_static(b"k"), Bytes::from_static(b"v"))],
        )
        .unwrap();
        assert_eq!(m2.root(), rebuilt.root());
    }

    #[test]
    fn delete_everything_equals_empty() {
        let store = MemStore::new();
        let m = sample(&store, 300);
        let m2 = m.apply((0..300).map(|i| MapEdit::delete(k(i)))).unwrap();
        assert!(m2.is_empty());
        let empty = PosMap::empty(&store, cfg()).unwrap();
        assert_eq!(m2.root(), empty.root());
    }

    #[test]
    fn order_independence_of_batches() {
        // Structural invariance across edit histories: different batch
        // partitions of the same edits give the same root.
        let store = MemStore::new();
        let base = sample(&store, 1000);
        let edits: Vec<MapEdit> = (0..100)
            .map(|i| MapEdit::put(k(i * 13 % 1200), Bytes::from(format!("e{i}"))))
            .collect();

        // All at once.
        let all = base.apply(edits.clone()).unwrap();
        // One per batch, in shuffled-ish order (reversed; duplicates in the
        // edit list must be collapsed the same way, so dedup first).
        let mut dedup = edits.clone();
        dedup.sort_by(|a, b| a.key.cmp(&b.key));
        dedup.reverse();
        dedup.dedup_by(|a, b| a.key == b.key);
        let mut one_by_one = base.clone();
        for e in dedup.iter() {
            one_by_one = one_by_one.apply([e.clone()]).unwrap();
        }
        assert_eq!(all.root(), one_by_one.root());
    }
}
