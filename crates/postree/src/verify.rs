//! Structural and cryptographic tree verification (paper §II-D).
//!
//! Under the malicious-store threat model, the client trusts nothing but
//! the root hash it recorded. [`verify_map`] re-fetches the whole tree and
//! checks, for every node:
//!
//! * the fetched bytes hash to the address used to fetch them (Merkle
//!   integrity — [`crate::node::Node::load`] enforces this);
//! * keys are strictly ascending within and across nodes;
//! * every index entry's `count` equals its child's actual subtree count;
//! * every index entry's `split_key` equals its child's actual maximum key;
//! * levels decrease by exactly one on each descent;
//! * (optionally) node boundaries re-derive from the entry stream — i.e.
//!   the tree is the *canonical* POS-Tree for its record set, not merely a
//!   well-formed B+-tree. This closes the loophole of a malicious store
//!   presenting a differently-chunked tree with the same logical content
//!   (which would break page-sharing guarantees silently).

use bytes::Bytes;
use forkbase_chunk::{ChunkerConfig, EntryChunker};
use forkbase_store::ChunkStore;

use crate::node::{Node, NodeError};
use crate::TreeRef;

/// Verification failure.
#[derive(Debug)]
pub enum VerifyError {
    /// A node failed to load or authenticate.
    Node(NodeError),
    /// A structural invariant does not hold.
    Invariant(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Node(e) => write!(f, "verification failed: {e}"),
            VerifyError::Invariant(m) => write!(f, "invariant violated: {m}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<NodeError> for VerifyError {
    fn from(e: NodeError) -> Self {
        VerifyError::Node(e)
    }
}

/// Statistics from a successful verification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Nodes fetched and authenticated.
    pub nodes: u64,
    /// Leaf entries checked.
    pub entries: u64,
    /// Tree height (root level).
    pub height: u8,
}

/// Verify the map tree at `tree`. With `check_boundaries`, additionally
/// re-runs the chunker over the leaf and index entry streams to prove the
/// node boundaries are canonical for `cfg`.
pub fn verify_map<S: ChunkStore>(
    store: &S,
    tree: TreeRef,
    cfg: ChunkerConfig,
    check_boundaries: bool,
) -> Result<VerifyReport, VerifyError> {
    let mut report = VerifyReport::default();
    let root = Node::load(store, &tree.root)?;
    report.nodes += 1;
    report.height = root.level();

    let count = walk(store, &root, &mut report, &mut None)?;
    if count != tree.count {
        return Err(VerifyError::Invariant(format!(
            "tree count {} does not match actual entries {count}",
            tree.count
        )));
    }
    if check_boundaries {
        verify_boundaries(store, &root, cfg)?;
    }
    Ok(report)
}

/// Recursive walk checking ordering, counts and split keys. Returns the
/// subtree entry count. `prev_key` threads the globally-last-seen key.
fn walk<S: ChunkStore>(
    store: &S,
    node: &Node,
    report: &mut VerifyReport,
    prev_key: &mut Option<Bytes>,
) -> Result<u64, VerifyError> {
    match node {
        Node::Leaf(entries) => {
            for e in entries {
                if let Some(p) = prev_key {
                    // Positional trees (lists) use empty keys throughout;
                    // ordering is only enforced once keys are non-empty.
                    let both_empty = p.is_empty() && e.key.is_empty();
                    if !both_empty && p.as_ref() >= e.key.as_ref() {
                        return Err(VerifyError::Invariant(format!(
                            "keys not strictly ascending at {:?}",
                            e.key
                        )));
                    }
                }
                *prev_key = Some(e.key.clone());
                report.entries += 1;
            }
            Ok(entries.len() as u64)
        }
        Node::Index { level, children } => {
            let mut total = 0u64;
            for c in children {
                let child = Node::load(store, &c.hash)?;
                report.nodes += 1;
                if child.level() + 1 != *level {
                    return Err(VerifyError::Invariant(format!(
                        "child level {} under index level {}",
                        child.level(),
                        level
                    )));
                }
                let sub = walk(store, &child, report, prev_key)?;
                if sub != c.count {
                    return Err(VerifyError::Invariant(format!(
                        "index entry count {} != subtree count {sub}",
                        c.count
                    )));
                }
                let actual_split = child.split_key().unwrap_or_default();
                if actual_split != c.split_key {
                    return Err(VerifyError::Invariant(format!(
                        "split key {:?} != child max key {:?}",
                        c.split_key, actual_split
                    )));
                }
                total += sub;
            }
            Ok(total)
        }
    }
}

/// Re-chunk every level's entry stream and confirm the cuts land exactly on
/// the existing node boundaries.
fn verify_boundaries<S: ChunkStore>(
    store: &S,
    root: &Node,
    cfg: ChunkerConfig,
) -> Result<(), VerifyError> {
    // Gather the node list of each level via BFS.
    let mut current: Vec<Node> = vec![root.clone()];
    loop {
        // Check this level's boundary placement.
        check_level_boundaries(&current, cfg)?;
        // Descend.
        let mut next = Vec::new();
        for node in &current {
            if let Node::Index { children, .. } = node {
                for c in children {
                    next.push(Node::load(store, &c.hash)?);
                }
            }
        }
        if next.is_empty() {
            return Ok(());
        }
        current = next;
    }
}

fn check_level_boundaries(nodes: &[Node], cfg: ChunkerConfig) -> Result<(), VerifyError> {
    let mut chunker = EntryChunker::new(cfg);
    let mut scratch = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        let is_last = i + 1 == nodes.len();
        let n_entries = node.entry_count();
        let mut cut_at_entry: Option<usize> = None;
        match node {
            Node::Leaf(entries) => {
                for (j, e) in entries.iter().enumerate() {
                    scratch.clear();
                    e.encode_into(&mut scratch);
                    if chunker.push_entry(&scratch) {
                        cut_at_entry = Some(j);
                    }
                }
            }
            Node::Index { children, .. } => {
                // Index levels chunk over child hashes only (see
                // `builder::TreeBuilder::push_index` for why).
                for (j, c) in children.iter().enumerate() {
                    if chunker.push_entry(c.hash.as_bytes()) {
                        cut_at_entry = Some(j);
                    }
                }
            }
        }
        match cut_at_entry {
            Some(j) if j + 1 == n_entries => { /* boundary at node end: canonical */ }
            Some(j) => {
                return Err(VerifyError::Invariant(format!(
                    "node {i} has an interior pattern cut at entry {j}"
                )));
            }
            None if is_last => { /* final node is stream-terminated */ }
            None => {
                return Err(VerifyError::Invariant(format!(
                    "node {i} is not pattern-terminated but is not the final node"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::PosMap;
    use crate::node::{IndexEntry, LeafEntry};
    use bytes::Bytes;
    use forkbase_store::{MemStore, SweepStore};

    fn cfg() -> ChunkerConfig {
        ChunkerConfig::test_small()
    }

    fn k(i: u32) -> Bytes {
        Bytes::from(format!("key-{i:08}"))
    }

    fn v(i: u32) -> Bytes {
        Bytes::from(format!("value-{i}"))
    }

    fn sample(store: &MemStore, n: u32) -> PosMap<'_, MemStore> {
        PosMap::build_from_sorted(store, cfg(), (0..n).map(|i| (k(i), v(i)))).unwrap()
    }

    #[test]
    fn valid_tree_verifies() {
        let store = MemStore::new();
        let m = sample(&store, 3000);
        let report = verify_map(&store, m.tree(), cfg(), true).unwrap();
        assert_eq!(report.entries, 3000);
        assert!(report.nodes > 10);
        assert!(report.height >= 1);
    }

    #[test]
    fn empty_tree_verifies() {
        let store = MemStore::new();
        let m = PosMap::empty(&store, cfg()).unwrap();
        let report = verify_map(&store, m.tree(), cfg(), true).unwrap();
        assert_eq!(report.entries, 0);
        assert_eq!(report.nodes, 1);
    }

    #[test]
    fn updated_tree_verifies() {
        let store = MemStore::new();
        let m = sample(&store, 3000);
        let m2 = m
            .insert(k(12_345), Bytes::from_static(b"inserted"))
            .unwrap();
        let m3 = m2.remove(k(100)).unwrap();
        verify_map(&store, m3.tree(), cfg(), true).unwrap();
    }

    #[test]
    fn wrong_count_is_detected() {
        let store = MemStore::new();
        let m = sample(&store, 500);
        let lying = TreeRef::new(m.root(), 501);
        assert!(matches!(
            verify_map(&store, lying, cfg(), false),
            Err(VerifyError::Invariant(_))
        ));
    }

    #[test]
    fn forged_subtree_is_detected() {
        // Build a hand-forged index node whose child count lies, store it,
        // and point a TreeRef at it. The hash is self-consistent (the store
        // is "malicious" and can store anything), so only the structural
        // walk catches the lie.
        let store = MemStore::new();
        let leaf = Node::Leaf(vec![
            LeafEntry::new(Bytes::from_static(b"a"), Bytes::from_static(b"1")),
            LeafEntry::new(Bytes::from_static(b"b"), Bytes::from_static(b"2")),
        ]);
        let leaf_hash = leaf.store(&store).unwrap();
        let forged = Node::Index {
            level: 1,
            children: vec![IndexEntry::new(Bytes::from_static(b"b"), leaf_hash, 99)],
        };
        let forged_hash = forged.store(&store).unwrap();
        let result = verify_map(&store, TreeRef::new(forged_hash, 99), cfg(), false);
        assert!(matches!(result, Err(VerifyError::Invariant(m)) if m.contains("count")));
    }

    #[test]
    fn forged_split_key_is_detected() {
        let store = MemStore::new();
        let leaf = Node::Leaf(vec![LeafEntry::new(
            Bytes::from_static(b"a"),
            Bytes::from_static(b"1"),
        )]);
        let leaf_hash = leaf.store(&store).unwrap();
        let forged = Node::Index {
            level: 1,
            children: vec![IndexEntry::new(Bytes::from_static(b"zzz"), leaf_hash, 1)],
        };
        let forged_hash = forged.store(&store).unwrap();
        let result = verify_map(&store, TreeRef::new(forged_hash, 1), cfg(), false);
        assert!(matches!(result, Err(VerifyError::Invariant(m)) if m.contains("split key")));
    }

    #[test]
    fn unsorted_leaf_is_detected() {
        let store = MemStore::new();
        let bad = Node::Leaf(vec![
            LeafEntry::new(Bytes::from_static(b"b"), Bytes::from_static(b"1")),
            LeafEntry::new(Bytes::from_static(b"a"), Bytes::from_static(b"2")),
        ]);
        let h = bad.store(&store).unwrap();
        let result = verify_map(&store, TreeRef::new(h, 2), cfg(), false);
        assert!(matches!(result, Err(VerifyError::Invariant(m)) if m.contains("ascending")));
    }

    #[test]
    fn non_canonical_chunking_is_detected_with_boundary_check() {
        // A malicious store could present the same records split into
        // different pages. Build such a tree by hand: all 200 entries in
        // one giant leaf (the canonical tree for this config splits them).
        let store = MemStore::new();
        let entries: Vec<LeafEntry> = (0..200).map(|i| LeafEntry::new(k(i), v(i))).collect();
        let big_leaf = Node::Leaf(entries);
        let h = big_leaf.store(&store).unwrap();
        let tree = TreeRef::new(h, 200);
        // Passes the plain structural check…
        verify_map(&store, tree, cfg(), false).unwrap();
        // …but fails the canonical-boundary check.
        assert!(matches!(
            verify_map(&store, tree, cfg(), true),
            Err(VerifyError::Invariant(m)) if m.contains("cut")
        ));
    }

    #[test]
    fn missing_chunk_is_detected() {
        let store = MemStore::new();
        let m = sample(&store, 2000);
        // Remove one interior chunk.
        let mut victim = None;
        store.for_each_chunk(|h, _| {
            if victim.is_none() && *h != m.root() {
                victim = Some(*h);
            }
        });
        store.sweep(&|h| Some(*h) != victim).unwrap();
        assert!(matches!(
            verify_map(&store, m.tree(), cfg(), false),
            Err(VerifyError::Node(NodeError::Missing(_)))
        ));
    }
}
