//! Merkle proofs for single entries.
//!
//! The POS-Tree is a Merkle tree, so a server can hand a *light client*
//! — one that knows only a trusted root hash — a compact proof that a
//! key maps to a value (or is absent), without the client fetching the
//! tree. This is the mechanism blockchains built on ForkBase use for
//! account-state queries (the engine paper's headline application).
//!
//! A proof is the root→leaf path of raw node encodings. Verification
//! replays the *exact* descent logic of [`crate::map::PosMap::get`]:
//! each node must hash to the address its parent committed to, and the
//! child choice is forced by the split keys — so a malicious prover can
//! neither substitute nodes nor steer the path.

use bytes::Bytes;
use forkbase_crypto::{sha256, Hash};
use forkbase_store::ChunkStore;

use crate::node::{Node, NodeError, NodeResult};
use crate::TreeRef;

/// A membership / absence proof for one key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Raw node encodings from the root down to (and including) the leaf
    /// that decides the query. May stop early when an index node already
    /// proves absence (key beyond the maximum).
    pub nodes: Vec<Bytes>,
}

impl MerkleProof {
    /// Total proof size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.len()).sum()
    }
}

/// Proof verification failure: the proof does not authenticate against
/// the root (tampering, truncation, or a dishonest prover).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofError(pub String);

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid proof: {}", self.0)
    }
}

impl std::error::Error for ProofError {}

/// Build a proof for `key` against the map at `tree`.
pub fn prove_key<S: ChunkStore>(store: &S, tree: TreeRef, key: &[u8]) -> NodeResult<MerkleProof> {
    let mut nodes = Vec::new();
    let mut hash = tree.root;
    loop {
        let bytes = store.get(&hash)?.ok_or(NodeError::Missing(hash))?;
        let actual = sha256(&bytes);
        if actual != hash {
            return Err(NodeError::HashMismatch {
                expected: hash,
                actual,
            });
        }
        let node = Node::decode(&bytes)?;
        nodes.push(bytes);
        match node {
            Node::Leaf(_) => return Ok(MerkleProof { nodes }),
            Node::Index { children, .. } => {
                let idx = children.partition_point(|c| c.split_key.as_ref() < key);
                if idx == children.len() {
                    // Key beyond the maximum: this index node alone proves
                    // absence.
                    return Ok(MerkleProof { nodes });
                }
                hash = children[idx].hash;
            }
        }
    }
}

/// Verify `proof` against a trusted `root` hash. On success returns the
/// proven value (`Some`) or proven absence (`None`).
pub fn verify_proof(
    root: &Hash,
    key: &[u8],
    proof: &MerkleProof,
) -> Result<Option<Bytes>, ProofError> {
    if proof.nodes.is_empty() {
        return Err(ProofError("empty proof".into()));
    }
    let mut expected = *root;
    let mut steps = proof.nodes.iter().peekable();
    while let Some(bytes) = steps.next() {
        if sha256(bytes) != expected {
            return Err(ProofError(format!(
                "node does not hash to the committed address {expected:?}"
            )));
        }
        let node = Node::decode(bytes).map_err(|e| ProofError(format!("bad node: {e}")))?;
        match node {
            Node::Leaf(entries) => {
                if steps.peek().is_some() {
                    return Err(ProofError("trailing nodes after leaf".into()));
                }
                // Soundness of the leaf answer relies on the forced
                // descent: this leaf is the unique one whose key range
                // covers `key`.
                return Ok(entries
                    .binary_search_by(|e| e.key.as_ref().cmp(key))
                    .ok()
                    .map(|i| entries[i].value.clone()));
            }
            Node::Index { children, .. } => {
                let idx = children.partition_point(|c| c.split_key.as_ref() < key);
                if idx == children.len() {
                    // Absence proven — but only if the prover stops here.
                    if steps.peek().is_some() {
                        return Err(ProofError("prover descended past a proven absence".into()));
                    }
                    return Ok(None);
                }
                expected = children[idx].hash;
            }
        }
    }
    Err(ProofError("proof ended inside an index node".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::PosMap;
    use forkbase_chunk::ChunkerConfig;
    use forkbase_store::MemStore;

    fn cfg() -> ChunkerConfig {
        ChunkerConfig::test_small()
    }

    fn k(i: u32) -> Bytes {
        Bytes::from(format!("key-{i:08}"))
    }

    fn v(i: u32) -> Bytes {
        Bytes::from(format!("value-{i}"))
    }

    fn sample(store: &MemStore, n: u32) -> PosMap<'_, MemStore> {
        PosMap::build_from_sorted(store, cfg(), (0..n).map(|i| (k(i), v(i)))).unwrap()
    }

    #[test]
    fn membership_proof_roundtrip() {
        let store = MemStore::new();
        let m = sample(&store, 5000);
        for i in [0u32, 1, 2499, 4999] {
            let proof = prove_key(&store, m.tree(), &k(i)).unwrap();
            let got = verify_proof(&m.root(), &k(i), &proof).unwrap();
            assert_eq!(got, Some(v(i)), "key {i}");
            assert!(proof.nodes.len() >= 2, "multi-level tree path");
        }
    }

    #[test]
    fn absence_proof_roundtrip() {
        let store = MemStore::new();
        let m = sample(&store, 1000);
        // Between two keys.
        let between = Bytes::from_static(b"key-00000500x");
        let proof = prove_key(&store, m.tree(), &between).unwrap();
        assert_eq!(verify_proof(&m.root(), &between, &proof).unwrap(), None);
        // Beyond the maximum (short proof).
        let beyond = Bytes::from_static(b"zzz");
        let proof = prove_key(&store, m.tree(), &beyond).unwrap();
        assert_eq!(verify_proof(&m.root(), &beyond, &proof).unwrap(), None);
    }

    #[test]
    fn proof_is_compact() {
        let store = MemStore::new();
        let m = sample(&store, 20_000);
        let proof = prove_key(&store, m.tree(), &k(10_000)).unwrap();
        let total_bytes: u64 = {
            let mut sum = 0u64;
            store.for_each_chunk(|_, len| sum += len as u64);
            sum
        };
        assert!(
            (proof.size_bytes() as u64) < total_bytes / 50,
            "proof {} vs tree {total_bytes}",
            proof.size_bytes()
        );
    }

    #[test]
    fn wrong_root_rejected() {
        let store = MemStore::new();
        let m = sample(&store, 500);
        let proof = prove_key(&store, m.tree(), &k(250)).unwrap();
        let wrong = forkbase_crypto::sha256(b"not the root");
        assert!(verify_proof(&wrong, &k(250), &proof).is_err());
    }

    #[test]
    fn tampered_proof_rejected() {
        let store = MemStore::new();
        let m = sample(&store, 500);
        let mut proof = prove_key(&store, m.tree(), &k(250)).unwrap();
        // Flip a byte in the leaf node.
        let last = proof.nodes.len() - 1;
        let mut bytes = proof.nodes[last].to_vec();
        bytes[10] ^= 1;
        proof.nodes[last] = Bytes::from(bytes);
        assert!(verify_proof(&m.root(), &k(250), &proof).is_err());
    }

    #[test]
    fn value_substitution_rejected() {
        // A dishonest prover cannot swap in a different (valid) leaf: its
        // hash will not match the parent's commitment.
        let store = MemStore::new();
        let m = sample(&store, 500);
        let m2 = m.insert(k(250), Bytes::from_static(b"forged")).unwrap();
        let honest = prove_key(&store, m.tree(), &k(250)).unwrap();
        let forged = prove_key(&store, m2.tree(), &k(250)).unwrap();
        // Mix: forged leaf under honest path.
        let mut mixed = honest.clone();
        *mixed.nodes.last_mut().unwrap() = forged.nodes.last().unwrap().clone();
        assert!(verify_proof(&m.root(), &k(250), &mixed).is_err());
    }

    #[test]
    fn truncated_and_padded_proofs_rejected() {
        let store = MemStore::new();
        let m = sample(&store, 2000);
        let proof = prove_key(&store, m.tree(), &k(1000)).unwrap();
        // Truncated: ends inside an index node.
        let truncated = MerkleProof {
            nodes: proof.nodes[..proof.nodes.len() - 1].to_vec(),
        };
        assert!(verify_proof(&m.root(), &k(1000), &truncated).is_err());
        // Padded: junk after the leaf.
        let mut padded = proof.clone();
        padded.nodes.push(padded.nodes.last().unwrap().clone());
        assert!(verify_proof(&m.root(), &k(1000), &padded).is_err());
        // Empty.
        assert!(verify_proof(&m.root(), &k(1000), &MerkleProof { nodes: vec![] }).is_err());
    }

    #[test]
    fn proof_for_single_leaf_tree() {
        let store = MemStore::new();
        let m = sample(&store, 1);
        let proof = prove_key(&store, m.tree(), &k(0)).unwrap();
        assert_eq!(proof.nodes.len(), 1, "root is the leaf");
        assert_eq!(verify_proof(&m.root(), &k(0), &proof).unwrap(), Some(v(0)));
        // Absence in the same single-leaf tree.
        let absent = Bytes::from_static(b"nope");
        let proof = prove_key(&store, m.tree(), &absent).unwrap();
        assert_eq!(verify_proof(&m.root(), &absent, &proof).unwrap(), None);
    }
}
