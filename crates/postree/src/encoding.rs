//! Canonical binary encoding primitives.
//!
//! Every byte written here feeds SHA-256 content addressing, so encodings
//! must be total, unambiguous and byte-stable forever. Integers are
//! little-endian fixed width; byte strings are length-prefixed. No varints:
//! a varint saves a few bytes but creates two encodings of small numbers in
//! careless hands, and content addressing cannot afford ambiguity.

use bytes::Bytes;

/// Append a `u32` (LE).
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` (LE).
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte string (`u32` length + bytes).
#[inline]
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Sequential reader over a byte slice with explicit error reporting.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset at which decoding failed.
    pub at: usize,
    /// What was being decoded.
    pub what: &'static str,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "decode error at byte {}: truncated {}",
            self.at, self.what
        )
    }
}

impl std::error::Error for DecodeError {}

impl<'a> Reader<'a> {
    /// Start reading at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError { at: self.pos, what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a `u32` (LE).
    pub fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    /// Read a `u64` (LE).
    pub fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    /// Read `n` raw bytes.
    pub fn raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        self.take(n, what)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], DecodeError> {
        let len = self.u32(what)? as usize;
        self.take(len, what)
    }

    /// Read a length-prefixed byte string as owned [`Bytes`].
    pub fn bytes_owned(&mut self, what: &'static str) -> Result<Bytes, DecodeError> {
        Ok(Bytes::copy_from_slice(self.bytes(what)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints_and_bytes() {
        let mut out = Vec::new();
        put_u32(&mut out, 0xdead_beef);
        put_u64(&mut out, 0x0123_4567_89ab_cdef);
        put_bytes(&mut out, b"payload");
        out.push(0x7f);

        let mut r = Reader::new(&out);
        assert_eq!(r.u32("a").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("b").unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.bytes("c").unwrap(), b"payload");
        assert_eq!(r.u8("d").unwrap(), 0x7f);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"hello");
        let mut r = Reader::new(&out[..6]); // length says 5 but only 2 present
        let err = r.bytes("field").unwrap_err();
        assert_eq!(err.what, "field");
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn empty_byte_string() {
        let mut out = Vec::new();
        put_bytes(&mut out, b"");
        let mut r = Reader::new(&out);
        assert_eq!(r.bytes("e").unwrap(), b"");
        assert!(r.is_empty());
    }

    #[test]
    fn position_tracking() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r = Reader::new(&data);
        assert_eq!(r.pos(), 0);
        r.u8("x").unwrap();
        assert_eq!(r.pos(), 1);
        assert_eq!(r.remaining(), 4);
        assert_eq!(r.raw(4, "rest").unwrap(), &[2, 3, 4, 5]);
        assert!(r.u8("past end").is_err());
    }
}
