//! Bottom-up POS-Tree construction.
//!
//! [`TreeBuilder`] consumes an ordered stream of leaf entries, detecting
//! node boundaries with the [`forkbase_chunk::EntryChunker`], and emits
//! finished nodes into the chunk store. Each finished node becomes an index
//! entry in the level above, which is itself chunked with the same pattern
//! rule — recursively, until one node remains: the root (paper Fig. 2).
//!
//! **Invariant maintained across bulk builds and incremental updates:**
//! every non-final node at every level was terminated by a pattern (or the
//! max-size guard), and every node starts with fresh chunker state. This is
//! what makes [`TreeBuilder::append_leaf_node`] sound: a previously-stored,
//! pattern-terminated node can be spliced into a new tree verbatim whenever
//! the builder is at a node boundary, because the pattern is a property of
//! the node's own bytes (reset-on-cut chunking) and will re-occur in the
//! new stream at exactly the same place.

use bytes::Bytes;
use forkbase_chunk::{ChunkerConfig, EntryChunker};
use forkbase_crypto::{sha256, Hash};
use forkbase_store::ChunkStore;

use crate::node::{IndexEntry, LeafEntry, Node, NodeResult};

/// Flush the staged-chunk buffer once it holds this many chunks…
const FLUSH_CHUNKS: usize = 128;
/// …or this many payload bytes, whichever comes first.
const FLUSH_BYTES: usize = 4 * 1024 * 1024;

/// The result of finishing a build: the root reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FinishedTree {
    /// Root node content hash.
    pub hash: forkbase_crypto::Hash,
    /// Total leaf entries (bytes, for blob trees).
    pub count: u64,
    /// Level of the root node (0 = the root is a leaf).
    pub level: u8,
    /// Maximum key in the tree (empty for empty/positional trees).
    pub split_key: bytes::Bytes,
}

/// Per-level accumulation state.
struct LevelBuilder {
    chunker: EntryChunker,
    pending_leaf: Vec<LeafEntry>,
    pending_index: Vec<IndexEntry>,
    nodes_emitted: u64,
}

impl LevelBuilder {
    fn new(cfg: ChunkerConfig) -> Self {
        LevelBuilder {
            chunker: EntryChunker::new(cfg),
            pending_leaf: Vec::new(),
            pending_index: Vec::new(),
            nodes_emitted: 0,
        }
    }

    fn pending_len(&self) -> usize {
        self.pending_leaf.len() + self.pending_index.len()
    }
}

/// Streaming, bottom-up tree builder.
pub struct TreeBuilder<'s, S> {
    store: &'s S,
    cfg: ChunkerConfig,
    /// `levels[0]` accumulates leaf entries, `levels[i]` index entries of
    /// height `i`.
    levels: Vec<LevelBuilder>,
    /// Scratch buffer for entry encoding (reused across pushes).
    scratch: Vec<u8>,
    /// Total number of nodes written (including dedup hits), for metrics.
    nodes_written: u64,
    /// Finished chunks awaiting one batched store round-trip. Nothing
    /// reads an emitted node before [`Self::finish`] (parents reference
    /// children by hash only), so deferring the writes is invisible —
    /// except to the store's lock, which is taken once per batch instead
    /// of once per node.
    staged: Vec<(Hash, Bytes)>,
    staged_bytes: usize,
}

impl<'s, S: ChunkStore> TreeBuilder<'s, S> {
    /// Create a builder writing nodes into `store` with chunking `cfg`.
    pub fn new(store: &'s S, cfg: ChunkerConfig) -> Self {
        TreeBuilder {
            store,
            cfg,
            levels: vec![LevelBuilder::new(cfg)],
            scratch: Vec::with_capacity(256),
            nodes_written: 0,
            staged: Vec::new(),
            staged_bytes: 0,
        }
    }

    /// Stage an arbitrary content-addressed chunk for the next batched
    /// store write. Used by the blob writer so data chunks ride the same
    /// batch as the index nodes above them. `hash` must be the SHA-256 of
    /// `bytes`.
    pub fn stage_chunk(&mut self, hash: Hash, bytes: Bytes) -> NodeResult<()> {
        self.staged_bytes += bytes.len();
        self.staged.push((hash, bytes));
        if self.staged.len() >= FLUSH_CHUNKS || self.staged_bytes >= FLUSH_BYTES {
            self.flush_staged()?;
        }
        Ok(())
    }

    /// Send all staged chunks to the store in one `put_batch` round-trip.
    fn flush_staged(&mut self) -> NodeResult<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        self.staged_bytes = 0;
        self.store.put_batch(std::mem::take(&mut self.staged))?;
        Ok(())
    }

    /// Number of leaf entries buffered in the unfinished leaf node.
    pub fn leaf_pending(&self) -> usize {
        self.levels[0].pending_len()
    }

    /// Whether the builder sits exactly at a leaf-node boundary (fresh
    /// chunker state) — the precondition for [`Self::append_leaf_node`].
    pub fn at_leaf_boundary(&self) -> bool {
        self.leaf_pending() == 0
    }

    /// Total nodes written so far (including dedup hits).
    pub fn nodes_written(&self) -> u64 {
        self.nodes_written
    }

    /// Push the next leaf entry (must be in key order for map trees —
    /// enforced by callers, verified downstream by `verify`).
    pub fn push(&mut self, entry: LeafEntry) -> NodeResult<()> {
        self.scratch.clear();
        entry.encode_into(&mut self.scratch);
        let cut = {
            let lvl = &mut self.levels[0];
            lvl.pending_leaf.push(entry);
            lvl.chunker.push_entry(&self.scratch)
        };
        if cut {
            let e = self.emit_node(0)?;
            self.push_index(1, e)?;
        }
        Ok(())
    }

    /// Splice a whole, previously-stored, pattern-terminated leaf node into
    /// the tree without re-reading its entries. The builder must be at a
    /// leaf boundary.
    pub fn append_leaf_node(&mut self, node_ref: IndexEntry) -> NodeResult<()> {
        assert!(
            self.at_leaf_boundary(),
            "append_leaf_node requires fresh chunker state at the leaf level"
        );
        self.levels[0].nodes_emitted += 1;
        self.push_index(1, node_ref)
    }

    /// Push an index entry at `level` (≥ 1), cascading cuts upward.
    ///
    /// **Boundary rule at index levels:** only the child *hash* feeds the
    /// chunker, not the full serialized entry. Feeding key bytes would be
    /// fatal: when a cut produces a single-child node, the parent entry
    /// repeats the same split key, and a pattern inside that key would fire
    /// identically at every level — unbounded growth. Hashes change at
    /// every level (the node encodes its level), so the boundary decision
    /// is re-randomized and the cascade terminates almost surely, while
    /// remaining a pure function of tree content (structural invariance).
    fn push_index(&mut self, level: usize, entry: IndexEntry) -> NodeResult<()> {
        while self.levels.len() <= level {
            self.levels.push(LevelBuilder::new(self.cfg));
        }
        let cut = {
            let lvl = &mut self.levels[level];
            let cut = lvl.chunker.push_entry(entry.hash.as_bytes());
            lvl.pending_index.push(entry);
            cut
        };
        if cut {
            let e = self.emit_node(level)?;
            self.push_index(level + 1, e)?;
        }
        Ok(())
    }

    /// Seal the pending entries at `level` into a stored node and return
    /// its index entry. The level's chunker is reset.
    fn emit_node(&mut self, level: usize) -> NodeResult<IndexEntry> {
        let lvl = &mut self.levels[level];
        let node = if level == 0 {
            Node::Leaf(std::mem::take(&mut lvl.pending_leaf))
        } else {
            Node::Index {
                level: level as u8,
                children: std::mem::take(&mut lvl.pending_index),
            }
        };
        lvl.chunker.reset();
        lvl.nodes_emitted += 1;
        let count = node.subtree_count();
        let split_key = node.split_key().unwrap_or_default();
        let encoded = node.encode();
        let hash = sha256(&encoded);
        self.stage_chunk(hash, Bytes::from(encoded))?;
        self.nodes_written += 1;
        Ok(IndexEntry {
            split_key,
            hash,
            count,
        })
    }

    /// Flush all levels and return the root reference.
    ///
    /// An empty build yields a canonical empty leaf node, so the empty tree
    /// has a well-defined root hash too. Every staged chunk is flushed to
    /// the store before this returns: the finished tree is fully readable.
    pub fn finish(mut self) -> NodeResult<FinishedTree> {
        let root = self.finish_root()?;
        self.flush_staged()?;
        Ok(root)
    }

    fn finish_root(&mut self) -> NodeResult<FinishedTree> {
        let mut level = 0usize;
        loop {
            let is_top = level + 1 == self.levels.len();
            let emitted = self.levels[level].nodes_emitted;
            let pending = self.levels[level].pending_len();

            if is_top {
                if level == 0 {
                    // Whole tree fits in (or is) a single leaf node.
                    debug_assert_eq!(emitted, 0, "emitting creates the level above");
                    let e = self.emit_node(0)?;
                    return Ok(FinishedTree {
                        hash: e.hash,
                        count: e.count,
                        level: 0,
                        split_key: e.split_key,
                    });
                }
                if emitted == 0 && pending == 1 {
                    // Exactly one child bubbled up: it is the root itself.
                    let e = self.levels[level].pending_index.pop().expect("one entry");
                    return Ok(FinishedTree {
                        hash: e.hash,
                        count: e.count,
                        // The child of a level-`level` builder sits at
                        // `level - 1`... unless it was a fast-appended leaf.
                        // Its true level is encoded in the node itself; for
                        // the root ref we only promise "root of height ≤
                        // level-1"; callers that need the exact level read
                        // the node header. We report level-1 which is exact
                        // for all builder-emitted nodes.
                        level: (level - 1) as u8,
                        split_key: e.split_key,
                    });
                }
                if pending > 0 {
                    let e = self.emit_node(level)?;
                    self.push_index(level + 1, e)?;
                }
                level += 1;
            } else {
                if pending > 0 {
                    let e = self.emit_node(level)?;
                    // Push into the parent WITHOUT triggering recursion
                    // above the top: push_index handles cascades naturally.
                    self.push_index(level + 1, e)?;
                }
                level += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use forkbase_chunk::ChunkerConfig;
    use forkbase_store::MemStore;

    fn entry(i: u32) -> LeafEntry {
        LeafEntry::new(
            Bytes::from(format!("key-{i:08}")),
            Bytes::from(format!("value-{i}-{}", i * 7)),
        )
    }

    fn build(store: &MemStore, n: u32, cfg: ChunkerConfig) -> FinishedTree {
        let mut b = TreeBuilder::new(store, cfg);
        for i in 0..n {
            b.push(entry(i)).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn empty_tree_has_canonical_root() {
        let store = MemStore::new();
        let t1 = build(&store, 0, ChunkerConfig::test_small());
        let t2 = build(&store, 0, ChunkerConfig::test_small());
        assert_eq!(t1, t2);
        assert_eq!(t1.count, 0);
        assert_eq!(t1.level, 0);
        let node = Node::load(&store, &t1.hash).unwrap();
        assert_eq!(node, Node::Leaf(vec![]));
    }

    #[test]
    fn single_entry_tree() {
        let store = MemStore::new();
        let t = build(&store, 1, ChunkerConfig::test_small());
        assert_eq!(t.count, 1);
        let node = Node::load(&store, &t.hash).unwrap();
        assert_eq!(node.entry_count(), 1);
    }

    #[test]
    fn large_tree_builds_multiple_levels() {
        let store = MemStore::new();
        let t = build(&store, 5000, ChunkerConfig::test_small());
        assert_eq!(t.count, 5000);
        assert!(t.level >= 2, "expected multi-level tree, got {}", t.level);
        // Root node must decode and report the right subtree count.
        let root = Node::load(&store, &t.hash).unwrap();
        assert_eq!(root.subtree_count(), 5000);
        assert_eq!(root.level(), t.level);
    }

    #[test]
    fn deterministic_root() {
        let s1 = MemStore::new();
        let s2 = MemStore::new();
        let t1 = build(&s1, 2000, ChunkerConfig::test_small());
        let t2 = build(&s2, 2000, ChunkerConfig::test_small());
        assert_eq!(t1.hash, t2.hash);
        assert_eq!(s1.chunk_count(), s2.chunk_count());
    }

    #[test]
    fn split_key_is_max_key() {
        let store = MemStore::new();
        let t = build(&store, 500, ChunkerConfig::test_small());
        assert_eq!(t.split_key, Bytes::from(format!("key-{:08}", 499)));
    }

    #[test]
    fn counts_consistent_at_every_level() {
        let store = MemStore::new();
        let t = build(&store, 3000, ChunkerConfig::test_small());
        // Walk the tree and check each index entry's count equals its
        // child's subtree count.
        fn check(store: &MemStore, hash: &forkbase_crypto::Hash) -> u64 {
            let node = Node::load(store, hash).unwrap();
            match &node {
                Node::Leaf(entries) => entries.len() as u64,
                Node::Index { children, .. } => {
                    let mut total = 0;
                    for c in children {
                        let sub = check(store, &c.hash);
                        assert_eq!(sub, c.count, "count mismatch at child {:?}", c.hash);
                        total += sub;
                    }
                    total
                }
            }
        }
        assert_eq!(check(&store, &t.hash), 3000);
    }

    #[test]
    fn keys_are_ordered_at_every_level() {
        let store = MemStore::new();
        let t = build(&store, 3000, ChunkerConfig::test_small());
        fn check(store: &MemStore, hash: &forkbase_crypto::Hash) {
            let node = Node::load(store, hash).unwrap();
            match &node {
                Node::Leaf(entries) => {
                    for w in entries.windows(2) {
                        assert!(w[0].key < w[1].key);
                    }
                }
                Node::Index { children, .. } => {
                    for w in children.windows(2) {
                        assert!(w[0].split_key < w[1].split_key);
                    }
                    for c in children {
                        check(store, &c.hash);
                    }
                }
            }
        }
        check(&store, &t.hash);
    }

    #[test]
    fn emitted_nodes_are_batched_until_finish() {
        // Small builds stay under the flush threshold: nothing reaches the
        // store until `finish`, and then everything does, in one batch.
        let store = MemStore::new();
        let mut b = TreeBuilder::new(&store, ChunkerConfig::test_small());
        for i in 0..200 {
            b.push(entry(i)).unwrap();
        }
        assert!(b.nodes_written() > 0, "some nodes already emitted");
        assert_eq!(
            store.chunk_count(),
            0,
            "emitted nodes are staged, not stored"
        );
        let t = b.finish().unwrap();
        assert!(store.chunk_count() > 0);
        assert!(
            store.contains(&t.hash).unwrap(),
            "root readable after finish"
        );
        // Batched build must be byte-identical to what the per-node path
        // produced (same chunks, same root).
        let reference = MemStore::new();
        let t2 = build(&reference, 200, ChunkerConfig::test_small());
        assert_eq!(t.hash, t2.hash);
        assert_eq!(store.chunk_count(), reference.chunk_count());
    }

    #[test]
    fn large_build_flushes_at_threshold() {
        // A build bigger than FLUSH_CHUNKS nodes must flush mid-build so
        // staged memory stays bounded.
        let store = MemStore::new();
        let mut b = TreeBuilder::new(&store, ChunkerConfig::test_small());
        for i in 0..5000 {
            b.push(entry(i)).unwrap();
        }
        assert!(
            store.chunk_count() > 0,
            "threshold flush must have hit the store before finish"
        );
        let t = b.finish().unwrap();
        assert_eq!(t.count, 5000);
    }

    #[test]
    fn append_leaf_node_reuses_pages() {
        // Build once; rebuild splicing the first tree's first leaf node
        // verbatim; roots must match and no new chunks may be written.
        let store = MemStore::new();
        let t = build(&store, 2000, ChunkerConfig::test_small());
        let root = Node::load(&store, &t.hash).unwrap();
        let Node::Index { .. } = &root else {
            panic!("need a multi-node tree for this test")
        };
        // Find the leftmost leaf node ref by descending first children.
        let mut node = root;
        let first_leaf_ref = loop {
            match node {
                Node::Index { ref children, .. } => {
                    let c = children[0].clone();
                    let child = Node::load(&store, &c.hash).unwrap();
                    if child.level() == 0 {
                        break c;
                    }
                    node = child;
                }
                Node::Leaf(_) => unreachable!(),
            }
        };
        let chunks_before = store.chunk_count();

        let mut b = TreeBuilder::new(&store, ChunkerConfig::test_small());
        b.append_leaf_node(first_leaf_ref.clone()).unwrap();
        let mut i = first_leaf_ref.count as u32;
        while i < 2000 {
            b.push(entry(i)).unwrap();
            i += 1;
        }
        let t2 = b.finish().unwrap();
        assert_eq!(t2.hash, t.hash, "spliced build must be byte-identical");
        assert_eq!(store.chunk_count(), chunks_before, "no new chunks");
    }

    #[test]
    #[should_panic(expected = "fresh chunker state")]
    fn append_mid_node_panics() {
        let store = MemStore::new();
        let mut b = TreeBuilder::new(&store, ChunkerConfig::test_small());
        b.push(entry(0)).unwrap();
        // Builder is mid-node now; splicing would corrupt boundaries.
        b.append_leaf_node(IndexEntry::new(
            Bytes::new(),
            forkbase_crypto::sha256(b"x"),
            1,
        ))
        .unwrap();
    }
}
