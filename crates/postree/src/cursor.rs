//! Leaf-entry cursor with node-level navigation.
//!
//! [`LeafCursor`] walks a POS-Tree's leaf entries in key order while also
//! exposing the *node* structure: callers can skip a whole leaf node in
//! O(height) without decoding it, ask whether the current leaf is the tree's
//! final node, and test alignment at ancestor levels. These powers drive
//! both the incremental update (`map::apply`) and the sub-tree-pruning diff.

use bytes::Bytes;
use forkbase_crypto::Hash;
use forkbase_store::ChunkStore;

use crate::node::{IndexEntry, LeafEntry, Node, NodeError, NodeResult};
use crate::TreeRef;

/// One step of the root→leaf path.
struct PathNode {
    /// Children of this index node.
    children: Vec<IndexEntry>,
    /// Index of the child currently descended into.
    idx: usize,
    /// Content hash of this index node.
    hash: Hash,
    /// Height of this index node above the leaves (≥ 1).
    level: u8,
}

/// A forward cursor over a tree's leaf entries.
pub struct LeafCursor<'s, S> {
    store: &'s S,
    /// Root → parent-of-leaf chain. Empty when the root is itself a leaf.
    path: Vec<PathNode>,
    /// Reference (split_key, hash, count) of the current leaf node;
    /// `None` when the cursor is exhausted.
    leaf_ref: Option<IndexEntry>,
    /// Lazily decoded entries of the current leaf.
    leaf: Option<Vec<LeafEntry>>,
    /// Position within the current leaf.
    entry_idx: usize,
    /// Number of leaf entries strictly before the current leaf node.
    position_base: u64,
    /// Total nodes decoded, for complexity accounting (Fig. 5 experiment).
    nodes_loaded: u64,
}

impl<'s, S: ChunkStore> LeafCursor<'s, S> {
    /// Open a cursor at the first entry of the tree.
    pub fn new(store: &'s S, tree: TreeRef) -> NodeResult<Self> {
        let mut cursor = LeafCursor {
            store,
            path: Vec::new(),
            leaf_ref: None,
            leaf: None,
            entry_idx: 0,
            position_base: 0,
            nodes_loaded: 0,
        };
        cursor.descend_root(tree, DescendTo::First)?;
        Ok(cursor)
    }

    /// Open a cursor positioned at the first entry with key ≥ `key`.
    pub fn seek(store: &'s S, tree: TreeRef, key: &[u8]) -> NodeResult<Self> {
        let mut cursor = LeafCursor {
            store,
            path: Vec::new(),
            leaf_ref: None,
            leaf: None,
            entry_idx: 0,
            position_base: 0,
            nodes_loaded: 0,
        };
        cursor.descend_root(tree, DescendTo::Key(key))?;
        // Position within the leaf.
        if cursor.leaf_ref.is_some() {
            let (idx, len) = {
                let entries = cursor.load_leaf()?;
                (
                    entries.partition_point(|e| e.key.as_ref() < key),
                    entries.len(),
                )
            };
            cursor.entry_idx = idx;
            if idx == len {
                // Key is greater than everything in this leaf; it can only
                // happen when key > max key of tree (split-key descent
                // otherwise lands in a leaf containing a ≥ key entry).
                cursor.advance_leaf()?;
            }
        }
        Ok(cursor)
    }

    fn descend_root(&mut self, tree: TreeRef, target: DescendTo<'_>) -> NodeResult<()> {
        let root = self.load_node(&tree.root)?;
        match root {
            Node::Leaf(entries) => {
                let split_key = entries.last().map(|e| e.key.clone()).unwrap_or_default();
                self.leaf_ref = Some(IndexEntry::new(split_key, tree.root, entries.len() as u64));
                self.leaf = Some(entries);
                self.entry_idx = 0;
            }
            Node::Index { children, level } => {
                self.path.push(PathNode {
                    children,
                    idx: 0,
                    hash: tree.root,
                    level,
                });
                self.descend(target)?;
            }
        }
        Ok(())
    }

    /// Descend from the current deepest path node down to a leaf ref.
    fn descend(&mut self, target: DescendTo<'_>) -> NodeResult<()> {
        loop {
            let top = self.path.last_mut().expect("descend with non-empty path");
            let idx = match target {
                DescendTo::First => 0,
                DescendTo::Key(key) => {
                    let i = top.children.partition_point(|c| c.split_key.as_ref() < key);
                    i.min(top.children.len() - 1)
                }
            };
            top.idx = idx;
            if let DescendTo::Key(_) = target {
                // position_base accounting only for the siblings we skipped.
                for c in &top.children[..idx] {
                    self.position_base += c.count;
                }
            }
            let child_ref = top.children[idx].clone();
            if top.level == 1 {
                // Children of a level-1 index node are leaves. Do NOT load
                // the leaf here: the ref (split key, hash, count) from the
                // parent suffices for skipping and hash comparison, and
                // `load_leaf` decodes lazily only when entries are read.
                self.leaf_ref = Some(child_ref);
                self.leaf = None;
                self.entry_idx = 0;
                return Ok(());
            }
            let child = self.load_node(&child_ref.hash)?;
            match child {
                Node::Index { children, level } => {
                    debug_assert_eq!(level + 1, self.path.last().expect("parent").level);
                    self.path.push(PathNode {
                        children,
                        idx: 0,
                        hash: child_ref.hash,
                        level,
                    });
                }
                Node::Leaf(_) => {
                    return Err(NodeError::Malformed(
                        "leaf node below an index node of level > 1".into(),
                    ))
                }
            }
        }
    }

    fn load_node(&mut self, hash: &Hash) -> NodeResult<Node> {
        self.nodes_loaded += 1;
        Node::load(self.store, hash)
    }

    /// Count of nodes decoded so far by this cursor.
    pub fn nodes_loaded(&self) -> u64 {
        self.nodes_loaded
    }

    /// Reference of the current leaf node, or `None` at end of tree.
    pub fn leaf_ref(&self) -> Option<&IndexEntry> {
        self.leaf_ref.as_ref()
    }

    /// Whether the cursor sits at the first entry of its leaf node.
    pub fn at_leaf_start(&self) -> bool {
        self.entry_idx == 0
    }

    /// Whether the current leaf is the last leaf node of the tree.
    pub fn leaf_is_last(&self) -> bool {
        self.leaf_ref.is_some() && self.path.iter().all(|p| p.idx + 1 == p.children.len())
    }

    /// Number of leaf entries strictly before the cursor position.
    pub fn position(&self) -> u64 {
        self.position_base + self.entry_idx as u64
    }

    /// Whether the cursor has run off the end of the tree.
    pub fn at_end(&self) -> bool {
        self.leaf_ref.is_none()
    }

    fn load_leaf(&mut self) -> NodeResult<&Vec<LeafEntry>> {
        if self.leaf.is_none() {
            let hash = self
                .leaf_ref
                .as_ref()
                .expect("load_leaf at end of tree")
                .hash;
            let node = self.load_node(&hash)?;
            match node {
                Node::Leaf(entries) => self.leaf = Some(entries),
                Node::Index { .. } => {
                    return Err(NodeError::Malformed(
                        "index node where a leaf was expected".into(),
                    ))
                }
            }
        }
        Ok(self.leaf.as_ref().expect("just loaded"))
    }

    /// Advance past any fully-consumed leaf so the cursor either points at
    /// a real entry (at its node's start if the previous node was drained)
    /// or reaches the end. Uses `leaf_ref.count`, so it never decodes the
    /// node being left behind.
    pub fn normalize(&mut self) -> NodeResult<()> {
        while let Some(r) = &self.leaf_ref {
            if (self.entry_idx as u64) < r.count {
                break;
            }
            self.advance_leaf()?;
        }
        Ok(())
    }

    /// Borrow the next entry without consuming it.
    pub fn peek(&mut self) -> NodeResult<Option<&LeafEntry>> {
        loop {
            if self.leaf_ref.is_none() {
                return Ok(None);
            }
            let idx = self.entry_idx;
            let len = self.load_leaf()?.len();
            if idx < len {
                // Double lookup to satisfy the borrow checker cheaply.
                return Ok(self.leaf.as_ref().expect("loaded").get(idx));
            }
            self.advance_leaf()?;
        }
    }

    /// Consume and return the next entry.
    pub fn next_entry(&mut self) -> NodeResult<Option<LeafEntry>> {
        loop {
            if self.leaf_ref.is_none() {
                return Ok(None);
            }
            let idx = self.entry_idx;
            let entries = self.load_leaf()?;
            if idx < entries.len() {
                let e = entries[idx].clone();
                self.entry_idx += 1;
                return Ok(Some(e));
            }
            self.advance_leaf()?;
        }
    }

    /// Move to the next leaf node **without decoding the current one**.
    /// The cursor must be at a leaf (not at end).
    pub fn skip_leaf(&mut self) -> NodeResult<()> {
        let skipped = self
            .leaf_ref
            .as_ref()
            .expect("skip_leaf at end of tree")
            .count;
        self.position_base += skipped;
        // Consume any partial progress accounting: skip_leaf is only legal
        // from the node start (callers splice whole nodes).
        debug_assert!(self.at_leaf_start(), "skip_leaf mid-node");
        self.advance_leaf_inner()
    }

    /// Advance past the (fully consumed) current leaf.
    fn advance_leaf(&mut self) -> NodeResult<()> {
        let consumed = self.leaf_ref.as_ref().expect("advance_leaf at end").count;
        self.position_base += consumed;
        self.advance_leaf_inner()
    }

    fn advance_leaf_inner(&mut self) -> NodeResult<()> {
        self.leaf = None;
        self.leaf_ref = None;
        self.entry_idx = 0;
        // Climb until an ancestor has a next sibling.
        loop {
            let Some(top) = self.path.last_mut() else {
                return Ok(()); // root was a leaf, or tree exhausted
            };
            if top.idx + 1 < top.children.len() {
                top.idx += 1;
                break;
            }
            self.path.pop();
        }
        self.redescend_first()
    }

    /// Walk down from the current path top to the leftmost leaf ref,
    /// loading only interior index nodes (leaves stay lazy).
    fn redescend_first(&mut self) -> NodeResult<()> {
        loop {
            let top = self.path.last().expect("non-empty during descend");
            let child_ref = top.children[top.idx].clone();
            if top.level == 1 {
                self.leaf_ref = Some(child_ref);
                self.leaf = None;
                self.entry_idx = 0;
                return Ok(());
            }
            let child = self.load_node(&child_ref.hash)?;
            match child {
                Node::Index { children, level } => {
                    self.path.push(PathNode {
                        children,
                        idx: 0,
                        hash: child_ref.hash,
                        level,
                    });
                }
                Node::Leaf(_) => {
                    return Err(NodeError::Malformed(
                        "leaf node below an index node of level > 1".into(),
                    ))
                }
            }
        }
    }

    /// Hash of the ancestor node `levels_up` levels above the leaf
    /// (0 = the leaf itself). `None` if no such ancestor exists.
    pub fn ancestor_hash(&self, levels_up: usize) -> Option<Hash> {
        if levels_up == 0 {
            return self.leaf_ref.as_ref().map(|r| r.hash);
        }
        if levels_up > self.path.len() {
            return None;
        }
        Some(self.path[self.path.len() - levels_up].hash)
    }

    /// Whether the cursor sits at the very first entry of the subtree
    /// rooted `levels_up` levels above the leaf.
    pub fn at_start_of_ancestor(&self, levels_up: usize) -> bool {
        if !self.at_leaf_start() || self.leaf_ref.is_none() {
            return false;
        }
        if levels_up > self.path.len() {
            return false;
        }
        let from = self.path.len() - levels_up;
        self.path[from..].iter().all(|p| p.idx == 0)
    }

    /// Number of leaf entries under the ancestor `levels_up` above the leaf.
    pub fn ancestor_count(&self, levels_up: usize) -> Option<u64> {
        if levels_up == 0 {
            return self.leaf_ref.as_ref().map(|r| r.count);
        }
        if levels_up > self.path.len() {
            return None;
        }
        let node = &self.path[self.path.len() - levels_up];
        Some(node.children.iter().map(|c| c.count).sum())
    }

    /// Skip the entire subtree rooted `levels_up` levels above the current
    /// leaf. Requires [`Self::at_start_of_ancestor`]`(levels_up)`.
    pub fn skip_subtree(&mut self, levels_up: usize) -> NodeResult<()> {
        if levels_up == 0 {
            return self.skip_leaf();
        }
        debug_assert!(self.at_start_of_ancestor(levels_up));
        let count = self.ancestor_count(levels_up).expect("ancestor exists");
        self.position_base += count;
        // Drop the path below (and including) the ancestor, then advance.
        let keep = self.path.len() - levels_up;
        self.path.truncate(keep + 1); // keep ancestor itself at top
        self.path.pop(); // remove ancestor: we're skipping it wholesale
                         // Now climb/advance like advance_leaf_inner but from the ancestor's
                         // parent.
        self.leaf = None;
        self.leaf_ref = None;
        self.entry_idx = 0;
        loop {
            let Some(top) = self.path.last_mut() else {
                return Ok(()); // skipped the root's subtree: end of tree
            };
            if top.idx + 1 < top.children.len() {
                top.idx += 1;
                break;
            }
            self.path.pop();
        }
        self.redescend_first()
    }

    /// Decode and return every not-yet-consumed entry of the current leaf,
    /// advancing the cursor to the next leaf node — the chunk-at-a-time
    /// read. Returns `None` at end of tree. Memory cost is one decoded
    /// leaf node, never the whole tree.
    pub fn take_leaf(&mut self) -> NodeResult<Option<Vec<LeafEntry>>> {
        loop {
            if self.leaf_ref.is_none() {
                return Ok(None);
            }
            let idx = self.entry_idx;
            let len = self.load_leaf()?.len();
            if idx < len {
                let entries = self.leaf.as_ref().expect("loaded");
                let out: Vec<LeafEntry> = entries[idx..].to_vec();
                self.advance_leaf()?;
                return Ok(Some(out));
            }
            self.advance_leaf()?;
        }
    }

    /// Collect every remaining entry (test helper; O(N)).
    pub fn drain(&mut self) -> NodeResult<Vec<LeafEntry>> {
        let mut out = Vec::new();
        while let Some(e) = self.next_entry()? {
            out.push(e);
        }
        Ok(out)
    }
}

/// The public streaming cursor over a POS-Tree's leaf entries.
///
/// Where [`LeafCursor`] exposes node-level navigation for the splice and
/// diff machinery, `TreeCursor` is the stable read surface higher layers
/// build scans on: open at the start ([`TreeCursor::new`]) or at a key
/// ([`TreeCursor::seek`]), then pull entries one at a time
/// ([`TreeCursor::next_entry`]) or a whole leaf node at a time
/// ([`TreeCursor::next_leaf`]). Either way the cursor holds at most one
/// decoded leaf in memory — scans over arbitrarily large trees run in
/// O(chunk) space, not O(tree).
pub struct TreeCursor<'s, S> {
    inner: LeafCursor<'s, S>,
}

impl<'s, S: ChunkStore> TreeCursor<'s, S> {
    /// Open a cursor at the first entry of `tree`.
    pub fn new(store: &'s S, tree: TreeRef) -> NodeResult<Self> {
        Ok(TreeCursor {
            inner: LeafCursor::new(store, tree)?,
        })
    }

    /// Open a cursor positioned at the first entry with key ≥ `key`.
    pub fn seek(store: &'s S, tree: TreeRef, key: &[u8]) -> NodeResult<Self> {
        Ok(TreeCursor {
            inner: LeafCursor::seek(store, tree, key)?,
        })
    }

    /// Borrow the next entry without consuming it.
    pub fn peek(&mut self) -> NodeResult<Option<&LeafEntry>> {
        self.inner.peek()
    }

    /// Consume and return the next entry.
    pub fn next_entry(&mut self) -> NodeResult<Option<LeafEntry>> {
        self.inner.next_entry()
    }

    /// Consume and return all remaining entries of the current leaf node
    /// (chunk-at-a-time). `None` at end of tree.
    pub fn next_leaf(&mut self) -> NodeResult<Option<Vec<LeafEntry>>> {
        self.inner.take_leaf()
    }

    /// Number of leaf entries strictly before the cursor position.
    pub fn position(&self) -> u64 {
        self.inner.position()
    }

    /// Whether the cursor has run off the end of the tree.
    pub fn at_end(&self) -> bool {
        self.inner.at_end()
    }

    /// Total nodes decoded so far (complexity accounting).
    pub fn nodes_loaded(&self) -> u64 {
        self.inner.nodes_loaded()
    }
}

enum DescendTo<'a> {
    First,
    Key(&'a [u8]),
}

/// Convenience: the split key of a leaf entry list (used by tests).
pub fn max_key(entries: &[LeafEntry]) -> Bytes {
    entries.last().map(|e| e.key.clone()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;
    use forkbase_chunk::ChunkerConfig;
    use forkbase_store::MemStore;

    fn entry(i: u32) -> LeafEntry {
        LeafEntry::new(
            Bytes::from(format!("key-{i:08}")),
            Bytes::from(format!("value-{i}")),
        )
    }

    fn build(store: &MemStore, n: u32) -> TreeRef {
        let mut b = TreeBuilder::new(store, ChunkerConfig::test_small());
        for i in 0..n {
            b.push(entry(i)).unwrap();
        }
        let t = b.finish().unwrap();
        TreeRef::new(t.hash, t.count)
    }

    #[test]
    fn iterates_all_entries_in_order() {
        let store = MemStore::new();
        let tree = build(&store, 3000);
        let mut cursor = LeafCursor::new(&store, tree).unwrap();
        let all = cursor.drain().unwrap();
        assert_eq!(all.len(), 3000);
        for (i, e) in all.iter().enumerate() {
            assert_eq!(e, &entry(i as u32));
        }
        assert!(cursor.at_end());
        assert_eq!(cursor.position(), 3000);
    }

    #[test]
    fn empty_tree_cursor() {
        let store = MemStore::new();
        let tree = build(&store, 0);
        let mut cursor = LeafCursor::new(&store, tree).unwrap();
        // An empty root leaf still reports a leaf_ref with count 0 until a
        // read walks off the end.
        assert!(cursor.leaf_ref().is_some());
        assert!(cursor.leaf_is_last());
        assert_eq!(cursor.peek().unwrap(), None);
        assert_eq!(cursor.next_entry().unwrap(), None);
        assert!(cursor.at_end());
    }

    #[test]
    fn seek_positions_at_lower_bound() {
        let store = MemStore::new();
        let tree = build(&store, 1000);
        // Exact hit.
        let mut c = LeafCursor::seek(&store, tree, format!("key-{:08}", 500).as_bytes()).unwrap();
        assert_eq!(c.peek().unwrap().unwrap(), &entry(500));
        assert_eq!(c.position(), 500);
        // Between keys: "key-00000500x" sorts after 500, before 501.
        let mut c = LeafCursor::seek(&store, tree, b"key-00000500x").unwrap();
        assert_eq!(c.peek().unwrap().unwrap(), &entry(501));
        // Before everything.
        let mut c = LeafCursor::seek(&store, tree, b"a").unwrap();
        assert_eq!(c.peek().unwrap().unwrap(), &entry(0));
        // After everything.
        let mut c = LeafCursor::seek(&store, tree, b"z").unwrap();
        assert_eq!(c.peek().unwrap(), None);
    }

    #[test]
    fn skip_leaf_matches_entrywise_advance() {
        let store = MemStore::new();
        let tree = build(&store, 2000);
        let mut by_skip = LeafCursor::new(&store, tree).unwrap();
        let mut by_entry = LeafCursor::new(&store, tree).unwrap();
        // Skip the first two leaf nodes on one cursor; advance the same
        // number of entries on the other.
        let n1 = by_skip.leaf_ref().unwrap().count;
        by_skip.skip_leaf().unwrap();
        let n2 = by_skip.leaf_ref().unwrap().count;
        by_skip.skip_leaf().unwrap();
        for _ in 0..(n1 + n2) {
            by_entry.next_entry().unwrap().unwrap();
        }
        assert_eq!(by_skip.position(), by_entry.position());
        assert_eq!(
            by_skip.peek().unwrap().cloned(),
            by_entry.peek().unwrap().cloned()
        );
    }

    #[test]
    fn leaf_is_last_detection() {
        let store = MemStore::new();
        let tree = build(&store, 2000);
        let mut c = LeafCursor::new(&store, tree).unwrap();
        assert!(!c.leaf_is_last(), "first leaf of a big tree is not last");
        // Walk to the end.
        let mut last_flag_seen = false;
        while c.leaf_ref().is_some() {
            if c.leaf_is_last() {
                last_flag_seen = true;
                // Everything after this point stays within the final leaf.
                let count = c.leaf_ref().unwrap().count;
                for _ in 0..count {
                    assert!(c.next_entry().unwrap().is_some());
                }
                assert!(c.next_entry().unwrap().is_none());
                break;
            }
            c.skip_leaf().unwrap();
        }
        assert!(last_flag_seen);
    }

    #[test]
    fn ancestor_alignment_and_skip() {
        let store = MemStore::new();
        let tree = build(&store, 5000);
        let mut c = LeafCursor::new(&store, tree).unwrap();
        // At the very start, the cursor is aligned with every ancestor.
        assert!(c.at_start_of_ancestor(0));
        let height = {
            let root = Node::load(&store, &tree.root).unwrap();
            root.level() as usize
        };
        assert!(height >= 2);
        assert!(c.at_start_of_ancestor(height), "aligned with root");
        assert_eq!(c.ancestor_count(height), Some(5000));
        assert_eq!(c.ancestor_hash(height), Some(tree.root));

        // Skip the first level-1 subtree and check position advanced by its
        // count while a fresh cursor agrees on the entry.
        let sub_count = c.ancestor_count(1).unwrap();
        c.skip_subtree(1).unwrap();
        assert_eq!(c.position(), sub_count);
        let mut fresh = LeafCursor::new(&store, tree).unwrap();
        for _ in 0..sub_count {
            fresh.next_entry().unwrap().unwrap();
        }
        assert_eq!(c.peek().unwrap().cloned(), fresh.peek().unwrap().cloned());
    }

    #[test]
    fn skip_root_subtree_exhausts() {
        let store = MemStore::new();
        let tree = build(&store, 5000);
        let mut c = LeafCursor::new(&store, tree).unwrap();
        let height = Node::load(&store, &tree.root).unwrap().level() as usize;
        c.skip_subtree(height).unwrap();
        assert!(c.at_end());
        assert_eq!(c.position(), 5000);
    }

    #[test]
    fn mid_leaf_is_not_aligned() {
        let store = MemStore::new();
        let tree = build(&store, 2000);
        let mut c = LeafCursor::new(&store, tree).unwrap();
        c.next_entry().unwrap().unwrap();
        assert!(!c.at_leaf_start());
        assert!(!c.at_start_of_ancestor(0));
        assert!(!c.at_start_of_ancestor(1));
    }

    #[test]
    fn tree_cursor_leaf_at_a_time_matches_entrywise() {
        let store = MemStore::new();
        let tree = build(&store, 3000);
        let mut by_leaf = TreeCursor::new(&store, tree).unwrap();
        let mut by_entry = TreeCursor::new(&store, tree).unwrap();
        let mut leaves = 0usize;
        while let Some(chunk) = by_leaf.next_leaf().unwrap() {
            assert!(!chunk.is_empty());
            leaves += 1;
            for e in chunk {
                assert_eq!(Some(e), by_entry.next_entry().unwrap());
            }
            assert_eq!(by_leaf.position(), by_entry.position());
        }
        assert!(leaves > 1, "3000 entries span multiple leaves");
        assert_eq!(by_entry.next_entry().unwrap(), None);
        assert_eq!(by_leaf.position(), 3000);
    }

    #[test]
    fn tree_cursor_seek_then_next_leaf() {
        let store = MemStore::new();
        let tree = build(&store, 2000);
        // Seek mid-tree: the first returned leaf starts exactly at the
        // sought entry, not at its node's start.
        let mut c = TreeCursor::seek(&store, tree, format!("key-{:08}", 777).as_bytes()).unwrap();
        assert_eq!(c.position(), 777);
        let chunk = c.next_leaf().unwrap().unwrap();
        assert_eq!(chunk[0], entry(777));
        // Draining the rest yields every remaining entry in order.
        let mut next = 777 + chunk.len() as u32;
        while let Some(chunk) = c.next_leaf().unwrap() {
            for e in chunk {
                assert_eq!(e, entry(next));
                next += 1;
            }
        }
        assert_eq!(next, 2000);
    }

    #[test]
    fn node_loads_are_counted() {
        let store = MemStore::new();
        let tree = build(&store, 2000);
        let mut c = LeafCursor::new(&store, tree).unwrap();
        let initial = c.nodes_loaded();
        assert!(initial >= 2, "root + first leaf at least");
        c.drain().unwrap();
        assert!(c.nodes_loaded() > initial);
    }
}
