//! `PosBlob`: large byte strings as POS-Trees.
//!
//! Blob content is sliced by the byte-granularity chunker into raw data
//! chunks (Fig. 2 "Data Chunk" — stored without any header so equal byte
//! runs dedup across *all* blobs), and an index tree of `(hash, byte
//! count)` entries is built above them with the node chunker. Loading two near-identical
//! CSV files therefore shares almost every chunk — the Fig. 4
//! demonstration.

use bytes::Bytes;
use forkbase_crypto::{sha256, Hash};
use forkbase_store::ChunkStore;

use crate::builder::TreeBuilder;
use crate::node::{IndexEntry, Node, NodeError, NodeResult, TreeConfig};

/// Reference to a stored blob.
///
/// `depth` disambiguates the root: `0` means `root` addresses a raw data
/// chunk (small blobs), otherwise an index node of that height.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlobRef {
    /// Content address of the root (raw chunk or index node).
    pub root: Hash,
    /// Total byte length.
    pub len: u64,
    /// Height of the root above the raw chunks.
    pub depth: u8,
}

/// Handle for reading and writing blobs.
pub struct PosBlob<'s, S> {
    store: &'s S,
    cfg: TreeConfig,
}

impl<'s, S: ChunkStore> PosBlob<'s, S> {
    /// Create a blob accessor over `store`.
    pub fn new(store: &'s S, cfg: TreeConfig) -> Self {
        PosBlob { store, cfg }
    }

    /// Write `content`, returning its reference. Identical content always
    /// produces the identical reference (and zero new chunks).
    ///
    /// Copies `content` once into a shared buffer and delegates to the
    /// zero-copy [`write_bytes`](Self::write_bytes); callers that already
    /// hold a [`Bytes`] should use that directly and skip the copy.
    pub fn write(&self, content: &[u8]) -> NodeResult<BlobRef> {
        self.write_bytes(Bytes::copy_from_slice(content))
    }

    /// Write `content` without copying: chunk boundaries are found with the
    /// bulk slice scanner and each chunk is handed to the store as a
    /// [`Bytes::slice`] view into `content` — the ingestion path itself
    /// performs no per-chunk copies. (A retaining store may still choose to
    /// compact a chunk it keeps in memory, so that a deduplicated write —
    /// where only a few slices survive — cannot pin the whole input
    /// buffer; see `Bytes::compact`.)
    pub fn write_bytes(&self, content: Bytes) -> NodeResult<BlobRef> {
        if content.is_empty() {
            let hash = sha256(b"");
            self.store.put_with_hash(hash, Bytes::new())?;
            return Ok(BlobRef {
                root: hash,
                len: 0,
                depth: 0,
            });
        }
        let mut builder = TreeBuilder::new(self.store, self.cfg.node);
        let mut chunker = forkbase_chunk::ByteChunker::new(self.cfg.data);
        let mut pos = 0usize;
        while let Some(off) = chunker.next_boundary(&content[pos..]) {
            self.put_chunk(&mut builder, content.slice(pos..pos + off))?;
            pos += off;
        }
        if pos < content.len() {
            self.put_chunk(&mut builder, content.slice(pos..))?;
        }
        let finished = builder.finish()?;
        Ok(BlobRef {
            root: finished.hash,
            len: finished.count,
            depth: finished.level,
        })
    }

    fn put_chunk(&self, builder: &mut TreeBuilder<'s, S>, chunk: Bytes) -> NodeResult<()> {
        let hash = sha256(&chunk);
        let len = chunk.len() as u64;
        // Stage rather than store: data chunks and the index nodes above
        // them land in the store in batched round-trips, flushed at the
        // builder's threshold and finally by `finish`.
        builder.stage_chunk(hash, chunk)?;
        builder.append_leaf_node(IndexEntry::new(Bytes::new(), hash, len))
    }

    /// Read the whole blob.
    pub fn read_all(&self, blob: &BlobRef) -> NodeResult<Vec<u8>> {
        let mut out = Vec::with_capacity(blob.len as usize);
        self.walk_chunks(blob, &mut |bytes| {
            out.extend_from_slice(bytes);
        })?;
        if out.len() as u64 != blob.len {
            return Err(NodeError::Malformed(format!(
                "blob length {} does not match content {}",
                blob.len,
                out.len()
            )));
        }
        Ok(out)
    }

    /// Read `len` bytes starting at `offset` (clamped to the blob's end).
    pub fn read_range(&self, blob: &BlobRef, offset: u64, len: u64) -> NodeResult<Vec<u8>> {
        let end = (offset + len).min(blob.len);
        if offset >= end {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity((end - offset) as usize);
        self.read_range_inner(&blob.root, blob.depth, offset, end, &mut out)?;
        Ok(out)
    }

    fn read_range_inner(
        &self,
        root: &Hash,
        depth: u8,
        start: u64,
        end: u64,
        out: &mut Vec<u8>,
    ) -> NodeResult<()> {
        if depth == 0 {
            let bytes = self.get_chunk(root)?;
            let s = start.min(bytes.len() as u64) as usize;
            let e = end.min(bytes.len() as u64) as usize;
            out.extend_from_slice(&bytes[s..e]);
            return Ok(());
        }
        let node = Node::load(self.store, root)?;
        let Node::Index { children, .. } = node else {
            return Err(NodeError::Malformed("expected blob index node".into()));
        };
        let mut offset = 0u64;
        for c in &children {
            let c_start = offset;
            let c_end = offset + c.count;
            if c_end > start && c_start < end {
                let local_start = start.saturating_sub(c_start);
                let local_end = (end - c_start).min(c.count);
                self.read_range_inner(&c.hash, depth - 1, local_start, local_end, out)?;
            }
            offset = c_end;
            if offset >= end {
                break;
            }
        }
        Ok(())
    }

    fn get_chunk(&self, hash: &Hash) -> NodeResult<Bytes> {
        fetch_verified(self.store, hash)
    }

    /// Open a streaming cursor over the blob's raw data chunks.
    pub fn cursor(&self, blob: &BlobRef) -> NodeResult<BlobCursor<'s, S>> {
        BlobCursor::new(self.store, blob)
    }

    /// Invoke `f` with each raw chunk in order.
    pub fn walk_chunks(&self, blob: &BlobRef, f: &mut impl FnMut(&[u8])) -> NodeResult<()> {
        self.walk_inner(&blob.root, blob.depth, f)
    }

    fn walk_inner(&self, root: &Hash, depth: u8, f: &mut impl FnMut(&[u8])) -> NodeResult<()> {
        if depth == 0 {
            let bytes = self.get_chunk(root)?;
            f(&bytes);
            return Ok(());
        }
        let node = Node::load(self.store, root)?;
        let Node::Index { children, level } = node else {
            return Err(NodeError::Malformed("expected blob index node".into()));
        };
        if level != depth {
            return Err(NodeError::Malformed(format!(
                "blob index level {level} != expected depth {depth}"
            )));
        }
        for c in &children {
            self.walk_inner(&c.hash, depth - 1, f)?;
        }
        Ok(())
    }

    /// The `(hash, len)` list of raw chunks — the unit of deduplication.
    pub fn chunk_refs(&self, blob: &BlobRef) -> NodeResult<Vec<(Hash, u64)>> {
        let mut out = Vec::new();
        self.chunk_refs_inner(&blob.root, blob.depth, &mut out)?;
        Ok(out)
    }

    fn chunk_refs_inner(
        &self,
        root: &Hash,
        depth: u8,
        out: &mut Vec<(Hash, u64)>,
    ) -> NodeResult<()> {
        if depth == 0 {
            // Length unknown without fetching for the root-only case; the
            // caller knows it from BlobRef. Fetch to stay self-contained.
            let bytes = self.get_chunk(root)?;
            out.push((*root, bytes.len() as u64));
            return Ok(());
        }
        let node = Node::load(self.store, root)?;
        let Node::Index { children, .. } = node else {
            return Err(NodeError::Malformed("expected blob index node".into()));
        };
        for c in &children {
            if depth == 1 {
                out.push((c.hash, c.count));
            } else {
                self.chunk_refs_inner(&c.hash, depth - 1, out)?;
            }
        }
        Ok(())
    }

    /// Chunk-level similarity of two blobs: `(shared_chunks, shared_bytes)`
    /// counted over `a`'s chunks that also appear in `b`. Drives the
    /// dedup-measurement experiments.
    pub fn shared_chunks(&self, a: &BlobRef, b: &BlobRef) -> NodeResult<(u64, u64)> {
        let refs_a = self.chunk_refs(a)?;
        let set_b: std::collections::HashSet<Hash> =
            self.chunk_refs(b)?.into_iter().map(|(h, _)| h).collect();
        let mut chunks = 0u64;
        let mut bytes = 0u64;
        for (h, len) in refs_a {
            if set_b.contains(&h) {
                chunks += 1;
                bytes += len;
            }
        }
        Ok((chunks, bytes))
    }

    /// Verify blob integrity: every chunk authenticates and lengths add up.
    pub fn verify(&self, blob: &BlobRef) -> NodeResult<u64> {
        let mut total = 0u64;
        self.walk_chunks(blob, &mut |bytes| {
            total += bytes.len() as u64;
        })?;
        if total != blob.len {
            return Err(NodeError::Malformed(format!(
                "blob length mismatch: ref says {}, chunks total {total}",
                blob.len
            )));
        }
        Ok(total)
    }
}

/// Fetch a chunk and verify it hashes back to its address.
fn fetch_verified<S: ChunkStore>(store: &S, hash: &Hash) -> NodeResult<Bytes> {
    let bytes = store.get(hash)?.ok_or(NodeError::Missing(*hash))?;
    let actual = sha256(&bytes);
    if actual != *hash {
        return Err(NodeError::HashMismatch {
            expected: *hash,
            actual,
        });
    }
    Ok(bytes)
}

/// One frame of a [`BlobCursor`]'s descent: the children of an index node,
/// the next child to visit, and the node's depth above the raw chunks.
struct BlobFrame {
    children: Vec<IndexEntry>,
    idx: usize,
    depth: u8,
}

/// A streaming cursor over a blob's raw data chunks, in order.
///
/// Unlike [`PosBlob::read_all`] (which materializes the whole value) or
/// [`PosBlob::walk_chunks`] (callback-driven), the cursor is a pull
/// interface: each [`BlobCursor::next_chunk`] call fetches, verifies, and
/// hands back exactly one data chunk. Memory held between calls is the
/// root→leaf index path — O(log N) index nodes — never the blob content,
/// which is what lets `Snapshot::blob_reader` stream a 64 MiB blob
/// through a fixed-size buffer.
pub struct BlobCursor<'s, S> {
    store: &'s S,
    stack: Vec<BlobFrame>,
    /// Depth-0 blob: the root *is* the single raw chunk, pending until the
    /// first `next_chunk`.
    pending_root: Option<Hash>,
}

impl<'s, S: ChunkStore> BlobCursor<'s, S> {
    /// Open a cursor at the first chunk of `blob`.
    pub fn new(store: &'s S, blob: &BlobRef) -> NodeResult<Self> {
        let mut cursor = BlobCursor {
            store,
            stack: Vec::new(),
            pending_root: None,
        };
        if blob.depth == 0 {
            cursor.pending_root = Some(blob.root);
        } else {
            cursor.push_index(&blob.root, blob.depth)?;
        }
        Ok(cursor)
    }

    fn push_index(&mut self, hash: &Hash, depth: u8) -> NodeResult<()> {
        let node = Node::load(self.store, hash)?;
        let Node::Index { children, level } = node else {
            return Err(NodeError::Malformed("expected blob index node".into()));
        };
        if level != depth {
            return Err(NodeError::Malformed(format!(
                "blob index level {level} != expected depth {depth}"
            )));
        }
        self.stack.push(BlobFrame {
            children,
            idx: 0,
            depth,
        });
        Ok(())
    }

    /// Fetch, verify, and return the next raw data chunk, or `None` when
    /// the blob is exhausted.
    pub fn next_chunk(&mut self) -> NodeResult<Option<Bytes>> {
        if let Some(root) = self.pending_root.take() {
            return fetch_verified(self.store, &root).map(Some);
        }
        loop {
            let Some(top) = self.stack.last_mut() else {
                return Ok(None);
            };
            if top.idx == top.children.len() {
                self.stack.pop();
                continue;
            }
            let child = top.children[top.idx].clone();
            top.idx += 1;
            if top.depth == 1 {
                return fetch_verified(self.store, &child.hash).map(Some);
            }
            let depth = top.depth - 1;
            self.push_index(&child.hash, depth)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_store::{ChunkStore, FaultMode, FaultyStore, MemStore};

    fn cfg() -> TreeConfig {
        TreeConfig::test_config()
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut s = seed | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s & 0xff) as u8
            })
            .collect()
    }

    #[test]
    fn empty_blob() {
        let store = MemStore::new();
        let blob = PosBlob::new(&store, cfg());
        let r = blob.write(b"").unwrap();
        assert_eq!(r.len, 0);
        assert_eq!(blob.read_all(&r).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn small_blob_single_chunk() {
        let store = MemStore::new();
        let blob = PosBlob::new(&store, cfg());
        let r = blob.write(b"tiny").unwrap();
        assert_eq!(r.depth, 0);
        assert_eq!(r.len, 4);
        assert_eq!(blob.read_all(&r).unwrap(), b"tiny");
    }

    #[test]
    fn large_blob_roundtrip() {
        let store = MemStore::new();
        let blob = PosBlob::new(&store, cfg());
        let content = pseudo_random(200_000, 42);
        let r = blob.write(&content).unwrap();
        assert!(r.depth >= 1);
        assert_eq!(r.len, 200_000);
        assert_eq!(blob.read_all(&r).unwrap(), content);
        assert_eq!(blob.verify(&r).unwrap(), 200_000);
    }

    #[test]
    fn read_range() {
        let store = MemStore::new();
        let blob = PosBlob::new(&store, cfg());
        let content = pseudo_random(50_000, 7);
        let r = blob.write(&content).unwrap();
        for (off, len) in [(0u64, 10u64), (25_000, 1000), (49_990, 100), (50_000, 5)] {
            let got = blob.read_range(&r, off, len).unwrap();
            let end = ((off + len) as usize).min(content.len());
            let want = &content[(off as usize).min(content.len())..end];
            assert_eq!(got, want, "range ({off}, {len})");
        }
    }

    #[test]
    fn identical_content_identical_ref_no_new_chunks() {
        let store = MemStore::new();
        let blob = PosBlob::new(&store, cfg());
        let content = pseudo_random(100_000, 3);
        let r1 = blob.write(&content).unwrap();
        let chunks = store.chunk_count();
        let r2 = blob.write(&content).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(store.chunk_count(), chunks);
    }

    #[test]
    fn near_identical_blobs_share_chunks_fig4() {
        // The Fig. 4 behaviour: a one-word edit in a large file must cost
        // only a sliver of new storage.
        let store = MemStore::new();
        let blob = PosBlob::new(&store, cfg());
        let original = pseudo_random(300_000, 99);
        let mut edited = original.clone();
        for b in &mut edited[150_000..150_005] {
            *b ^= 0x55;
        }
        let r1 = blob.write(&original).unwrap();
        let bytes_after_first = store.stored_bytes();
        let r2 = blob.write(&edited).unwrap();
        let delta = store.stored_bytes() - bytes_after_first;
        assert!(
            delta < bytes_after_first / 20,
            "second load added {delta} of {bytes_after_first} bytes — dedup failed"
        );
        let (_, shared_bytes) = blob.shared_chunks(&r1, &r2).unwrap();
        assert!(shared_bytes as f64 > 0.9 * original.len() as f64);
    }

    #[test]
    fn chunk_refs_cover_content() {
        let store = MemStore::new();
        let blob = PosBlob::new(&store, cfg());
        let content = pseudo_random(80_000, 5);
        let r = blob.write(&content).unwrap();
        let refs = blob.chunk_refs(&r).unwrap();
        assert!(refs.len() > 1);
        assert_eq!(refs.iter().map(|(_, l)| l).sum::<u64>(), 80_000);
    }

    #[test]
    fn tampered_chunk_detected_on_read() {
        let inner = MemStore::new();
        let content = pseudo_random(60_000, 11);
        let r = {
            let blob = PosBlob::new(&inner, cfg());
            blob.write(&content).unwrap()
        };
        let store = FaultyStore::new(inner);
        let blob = PosBlob::new(&store, cfg());
        let refs = blob.chunk_refs(&r).unwrap();
        let victim = refs[refs.len() / 2].0;
        store.inject(victim, FaultMode::FlipBit { byte: 3 });
        match blob.read_all(&r) {
            Err(NodeError::HashMismatch { .. }) => {}
            other => panic!(
                "tampering must be detected, got {:?}",
                other.map(|v| v.len())
            ),
        }
    }

    #[test]
    fn cursor_streams_chunks_in_order() {
        let store = MemStore::new();
        let blob = PosBlob::new(&store, cfg());
        for len in [0usize, 4, 50_000, 200_000] {
            let content = pseudo_random(len, len as u64 + 1);
            let r = blob.write(&content).unwrap();
            let mut cursor = blob.cursor(&r).unwrap();
            let mut streamed = Vec::new();
            while let Some(chunk) = cursor.next_chunk().unwrap() {
                streamed.extend_from_slice(&chunk);
            }
            assert_eq!(streamed, content, "len {len}");
            assert!(cursor.next_chunk().unwrap().is_none(), "stays exhausted");
        }
    }

    #[test]
    fn cursor_detects_tampered_chunk() {
        let inner = MemStore::new();
        let content = pseudo_random(60_000, 13);
        let r = {
            let blob = PosBlob::new(&inner, cfg());
            blob.write(&content).unwrap()
        };
        let store = FaultyStore::new(inner);
        let blob = PosBlob::new(&store, cfg());
        let refs = blob.chunk_refs(&r).unwrap();
        store.inject(refs[refs.len() / 2].0, FaultMode::FlipBit { byte: 1 });
        let mut cursor = blob.cursor(&r).unwrap();
        let mut result = Ok(());
        loop {
            match cursor.next_chunk() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        assert!(
            matches!(result, Err(NodeError::HashMismatch { .. })),
            "tampering must surface mid-stream"
        );
    }

    #[test]
    fn verify_rejects_wrong_length() {
        let store = MemStore::new();
        let blob = PosBlob::new(&store, cfg());
        let r = blob.write(&pseudo_random(10_000, 2)).unwrap();
        let lying = BlobRef {
            len: r.len + 1,
            ..r
        };
        assert!(blob.verify(&lying).is_err());
    }
}
