//! POS-Tree node representation and canonical codec.
//!
//! A node is the unit of storage and deduplication (one node = one chunk =
//! one page, Fig. 2). Two kinds exist:
//!
//! * **leaf** — holds the data entries `(key, value)`; sequence trees use
//!   empty keys and navigate by position.
//! * **index** — holds one entry per child: the child's *split key* (the
//!   maximum key in its subtree), its content hash, and the number of leaf
//!   entries below it. The hash makes the tree Merkle; the count enables
//!   positional navigation and `O(log N)` size queries.
//!
//! Blob leaves are *raw* byte chunks with no header — this lets two blobs
//! share chunks with maximal granularity — and are handled by the
//! [`crate::blob`] module directly.

use bytes::Bytes;
use forkbase_crypto::{sha256, Hash};
use forkbase_store::{ChunkStore, StoreError};

use forkbase_chunk::ChunkerConfig;

use crate::encoding::{put_bytes, put_u32, put_u64, DecodeError, Reader};

/// First byte of every encoded (non-blob-leaf) node.
pub const NODE_MAGIC: u8 = b'N';

/// `kind` byte values.
const KIND_LEAF: u8 = 0;
const KIND_INDEX: u8 = 1;

/// Chunking parameters for a tree family.
///
/// All instances that should share pages must use identical configs — the
/// config is part of the logical format, like the hash function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeConfig {
    /// Chunker for node (page) boundaries: applies to leaf-entry streams
    /// and index-entry streams alike.
    pub node: ChunkerConfig,
    /// Chunker for blob byte content.
    pub data: ChunkerConfig,
}

impl TreeConfig {
    /// Production defaults (~4 KiB pages and data chunks).
    pub fn default_config() -> Self {
        TreeConfig {
            node: ChunkerConfig::node_default(),
            data: ChunkerConfig::data_default(),
        }
    }

    /// Small chunks so unit tests exercise multi-level trees cheaply.
    pub fn test_config() -> Self {
        TreeConfig {
            node: ChunkerConfig::test_small(),
            data: ChunkerConfig::test_small(),
        }
    }
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// A leaf entry: key/value byte strings. Sequence trees use empty keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafEntry {
    /// Ordering key (empty for positional trees).
    pub key: Bytes,
    /// Payload.
    pub value: Bytes,
}

impl LeafEntry {
    /// Construct an entry.
    pub fn new(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        LeafEntry {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Canonical encoding appended to `out`; this exact byte stream also
    /// feeds the chunker, so it *is* the page-boundary input.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_bytes(out, &self.key);
        put_bytes(out, &self.value);
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + self.key.len() + self.value.len()
    }
}

/// An index entry referencing one child node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Maximum key in the child's subtree (empty for positional trees).
    pub split_key: Bytes,
    /// Content hash of the child node.
    pub hash: Hash,
    /// Number of leaf entries in the child's subtree.
    pub count: u64,
}

impl IndexEntry {
    /// Construct an index entry.
    pub fn new(split_key: impl Into<Bytes>, hash: Hash, count: u64) -> Self {
        IndexEntry {
            split_key: split_key.into(),
            hash,
            count,
        }
    }

    /// Canonical encoding appended to `out` (also the chunker input at
    /// index levels).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_bytes(out, &self.split_key);
        out.extend_from_slice(self.hash.as_bytes());
        put_u64(out, self.count);
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + self.split_key.len() + 32 + 8
    }
}

/// A decoded POS-Tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// Level-0 node holding data entries.
    Leaf(Vec<LeafEntry>),
    /// Level ≥ 1 node holding child references. `level` is the height of
    /// this node above the leaves (1 = children are leaves).
    Index {
        /// Height above leaf level (≥ 1).
        level: u8,
        /// Child references in key order.
        children: Vec<IndexEntry>,
    },
}

/// Errors from node codec and store access.
#[derive(Debug)]
pub enum NodeError {
    /// The chunk store failed.
    Store(StoreError),
    /// A referenced chunk is absent from the store.
    Missing(Hash),
    /// Chunk bytes do not parse as a node.
    Decode(DecodeError),
    /// Chunk bytes parse but violate node invariants.
    Malformed(String),
    /// Fetched bytes do not hash to the requested address (tampering or
    /// corruption detected end-to-end).
    HashMismatch {
        /// Requested address.
        expected: Hash,
        /// Hash of the bytes received.
        actual: Hash,
    },
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Store(e) => write!(f, "store error: {e}"),
            NodeError::Missing(h) => write!(f, "missing chunk {h:?}"),
            NodeError::Decode(e) => write!(f, "node decode error: {e}"),
            NodeError::Malformed(m) => write!(f, "malformed node: {m}"),
            NodeError::HashMismatch { expected, actual } => {
                write!(f, "hash mismatch: expected {expected:?}, got {actual:?}")
            }
        }
    }
}

impl std::error::Error for NodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NodeError::Store(e) => Some(e),
            NodeError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for NodeError {
    fn from(e: StoreError) -> Self {
        NodeError::Store(e)
    }
}

impl From<DecodeError> for NodeError {
    fn from(e: DecodeError) -> Self {
        NodeError::Decode(e)
    }
}

/// Result alias for node operations.
pub type NodeResult<T> = Result<T, NodeError>;

impl Node {
    /// Height above the leaves: 0 for leaf nodes.
    pub fn level(&self) -> u8 {
        match self {
            Node::Leaf(_) => 0,
            Node::Index { level, .. } => *level,
        }
    }

    /// Number of entries in this node (not the subtree).
    pub fn entry_count(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Index { children, .. } => children.len(),
        }
    }

    /// Number of leaf entries in the whole subtree rooted here.
    pub fn subtree_count(&self) -> u64 {
        match self {
            Node::Leaf(e) => e.len() as u64,
            Node::Index { children, .. } => children.iter().map(|c| c.count).sum(),
        }
    }

    /// Maximum key in the subtree (`None` for an empty leaf).
    pub fn split_key(&self) -> Option<Bytes> {
        match self {
            Node::Leaf(e) => e.last().map(|x| x.key.clone()),
            Node::Index { children, .. } => children.last().map(|c| c.split_key.clone()),
        }
    }

    /// Canonical encoding: `magic | kind | level | n | entries…`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_size_hint());
        out.push(NODE_MAGIC);
        match self {
            Node::Leaf(entries) => {
                out.push(KIND_LEAF);
                out.push(0u8);
                put_u32(&mut out, entries.len() as u32);
                for e in entries {
                    e.encode_into(&mut out);
                }
            }
            Node::Index { level, children } => {
                out.push(KIND_INDEX);
                out.push(*level);
                put_u32(&mut out, children.len() as u32);
                for c in children {
                    c.encode_into(&mut out);
                }
            }
        }
        out
    }

    fn encoded_size_hint(&self) -> usize {
        7 + match self {
            Node::Leaf(entries) => entries.iter().map(LeafEntry::encoded_len).sum::<usize>(),
            Node::Index { children, .. } => {
                children.iter().map(IndexEntry::encoded_len).sum::<usize>()
            }
        }
    }

    /// Decode a node from chunk bytes, validating structural invariants.
    pub fn decode(bytes: &[u8]) -> NodeResult<Node> {
        let mut r = Reader::new(bytes);
        let magic = r.u8("magic")?;
        if magic != NODE_MAGIC {
            return Err(NodeError::Malformed(format!(
                "bad magic byte 0x{magic:02x}"
            )));
        }
        let kind = r.u8("kind")?;
        let level = r.u8("level")?;
        let n = r.u32("entry count")? as usize;
        let node = match kind {
            KIND_LEAF => {
                if level != 0 {
                    return Err(NodeError::Malformed(format!(
                        "leaf node with nonzero level {level}"
                    )));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = r.bytes_owned("leaf key")?;
                    let value = r.bytes_owned("leaf value")?;
                    entries.push(LeafEntry { key, value });
                }
                Node::Leaf(entries)
            }
            KIND_INDEX => {
                if level == 0 {
                    return Err(NodeError::Malformed("index node with level 0".into()));
                }
                let mut children = Vec::with_capacity(n);
                for _ in 0..n {
                    let split_key = r.bytes_owned("split key")?;
                    let hash_bytes = r.raw(32, "child hash")?;
                    let hash = Hash::from_slice(hash_bytes).expect("32 bytes");
                    let count = r.u64("child count")?;
                    children.push(IndexEntry {
                        split_key,
                        hash,
                        count,
                    });
                }
                if children.is_empty() {
                    return Err(NodeError::Malformed("index node with no children".into()));
                }
                Node::Index { level, children }
            }
            other => {
                return Err(NodeError::Malformed(format!("unknown node kind {other}")));
            }
        };
        if !r.is_empty() {
            return Err(NodeError::Malformed(format!(
                "{} trailing bytes after node",
                r.remaining()
            )));
        }
        Ok(node)
    }

    /// Encode, hash, and persist this node. Returns its content address.
    pub fn store<S: ChunkStore>(&self, store: &S) -> NodeResult<Hash> {
        let bytes = self.encode();
        let hash = sha256(&bytes);
        store.put_with_hash(hash, Bytes::from(bytes))?;
        Ok(hash)
    }

    /// Fetch and decode the node at `hash`, verifying content integrity
    /// end-to-end (the fetched bytes must hash back to `hash` — this is the
    /// per-node tamper check of §II-D).
    pub fn load<S: ChunkStore>(store: &S, hash: &Hash) -> NodeResult<Node> {
        let bytes = store.get(hash)?.ok_or(NodeError::Missing(*hash))?;
        let actual = sha256(&bytes);
        if actual != *hash {
            return Err(NodeError::HashMismatch {
                expected: *hash,
                actual,
            });
        }
        Node::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_store::{FaultMode, FaultyStore, MemStore};

    fn leaf(entries: &[(&str, &str)]) -> Node {
        Node::Leaf(
            entries
                .iter()
                .map(|(k, v)| LeafEntry::new(k.as_bytes().to_vec(), v.as_bytes().to_vec()))
                .collect(),
        )
    }

    #[test]
    fn leaf_roundtrip() {
        let node = leaf(&[("alpha", "1"), ("beta", "2"), ("gamma", "")]);
        let decoded = Node::decode(&node.encode()).unwrap();
        assert_eq!(decoded, node);
        assert_eq!(decoded.level(), 0);
        assert_eq!(decoded.entry_count(), 3);
        assert_eq!(decoded.subtree_count(), 3);
        assert_eq!(decoded.split_key().unwrap(), Bytes::from_static(b"gamma"));
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let node = Node::Leaf(vec![]);
        let decoded = Node::decode(&node.encode()).unwrap();
        assert_eq!(decoded, node);
        assert_eq!(decoded.split_key(), None);
    }

    #[test]
    fn index_roundtrip() {
        let node = Node::Index {
            level: 2,
            children: vec![
                IndexEntry::new(&b"m"[..], sha256(b"child1"), 10),
                IndexEntry::new(&b"z"[..], sha256(b"child2"), 7),
            ],
        };
        let decoded = Node::decode(&node.encode()).unwrap();
        assert_eq!(decoded, node);
        assert_eq!(decoded.level(), 2);
        assert_eq!(decoded.subtree_count(), 17);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            Node::decode(b"not a node"),
            Err(NodeError::Malformed(_))
        ));
        assert!(matches!(Node::decode(b""), Err(NodeError::Decode(_))));
        // Truncated entry.
        let mut bytes = leaf(&[("k", "v")]).encode();
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(Node::decode(&bytes), Err(NodeError::Decode(_))));
        // Trailing junk.
        let mut bytes = leaf(&[("k", "v")]).encode();
        bytes.push(0);
        assert!(matches!(Node::decode(&bytes), Err(NodeError::Malformed(_))));
    }

    #[test]
    fn decode_rejects_inconsistent_kind_level() {
        let mut bytes = leaf(&[("k", "v")]).encode();
        bytes[2] = 3; // leaf with level 3
        assert!(matches!(Node::decode(&bytes), Err(NodeError::Malformed(_))));

        let idx = Node::Index {
            level: 1,
            children: vec![IndexEntry::new(&b"k"[..], sha256(b"c"), 1)],
        };
        let mut bytes = idx.encode();
        bytes[2] = 0; // index with level 0
        assert!(matches!(Node::decode(&bytes), Err(NodeError::Malformed(_))));
    }

    #[test]
    fn store_load_roundtrip() {
        let store = MemStore::new();
        let node = leaf(&[("x", "1")]);
        let h = node.store(&store).unwrap();
        assert_eq!(Node::load(&store, &h).unwrap(), node);
        assert!(matches!(
            Node::load(&store, &sha256(b"absent")),
            Err(NodeError::Missing(_))
        ));
    }

    #[test]
    fn identical_nodes_dedup() {
        let store = MemStore::new();
        let a = leaf(&[("k", "v")]).store(&store).unwrap();
        let b = leaf(&[("k", "v")]).store(&store).unwrap();
        assert_eq!(a, b);
        assert_eq!(store.chunk_count(), 1);
    }

    #[test]
    fn load_detects_tampering() {
        let inner = MemStore::new();
        let node = leaf(&[("secret", "value")]);
        let h = node.store(&inner).unwrap();
        let store = FaultyStore::new(inner);
        store.inject(h, FaultMode::FlipBit { byte: 10 });
        match Node::load(&store, &h) {
            Err(NodeError::HashMismatch { expected, .. }) => assert_eq!(expected, h),
            other => panic!("expected HashMismatch, got {other:?}"),
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = leaf(&[("a", "1"), ("b", "2")]);
        let b = leaf(&[("a", "1"), ("b", "2")]);
        assert_eq!(a.encode(), b.encode());
        assert_eq!(sha256(&a.encode()), sha256(&b.encode()));
    }
}
