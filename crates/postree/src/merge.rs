//! Three-way merge of POS-Tree maps (paper §II-B, Fig. 3).
//!
//! Merging objects `A` and `B` against common base `C`:
//!
//! 1. **diff phase** — `ΔA = diff(C, A)` and `ΔB = diff(C, B)`, each
//!    `O(D log N)` thanks to sub-tree pruning;
//! 2. **merge phase** — apply `ΔB` onto `A` with the splice-based
//!    [`crate::map::PosMap::apply`], which *re-uses every sub-tree of `A`
//!    outside the regions `ΔB` touches* (Fig. 3: "reuses disjointly
//!    modified sub-trees to build the merged tree"). No element-wise walk
//!    of the unchanged data ever happens.
//!
//! Conflicts arise when both sides change the same key differently; the
//! [`MergePolicy`] decides the outcome.

use bytes::Bytes;
use forkbase_store::ChunkStore;

use crate::diff::{diff_maps, DiffEntry};
use crate::map::{MapEdit, PosMap};

/// Conflict-resolution policy for three-way merges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergePolicy {
    /// Refuse to merge when any key conflicts (report all conflicts).
    #[default]
    Fail,
    /// On conflict, keep `ours` (the tree being merged into).
    Ours,
    /// On conflict, take `theirs` (the tree being merged from).
    Theirs,
}

/// A conflicting key and the three versions involved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeConflict {
    /// The contested key.
    pub key: Bytes,
    /// Value in the base (`None` = absent).
    pub base: Option<Bytes>,
    /// Value in ours (`None` = deleted).
    pub ours: Option<Bytes>,
    /// Value in theirs (`None` = deleted).
    pub theirs: Option<Bytes>,
}

/// Counters describing how much work the merge did — the Fig. 3 experiment
/// measures `new_nodes_written` against total tree size to demonstrate
/// sub-tree reuse.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Differences found on our side.
    pub ours_changes: usize,
    /// Differences found on their side.
    pub theirs_changes: usize,
    /// Conflicting keys encountered (resolved or fatal per policy).
    pub conflicts: usize,
    /// Nodes loaded during the two diffs.
    pub diff_nodes_loaded: u64,
}

/// Successful merge result.
pub struct MergeOutcome<'s, S> {
    /// The merged map.
    pub merged: PosMap<'s, S>,
    /// Work counters.
    pub report: MergeReport,
}

/// Error raised when [`MergePolicy::Fail`] meets conflicts.
#[derive(Debug)]
pub enum MergeError {
    /// Underlying tree error.
    Node(crate::node::NodeError),
    /// Conflicting edits under the fail policy.
    Conflicts(Vec<MergeConflict>),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Node(e) => write!(f, "merge failed: {e}"),
            MergeError::Conflicts(c) => write!(f, "merge found {} conflicting key(s)", c.len()),
        }
    }
}

impl std::error::Error for MergeError {}

impl From<crate::node::NodeError> for MergeError {
    fn from(e: crate::node::NodeError) -> Self {
        MergeError::Node(e)
    }
}

/// The value a diff entry assigns to its key (`None` = key removed).
fn after(entry: &DiffEntry) -> Option<Bytes> {
    match entry {
        DiffEntry::Added { value, .. } => Some(value.clone()),
        DiffEntry::Modified { to, .. } => Some(to.clone()),
        DiffEntry::Removed { .. } => None,
    }
}

/// The value the key had in the base (`None` = absent).
fn before(entry: &DiffEntry) -> Option<Bytes> {
    match entry {
        DiffEntry::Added { .. } => None,
        DiffEntry::Modified { from, .. } => Some(from.clone()),
        DiffEntry::Removed { value, .. } => Some(value.clone()),
    }
}

/// Three-way merge: combine the changes `base→theirs` into `ours`.
pub fn merge_maps<'s, S: ChunkStore>(
    base: &PosMap<'s, S>,
    ours: &PosMap<'s, S>,
    theirs: &PosMap<'s, S>,
    policy: MergePolicy,
) -> Result<MergeOutcome<'s, S>, MergeError> {
    let store = ours.store();
    let delta_ours = diff_maps(store, base.tree(), ours.tree())?;
    let delta_theirs = diff_maps(store, base.tree(), theirs.tree())?;

    let mut report = MergeReport {
        ours_changes: delta_ours.entries.len(),
        theirs_changes: delta_theirs.entries.len(),
        conflicts: 0,
        diff_nodes_loaded: delta_ours.stats.nodes_loaded + delta_theirs.stats.nodes_loaded,
    };

    // Index our changes by key for conflict detection. Diff entries are
    // key-ordered, so a sorted-vec + binary search keeps allocations down.
    let ours_by_key: Vec<&DiffEntry> = delta_ours.entries.iter().collect();

    let mut edits: Vec<MapEdit> = Vec::new();
    let mut conflicts: Vec<MergeConflict> = Vec::new();

    for theirs_entry in &delta_theirs.entries {
        let key = theirs_entry.key();
        let ours_entry = ours_by_key
            .binary_search_by(|e| e.key().cmp(key))
            .ok()
            .map(|i| ours_by_key[i]);
        match ours_entry {
            None => {
                // Only their side touched this key: take it.
                match after(theirs_entry) {
                    Some(v) => edits.push(MapEdit::put(key.clone(), v)),
                    None => edits.push(MapEdit::delete(key.clone())),
                }
            }
            Some(ours_entry) => {
                let ours_after = after(ours_entry);
                let theirs_after = after(theirs_entry);
                if ours_after == theirs_after {
                    continue; // both sides agree; ours already has it
                }
                report.conflicts += 1;
                match policy {
                    MergePolicy::Fail => conflicts.push(MergeConflict {
                        key: key.clone(),
                        base: before(theirs_entry),
                        ours: ours_after,
                        theirs: theirs_after,
                    }),
                    MergePolicy::Ours => { /* keep ours: no edit */ }
                    MergePolicy::Theirs => match theirs_after {
                        Some(v) => edits.push(MapEdit::put(key.clone(), v)),
                        None => edits.push(MapEdit::delete(key.clone())),
                    },
                }
            }
        }
    }

    if !conflicts.is_empty() {
        return Err(MergeError::Conflicts(conflicts));
    }

    let merged = ours.apply(edits)?;
    Ok(MergeOutcome { merged, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use forkbase_chunk::ChunkerConfig;
    use forkbase_store::{ChunkStore, MemStore};

    fn cfg() -> ChunkerConfig {
        ChunkerConfig::test_small()
    }

    fn k(i: u32) -> Bytes {
        Bytes::from(format!("key-{i:08}"))
    }

    fn v(i: u32) -> Bytes {
        Bytes::from(format!("value-{i}"))
    }

    fn sample(store: &MemStore, n: u32) -> PosMap<'_, MemStore> {
        PosMap::build_from_sorted(store, cfg(), (0..n).map(|i| (k(i), v(i)))).unwrap()
    }

    #[test]
    fn disjoint_edits_merge_cleanly() {
        let store = MemStore::new();
        let base = sample(&store, 2000);
        // A edits the front, B edits the back (Fig. 3 scenario).
        let ours = base
            .apply((0..20).map(|i| MapEdit::put(k(i), Bytes::from(format!("ours{i}")))))
            .unwrap();
        let theirs = base
            .apply((1980..2000).map(|i| MapEdit::put(k(i), Bytes::from(format!("theirs{i}")))))
            .unwrap();
        let out = merge_maps(&base, &ours, &theirs, MergePolicy::Fail).unwrap();
        assert_eq!(out.report.conflicts, 0);
        assert_eq!(out.merged.len(), 2000);
        assert_eq!(
            out.merged.get(&k(0)).unwrap(),
            Some(Bytes::from_static(b"ours0"))
        );
        assert_eq!(
            out.merged.get(&k(1999)).unwrap(),
            Some(Bytes::from_static(b"theirs1999"))
        );
        assert_eq!(out.merged.get(&k(1000)).unwrap(), Some(v(1000)));
    }

    #[test]
    fn merge_is_symmetric_for_disjoint_edits() {
        let store = MemStore::new();
        let base = sample(&store, 1000);
        let a = base.insert(k(10), Bytes::from_static(b"A")).unwrap();
        let b = base.insert(k(900), Bytes::from_static(b"B")).unwrap();
        let ab = merge_maps(&base, &a, &b, MergePolicy::Fail).unwrap();
        let ba = merge_maps(&base, &b, &a, MergePolicy::Fail).unwrap();
        assert_eq!(ab.merged.root(), ba.merged.root(), "structural invariance");
    }

    #[test]
    fn conflicting_edit_fails_under_fail_policy() {
        let store = MemStore::new();
        let base = sample(&store, 100);
        let ours = base.insert(k(50), Bytes::from_static(b"mine")).unwrap();
        let theirs = base.insert(k(50), Bytes::from_static(b"yours")).unwrap();
        match merge_maps(&base, &ours, &theirs, MergePolicy::Fail) {
            Err(MergeError::Conflicts(c)) => {
                assert_eq!(c.len(), 1);
                assert_eq!(c[0].key, k(50));
                assert_eq!(c[0].base, Some(v(50)));
                assert_eq!(c[0].ours, Some(Bytes::from_static(b"mine")));
                assert_eq!(c[0].theirs, Some(Bytes::from_static(b"yours")));
            }
            other => panic!("expected conflicts, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn conflict_policies_pick_sides() {
        let store = MemStore::new();
        let base = sample(&store, 100);
        let ours = base.insert(k(50), Bytes::from_static(b"mine")).unwrap();
        let theirs = base.insert(k(50), Bytes::from_static(b"yours")).unwrap();

        let keep_ours = merge_maps(&base, &ours, &theirs, MergePolicy::Ours).unwrap();
        assert_eq!(
            keep_ours.merged.get(&k(50)).unwrap(),
            Some(Bytes::from_static(b"mine"))
        );
        assert_eq!(keep_ours.report.conflicts, 1);

        let take_theirs = merge_maps(&base, &ours, &theirs, MergePolicy::Theirs).unwrap();
        assert_eq!(
            take_theirs.merged.get(&k(50)).unwrap(),
            Some(Bytes::from_static(b"yours"))
        );
    }

    #[test]
    fn identical_changes_are_not_conflicts() {
        let store = MemStore::new();
        let base = sample(&store, 100);
        let ours = base.insert(k(50), Bytes::from_static(b"same")).unwrap();
        let theirs = base.insert(k(50), Bytes::from_static(b"same")).unwrap();
        let out = merge_maps(&base, &ours, &theirs, MergePolicy::Fail).unwrap();
        assert_eq!(out.report.conflicts, 0);
        assert_eq!(out.merged.root(), ours.root());
    }

    #[test]
    fn delete_vs_modify_is_a_conflict() {
        let store = MemStore::new();
        let base = sample(&store, 100);
        let ours = base.remove(k(50)).unwrap();
        let theirs = base.insert(k(50), Bytes::from_static(b"kept")).unwrap();
        match merge_maps(&base, &ours, &theirs, MergePolicy::Fail) {
            Err(MergeError::Conflicts(c)) => {
                assert_eq!(c[0].ours, None);
                assert_eq!(c[0].theirs, Some(Bytes::from_static(b"kept")));
            }
            other => panic!("expected conflict, got ok={}", other.is_ok()),
        }
    }

    #[test]
    fn both_delete_is_agreement() {
        let store = MemStore::new();
        let base = sample(&store, 100);
        let ours = base.remove(k(50)).unwrap();
        let theirs = base.remove(k(50)).unwrap();
        let out = merge_maps(&base, &ours, &theirs, MergePolicy::Fail).unwrap();
        assert_eq!(out.merged.get(&k(50)).unwrap(), None);
        assert_eq!(out.merged.len(), 99);
    }

    #[test]
    fn merge_reuses_subtrees_fig3() {
        // The Fig. 3 measurement: merging disjoint edits on a large map
        // must create few new chunks — everything else is shared.
        let store = MemStore::new();
        let base = sample(&store, 20_000);
        let ours = base
            .apply((0..10).map(|i| MapEdit::put(k(i), Bytes::from_static(b"o"))))
            .unwrap();
        let theirs = base
            .apply((19_990..20_000).map(|i| MapEdit::put(k(i), Bytes::from_static(b"t"))))
            .unwrap();
        let chunks_before = store.chunk_count();
        let out = merge_maps(&base, &ours, &theirs, MergePolicy::Fail).unwrap();
        let new_chunks = store.chunk_count() - chunks_before;
        assert!(
            new_chunks <= 15,
            "merge created {new_chunks} chunks; sub-tree reuse failed"
        );
        // And the merged tree equals a from-scratch build of the same data
        // (structural invariance).
        assert_eq!(out.merged.len(), 20_000);
        assert_eq!(
            out.merged.get(&k(5)).unwrap(),
            Some(Bytes::from_static(b"o"))
        );
        assert_eq!(
            out.merged.get(&k(19_995)).unwrap(),
            Some(Bytes::from_static(b"t"))
        );
    }

    #[test]
    fn merge_with_unchanged_side_is_fast_forward() {
        let store = MemStore::new();
        let base = sample(&store, 500);
        let theirs = base.insert(k(100), Bytes::from_static(b"new")).unwrap();
        // ours == base: merge must equal theirs exactly.
        let out = merge_maps(&base, &base, &theirs, MergePolicy::Fail).unwrap();
        assert_eq!(out.merged.root(), theirs.root());
    }
}
