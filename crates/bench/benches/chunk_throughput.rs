//! Ingestion-path throughput: per-byte chunking vs the bulk-slice fast
//! path, on 64 MiB of incompressible input.
//!
//! This is the gating cost of content-addressed storage (PAPER §II-A):
//! every byte written to ForkBase crosses the rolling-hash boundary
//! detector before anything else happens to it. The acceptance bar for the
//! fast path is ≥ 3× over the per-byte baseline at the default data-chunk
//! parameters (window 48, min 512, avg ~4.5 KiB).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use forkbase_bench::workload;
use forkbase_chunk::{chunk_boundaries, chunk_boundaries_per_byte, ChunkerConfig, RollingHash};
use forkbase_postree::{PosBlob, TreeConfig};
use forkbase_store::MemStore;

const INPUT_LEN: usize = 64 << 20;

/// The seed repository's original per-byte chunker, frozen verbatim as the
/// "before this PR" baseline: ring-buffer eviction with a `%` modulo, the
/// pattern mask recomputed on every byte, and a δᵏ rotate per eviction.
struct SeedChunker {
    cfg: ChunkerConfig,
    ring: Vec<u8>,
    head: usize,
    filled: usize,
    value: u64,
    in_chunk: usize,
}

impl SeedChunker {
    fn new(cfg: ChunkerConfig) -> Self {
        SeedChunker {
            ring: vec![0u8; cfg.window],
            cfg,
            head: 0,
            filled: 0,
            value: 0,
            in_chunk: 0,
        }
    }

    #[inline]
    fn push(&mut self, b: u8) -> bool {
        let window = self.cfg.window;
        if self.filled < window {
            self.value = self.value.rotate_left(1) ^ forkbase_chunk::gamma(b);
            let idx = (self.head + self.filled) % window;
            self.ring[idx] = b;
            self.filled += 1;
        } else {
            let out = self.ring[self.head];
            self.value = self.value.rotate_left(1)
                ^ forkbase_chunk::gamma(out).rotate_left((window % 64) as u32)
                ^ forkbase_chunk::gamma(b);
            self.ring[self.head] = b;
            self.head = (self.head + 1) % window;
        }
        self.in_chunk += 1;
        let mask = (1u64 << self.cfg.pattern_bits) - 1;
        let cut = self.in_chunk >= self.cfg.max_size
            || (self.in_chunk >= self.cfg.min_size && self.value & mask == 0);
        if cut {
            self.head = 0;
            self.filled = 0;
            self.value = 0;
            self.in_chunk = 0;
        }
        cut
    }
}

fn seed_boundaries(data: &[u8], cfg: ChunkerConfig) -> Vec<usize> {
    let mut ck = SeedChunker::new(cfg);
    let mut ends = Vec::new();
    for (i, &b) in data.iter().enumerate() {
        if ck.push(b) {
            ends.push(i + 1);
        }
    }
    if ends.last().copied() != Some(data.len()) && !data.is_empty() {
        ends.push(data.len());
    }
    ends
}

fn bench_boundary_scan(c: &mut Criterion) {
    let data = workload::random_bytes(INPUT_LEN, 0xC0DE);
    let cfg = ChunkerConfig::data_default();
    // Sanity: identical boundaries, or the comparison is meaningless.
    let reference = chunk_boundaries_per_byte(&data, cfg);
    assert_eq!(chunk_boundaries(&data, cfg), reference);
    assert_eq!(seed_boundaries(&data, cfg), reference);

    let mut group = c.benchmark_group("chunk_throughput/boundaries_64MiB");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("per_byte_seed", |b| {
        b.iter(|| seed_boundaries(&data, cfg).len());
    });
    group.bench_function("per_byte", |b| {
        b.iter(|| chunk_boundaries_per_byte(&data, cfg).len());
    });
    group.bench_function("bulk_scan", |b| {
        b.iter(|| chunk_boundaries(&data, cfg).len());
    });
    group.finish();

    // The full ingestion fast path this PR replaces, minus the (unchanged)
    // hashing and store layers: the seed walked every byte through the
    // chunker state machine and then copied each chunk into its own
    // buffer; the fast path scans slices and materializes chunks as
    // zero-copy views.
    let shared = Bytes::from(data.clone());
    let mut group = c.benchmark_group("chunk_throughput/ingest_64MiB");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("seed_per_byte_plus_copy", |b| {
        b.iter(|| {
            let mut ck = SeedChunker::new(cfg);
            let mut chunks: Vec<Bytes> = Vec::new();
            let mut start = 0usize;
            for (i, &byte) in data.iter().enumerate() {
                if ck.push(byte) {
                    chunks.push(Bytes::copy_from_slice(&data[start..=i]));
                    start = i + 1;
                }
            }
            if start < data.len() {
                chunks.push(Bytes::copy_from_slice(&data[start..]));
            }
            chunks.len()
        });
    });
    group.bench_function("bulk_scan_zero_copy", |b| {
        b.iter(|| {
            let mut ck = forkbase_chunk::ByteChunker::new(cfg);
            let mut chunks: Vec<Bytes> = Vec::new();
            let mut pos = 0usize;
            while let Some(off) = ck.next_boundary(&shared[pos..]) {
                chunks.push(shared.slice(pos..pos + off));
                pos += off;
            }
            if pos < shared.len() {
                chunks.push(shared.slice(pos..));
            }
            chunks.len()
        });
    });
    group.finish();
}

fn bench_rolling_primitives(c: &mut Criterion) {
    let data = workload::random_bytes(8 << 20, 0xF00D);
    let mut group = c.benchmark_group("chunk_throughput/rolling_hash_8MiB");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("push_per_byte", |b| {
        b.iter(|| {
            let mut rh = RollingHash::new(48);
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= rh.push(byte);
            }
            acc
        });
    });
    group.bench_function("scan_boundary_no_match", |b| {
        // mask with 40 low bits never fires on 8 MiB: pure scan cost.
        b.iter(|| forkbase_chunk::scan_boundary(&data, 48, (1u64 << 40) - 1, 47, usize::MAX));
    });
    group.finish();
}

fn bench_blob_ingest(c: &mut Criterion) {
    let content = Bytes::from(workload::random_bytes(INPUT_LEN, 0xB10B));
    let cfg = TreeConfig::default_config();
    let mut group = c.benchmark_group("chunk_throughput/blob_ingest_64MiB");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(content.len() as u64));
    group.bench_function("write_zero_copy", |b| {
        b.iter(|| {
            let store = MemStore::new();
            PosBlob::new(&store, cfg)
                .write_bytes(content.clone())
                .unwrap()
        });
    });
    group.bench_function("write_copying", |b| {
        b.iter(|| {
            let store = MemStore::new();
            PosBlob::new(&store, cfg).write(&content).unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_boundary_scan,
    bench_rolling_primitives,
    bench_blob_ingest
);
criterion_main!(benches);
