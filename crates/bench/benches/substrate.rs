//! Criterion microbenchmarks for the substrate layers: SHA-256, the
//! rolling hash, the content-defined chunker, and the chunk stores.
//!
//! These bound every higher-level number: a 4 KiB page costs one SHA-256
//! compression pass per load (verification) and per store (addressing).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use forkbase_bench::workload;
use forkbase_chunk::{ByteChunker, ChunkerConfig, RollingHash};
use forkbase_crypto::sha256;
use forkbase_store::{ChunkStore, FileStore, MemStore};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/sha256");
    for size in [4096usize, 1 << 20] {
        let data = workload::random_bytes(size, 0x51);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha256(d));
        });
    }
    group.finish();
}

fn bench_rolling_hash(c: &mut Criterion) {
    let data = workload::random_bytes(1 << 20, 0x52);
    let mut group = c.benchmark_group("chunk/rolling_hash");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("1MiB", |b| {
        b.iter(|| {
            let mut rh = RollingHash::new(48);
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= rh.push(byte);
            }
            acc
        });
    });
    group.finish();
}

fn bench_chunker(c: &mut Criterion) {
    let data = workload::random_bytes(1 << 20, 0x53);
    let mut group = c.benchmark_group("chunk/byte_chunker");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("1MiB_default", |b| {
        b.iter(|| {
            let mut ck = ByteChunker::new(ChunkerConfig::data_default());
            let mut cuts = 0usize;
            for &byte in &data {
                if ck.push(byte) {
                    cuts += 1;
                }
            }
            cuts
        });
    });
    group.finish();
}

fn bench_stores(c: &mut Criterion) {
    let chunks: Vec<Bytes> = (0..256)
        .map(|i| Bytes::from(workload::random_bytes(4096, 0x54 + i as u64)))
        .collect();

    let mut group = c.benchmark_group("store/put_get_4KiB");
    group.throughput(Throughput::Bytes(4096 * chunks.len() as u64));
    group.bench_function("memstore", |b| {
        b.iter(|| {
            let store = MemStore::new();
            let hashes: Vec<_> = chunks
                .iter()
                .map(|c| store.put(c.clone()).unwrap())
                .collect();
            for h in &hashes {
                store.get(h).unwrap().unwrap();
            }
        });
    });
    group.sample_size(10);
    group.bench_function("filestore", |b| {
        let dir = std::env::temp_dir().join(format!("fkb-bench-{}", std::process::id()));
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let store = FileStore::open(&dir).unwrap();
            let hashes: Vec<_> = chunks
                .iter()
                .map(|c| store.put(c.clone()).unwrap())
                .collect();
            for h in &hashes {
                store.get(h).unwrap().unwrap();
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_rolling_hash,
    bench_chunker,
    bench_stores
);
criterion_main!(benches);
