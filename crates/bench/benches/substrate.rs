//! Criterion microbenchmarks for the substrate layers: SHA-256, the
//! rolling hash, the content-defined chunker, the chunk stores (single
//! put vs batched group commit), and the concurrent commit pipeline
//! (striped head locks vs an emulated global commit lock).
//!
//! These bound every higher-level number: a 4 KiB page costs one SHA-256
//! compression pass per load (verification) and per store (addressing).

use std::collections::HashSet;
use std::sync::Mutex as StdMutex;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use forkbase::{ForkBase, PutOptions};
use forkbase_bench::workload;
use forkbase_chunk::{ByteChunker, ChunkerConfig, RollingHash};
use forkbase_crypto::{sha256, Hash};
use forkbase_store::{ChunkStore, FileStore, FileStoreConfig, MemStore};
use forkbase_types::Value;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/sha256");
    for size in [4096usize, 1 << 20] {
        let data = workload::random_bytes(size, 0x51);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| sha256(d));
        });
    }
    group.finish();
}

fn bench_rolling_hash(c: &mut Criterion) {
    let data = workload::random_bytes(1 << 20, 0x52);
    let mut group = c.benchmark_group("chunk/rolling_hash");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("1MiB", |b| {
        b.iter(|| {
            let mut rh = RollingHash::new(48);
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= rh.push(byte);
            }
            acc
        });
    });
    group.finish();
}

fn bench_chunker(c: &mut Criterion) {
    let data = workload::random_bytes(1 << 20, 0x53);
    let mut group = c.benchmark_group("chunk/byte_chunker");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("1MiB_default", |b| {
        b.iter(|| {
            let mut ck = ByteChunker::new(ChunkerConfig::data_default());
            let mut cuts = 0usize;
            for &byte in &data {
                if ck.push(byte) {
                    cuts += 1;
                }
            }
            cuts
        });
    });
    group.finish();
}

fn bench_stores(c: &mut Criterion) {
    let chunks: Vec<Bytes> = (0..256)
        .map(|i| Bytes::from(workload::random_bytes(4096, 0x54 + i as u64)))
        .collect();

    let mut group = c.benchmark_group("store/put_get_4KiB");
    group.throughput(Throughput::Bytes(4096 * chunks.len() as u64));
    group.bench_function("memstore", |b| {
        b.iter(|| {
            let store = MemStore::new();
            let hashes: Vec<_> = chunks
                .iter()
                .map(|c| store.put(c.clone()).unwrap())
                .collect();
            for h in &hashes {
                store.get(h).unwrap().unwrap();
            }
        });
    });
    group.sample_size(10);
    group.bench_function("filestore", |b| {
        let dir = std::env::temp_dir().join(format!("fkb-bench-{}", std::process::id()));
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let store = FileStore::open(&dir).unwrap();
            let hashes: Vec<_> = chunks
                .iter()
                .map(|c| store.put(c.clone()).unwrap())
                .collect();
            for h in &hashes {
                store.get(h).unwrap().unwrap();
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();
}

fn bench_put_batch(c: &mut Criterion) {
    let chunks: Vec<(Hash, Bytes)> = (0..256)
        .map(|i| {
            let b = Bytes::from(workload::random_bytes(4096, 0x60 + i as u64));
            (sha256(&b), b)
        })
        .collect();

    let mut group = c.benchmark_group("store/put_batch_256x4KiB");
    group.throughput(Throughput::Bytes(4096 * chunks.len() as u64));
    group.bench_function("memstore/per_chunk", |b| {
        b.iter(|| {
            let store = MemStore::new();
            for (h, c) in &chunks {
                store.put_with_hash(*h, c.clone()).unwrap();
            }
            store.chunk_count()
        });
    });
    group.bench_function("memstore/batched", |b| {
        b.iter(|| {
            let store = MemStore::new();
            store.put_batch(chunks.clone()).unwrap();
            store.chunk_count()
        });
    });
    group.sample_size(10);
    let dir = std::env::temp_dir().join(format!("fkb-batch-bench-{}", std::process::id()));
    group.bench_function("filestore/per_chunk", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let store = FileStore::open(&dir).unwrap();
            for (h, c) in &chunks {
                store.put_with_hash(*h, c.clone()).unwrap();
            }
            store.sync().unwrap();
        });
    });
    group.bench_function("filestore/batched", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let store = FileStore::open(&dir).unwrap();
            store.put_batch(chunks.clone()).unwrap();
            store.sync().unwrap();
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

/// Physical space reclamation on the segmented pack-file store: ingest a
/// working set, drop half of it, run `compact` against the survivor set,
/// and re-read every survivor. Throughput is the full cycle over the
/// ingested bytes, so regressions in any leg (group commit, segment
/// utilization accounting, compaction rewrite, post-compaction reads)
/// show up here.
fn bench_compaction(c: &mut Criterion) {
    const CHUNK: usize = 4096;
    const COUNT: usize = 256;
    let chunks: Vec<(Hash, Bytes)> = (0..COUNT)
        .map(|i| {
            let b = Bytes::from(workload::random_bytes(CHUNK, 0x80 + i as u64));
            (sha256(&b), b)
        })
        .collect();
    let live: HashSet<Hash> = chunks.iter().step_by(2).map(|(h, _)| *h).collect();

    let mut group = c.benchmark_group("store/compaction");
    group.throughput(Throughput::Bytes((CHUNK * COUNT) as u64));
    group.sample_size(10);
    let dir = std::env::temp_dir().join(format!("fkb-compact-bench-{}", std::process::id()));
    group.bench_function("ingest_delete_compact_reread", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let store = FileStore::open_with(
                &dir,
                FileStoreConfig {
                    segment_bytes: 64 * 1024,
                    ..Default::default()
                },
            )
            .unwrap();
            store.put_batch(chunks.clone()).unwrap();
            store.sync().unwrap();
            let report = store.compact(&live).unwrap();
            assert_eq!(report.chunks_reclaimed as usize, COUNT - live.len());
            assert!(
                report.disk_bytes_after < report.disk_bytes_before,
                "compaction must shrink the store"
            );
            for h in &live {
                store.get(h).unwrap().unwrap();
            }
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

/// The tentpole measurement: aggregate commit throughput with N writer
/// threads, on disjoint keys (stripes never contend) and one contended
/// branch (stripes always contend), against a baseline that emulates the
/// old global `commit_lock` by wrapping every commit in one process-wide
/// mutex. On multi-core hardware `striped/disjoint` scales with threads
/// while `global/*` stays flat; on a single vCPU the striped path should
/// at least never be slower.
fn bench_concurrent_commits(c: &mut Criterion) {
    const COMMITS_PER_THREAD: usize = 150;

    let run = |threads: usize, contended: bool, global: bool| {
        let db = ForkBase::new(MemStore::new());
        let global_lock = StdMutex::new(());
        std::thread::scope(|s| {
            for t in 0..threads {
                let db = &db;
                let global_lock = &global_lock;
                s.spawn(move || {
                    let key = if contended {
                        "shared".to_string()
                    } else {
                        format!("key-{t}")
                    };
                    let opts = PutOptions::default();
                    for i in 0..COMMITS_PER_THREAD {
                        let value = Value::string(format!("v-{t}-{i}"));
                        if global {
                            let _g = global_lock.lock().unwrap();
                            db.put(&key, value, &opts).unwrap();
                        } else {
                            db.put(&key, value, &opts).unwrap();
                        }
                    }
                });
            }
        });
    };

    let mut group = c.benchmark_group("db/concurrent_commits");
    for &threads in &[1usize, 2, 8] {
        group.throughput(Throughput::Elements((threads * COMMITS_PER_THREAD) as u64));
        for (label, contended, global) in [
            ("striped/disjoint", false, false),
            ("striped/contended", true, false),
            ("global_baseline/disjoint", false, true),
            ("global_baseline/contended", true, true),
        ] {
            group.bench_function(BenchmarkId::new(label, format!("{threads}thr")), |b| {
                b.iter(|| run(threads, contended, global));
            });
        }
    }
    group.finish();
}

/// Whole-pipeline blob commits: chunking, batched chunk stores, head
/// update — 8 writers over disjoint keys.
fn bench_concurrent_blob_commits(c: &mut Criterion) {
    const BLOB_LEN: usize = 256 * 1024;
    let contents: Vec<Bytes> = (0..8)
        .map(|t| Bytes::from(workload::random_bytes(BLOB_LEN, 0x70 + t as u64)))
        .collect();

    let mut group = c.benchmark_group("db/concurrent_blob_commits");
    for &threads in &[1usize, 8] {
        group.throughput(Throughput::Bytes((threads * BLOB_LEN) as u64));
        group.bench_function(
            BenchmarkId::from_parameter(format!("{threads}thr_256KiB")),
            |b| {
                b.iter(|| {
                    let db = ForkBase::new(MemStore::new());
                    std::thread::scope(|s| {
                        for (t, content) in contents.iter().take(threads).enumerate() {
                            let db = &db;
                            let content = content.clone();
                            s.spawn(move || {
                                db.put_blob(&format!("blob-{t}"), content, &PutOptions::default())
                                    .unwrap();
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

/// Snapshot + cursor scan vs the materializing verb over a 100k-entry
/// map. The cursor path must be at least as fast (it decodes the same
/// leaves but skips the O(N) output vector), and it is the path that
/// keeps memory O(chunk) for values that don't fit.
fn bench_snapshot_scan(c: &mut Criterion) {
    use forkbase::VersionSpec;
    const ENTRIES: u64 = 100_000;
    let db = ForkBase::new(MemStore::new());
    let pairs: Vec<(Bytes, Bytes)> = (0..ENTRIES)
        .map(|i| {
            (
                Bytes::from(format!("key-{i:08}")),
                Bytes::from(format!("value-{i}")),
            )
        })
        .collect();
    let map = db.new_map(pairs).unwrap();
    db.put("big", map, &PutOptions::default()).unwrap();
    let got = db.get("big", "master").unwrap();

    let mut group = c.benchmark_group("db/snapshot_scan");
    group.throughput(Throughput::Elements(ENTRIES));
    group.sample_size(10);
    group.bench_function("materialized_100k", |b| {
        b.iter(|| {
            let entries = db.map_entries(&got.value).unwrap();
            assert_eq!(entries.len() as u64, ENTRIES);
            entries.len()
        });
    });
    group.bench_function("cursor_100k", |b| {
        b.iter(|| {
            let snap = db.snapshot("big", &VersionSpec::default()).unwrap();
            let mut n = 0u64;
            let mut bytes = 0usize;
            for item in snap.map_iter().unwrap() {
                let (k, v) = item.unwrap();
                n += 1;
                bytes += k.len() + v.len();
            }
            assert_eq!(n, ENTRIES);
            bytes
        });
    });
    // A bounded page: seek + 1k entries, the REST /v1/range access shape.
    group.throughput(Throughput::Elements(1000));
    group.bench_function("cursor_seek_page_1k", |b| {
        b.iter(|| {
            let snap = db.snapshot("big", &VersionSpec::default()).unwrap();
            let n = snap
                .map_range(b"key-00050000".as_slice()..b"key-00051000".as_slice())
                .unwrap()
                .count();
            assert_eq!(n, 1000);
            n
        });
    });
    group.finish();
}

/// Atomic 16-key write batch vs 16 sequential puts.
///
/// On `MemStore` the comparison isolates the engine-side cost: the batch
/// pays one stripe-lock sweep, one FNode `put_batch`, and one ref-table
/// write section instead of 16 of each, while op staging is an
/// `Arc`-interned options clone plus a borrowed-parts FNode encoding (no
/// per-op string clones) — so the batch must not lose to sequential. On a
/// durable `FileStore` (`sync_every_put`) the group commit dominates: 16
/// sequential puts are 16 fsyncs, the batch is one.
fn bench_write_batch(c: &mut Criterion) {
    const KEYS: usize = 16;
    let keys: Vec<String> = (0..KEYS).map(|i| format!("batch-key-{i}")).collect();

    let mut group = c.benchmark_group("db/write_batch");
    group.throughput(Throughput::Elements(KEYS as u64));
    group.bench_function("sequential_16keys", |b| {
        let db = ForkBase::new(MemStore::new());
        let opts = PutOptions::default();
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            for key in &keys {
                db.put(key, Value::string(format!("v{round}")), &opts)
                    .unwrap();
            }
        });
    });
    group.bench_function("batch_16keys", |b| {
        let db = ForkBase::new(MemStore::new());
        let opts = PutOptions::default();
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let mut batch = db.write_batch();
            for key in &keys {
                batch.put(key.clone(), Value::string(format!("v{round}")), &opts);
            }
            batch.commit().unwrap()
        });
    });

    // Durable stores: one fsync per batch vs one per put.
    group.sample_size(10);
    let durable = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("fkb-wb-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open_with(
            &dir,
            FileStoreConfig {
                sync_every_put: true,
                ..Default::default()
            },
        )
        .unwrap();
        (dir, ForkBase::new(store))
    };
    {
        let (dir, db) = durable("seq");
        let opts = PutOptions::default();
        let mut round = 0u64;
        group.bench_function("sequential_16keys_durable_filestore", |b| {
            b.iter(|| {
                round += 1;
                for key in &keys {
                    db.put(key, Value::string(format!("v{round}")), &opts)
                        .unwrap();
                }
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    {
        let (dir, db) = durable("batch");
        let opts = PutOptions::default();
        let mut round = 0u64;
        group.bench_function("batch_16keys_durable_filestore", |b| {
            b.iter(|| {
                round += 1;
                let mut batch = db.write_batch();
                for key in &keys {
                    batch.put(key.clone(), Value::string(format!("v{round}")), &opts);
                }
                batch.commit().unwrap()
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Routed cluster throughput: 64 single-key puts through the
/// consistent-hash router of a 4-servelet MemStore cluster vs the same 64
/// puts on one local `ForkBase`, plus the routed write batch (ops grouped
/// per owning servelet, one atomic `WriteBatch` each).
///
/// The routed paths pay one channel round-trip per RPC (the simulated
/// network) on top of the engine work, so `single_node` is the upper
/// bound; the interesting number is how close routing gets and that the
/// grouped batch beats per-op routing (4 RPCs instead of 64).
fn bench_cluster_put(c: &mut Criterion) {
    use forkbase::Cluster;
    const KEYS: usize = 64;
    let keys: Vec<String> = (0..KEYS).map(|i| format!("cluster-key-{i}")).collect();

    let mut group = c.benchmark_group("db/cluster_put");
    group.throughput(Throughput::Elements(KEYS as u64));
    group.bench_function("single_node_64keys", |b| {
        let db = ForkBase::new(MemStore::new());
        let opts = PutOptions::default();
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            for key in &keys {
                db.put(key, Value::string(format!("v{round}")), &opts)
                    .unwrap();
            }
        });
    });
    group.bench_function("routed_4servelets_64keys", |b| {
        let cluster = Cluster::new(4, forkbase_postree::TreeConfig::default_config());
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            for key in &keys {
                cluster
                    .put(
                        key,
                        Value::string(format!("v{round}")),
                        PutOptions::default(),
                    )
                    .unwrap();
            }
        });
    });
    group.bench_function("routed_batch_4servelets_64keys", |b| {
        let cluster = Cluster::new(4, forkbase_postree::TreeConfig::default_config());
        let opts = PutOptions::default();
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let mut batch = cluster.write_batch();
            for key in &keys {
                batch.put(key.clone(), Value::string(format!("v{round}")), &opts);
            }
            batch.commit().unwrap()
        });
    });
    group.finish();
}

/// Replication ship/drain throughput: one iteration routes 64 puts
/// against a 4-servelet cluster (the ship-log capture rides the routed
/// write), drains the logs with `ship_replication` — the export-apply
/// round-trips the Supervisor pays every tick — then deletes the 64 keys
/// and drains the resulting forgets. The delete leg keeps the bench
/// stationary: a fully-deleted key ceases to exist, so every iteration
/// ships one-commit bundles instead of ever-growing histories.
fn bench_ship_drain(c: &mut Criterion) {
    use forkbase::Cluster;
    const KEYS: usize = 64;
    let keys: Vec<String> = (0..KEYS).map(|i| format!("ship-key-{i}")).collect();

    let mut group = c.benchmark_group("replication/ship_drain");
    group.sample_size(20);
    for replicas_per_primary in [1usize, 2] {
        // Each routed put captures once per replica; so does each delete.
        group.throughput(Throughput::Elements((KEYS * replicas_per_primary) as u64));
        let cluster = Cluster::new(4, forkbase_postree::TreeConfig::default_config());
        for id in cluster.ids() {
            for _ in 0..replicas_per_primary {
                cluster.add_replica(id, MemStore::new()).unwrap();
            }
        }
        group.bench_function(
            BenchmarkId::new(
                "put_ship_forget_64keys",
                format!("{replicas_per_primary}replica"),
            ),
            |b| {
                b.iter(|| {
                    for key in &keys {
                        cluster
                            .put(key, Value::string("shipped"), PutOptions::default())
                            .unwrap();
                    }
                    let report = cluster.ship_replication();
                    assert!(report.failed.is_empty());
                    assert_eq!(report.shipped, (KEYS * replicas_per_primary) as u64);
                    for key in &keys {
                        cluster.delete_branch(key, "master").unwrap();
                    }
                    let report = cluster.ship_replication();
                    assert!(report.failed.is_empty());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_rolling_hash,
    bench_chunker,
    bench_stores,
    bench_put_batch,
    bench_compaction,
    bench_concurrent_commits,
    bench_concurrent_blob_commits,
    bench_snapshot_scan,
    bench_write_batch,
    bench_cluster_put,
    bench_ship_drain
);
criterion_main!(benches);
