//! Criterion benchmarks for Fig. 4: deduplicated ingest.
//!
//! Measures the cost of loading content into the chunked store — first
//! copy (cold) vs near-duplicate (warm, dedup hits) — for both blob and
//! row-map representations, plus the baseline commit costs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use forkbase_baselines::{GitStore, VersionedStore};
use forkbase_bench::{adapter::ForkBaseStore, workload};
use forkbase_postree::{PosBlob, TreeConfig};
use forkbase_store::MemStore;

fn bench_blob_ingest(c: &mut Criterion) {
    let cfg = TreeConfig::default_config();
    let content = bytes::Bytes::from(workload::random_bytes(1 << 20, 0xDE));
    let mut near_vec = content.to_vec();
    near_vec[1 << 19] ^= 0xff;
    let near = bytes::Bytes::from(near_vec);

    let mut group = c.benchmark_group("fig4_blob_ingest_1MiB");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(content.len() as u64));
    group.bench_function("cold", |b| {
        b.iter(|| {
            let store = MemStore::new();
            PosBlob::new(&store, cfg)
                .write_bytes(content.clone())
                .unwrap()
        });
    });
    group.bench_function("near_duplicate", |b| {
        let store = MemStore::new();
        PosBlob::new(&store, cfg)
            .write_bytes(content.clone())
            .unwrap();
        b.iter(|| PosBlob::new(&store, cfg).write_bytes(near.clone()).unwrap());
    });
    group.finish();
}

fn bench_versioned_commit(c: &mut Criterion) {
    let base = workload::snapshot(20_000, 0xDF);
    let (edited, _) = workload::edit_snapshot(&base, 20, 0xE0);

    let mut group = c.benchmark_group("fig4_commit_20k_rows");
    group.sample_size(10);
    group.bench_function("forkbase_near_duplicate", |b| {
        b.iter(|| {
            let mut s = ForkBaseStore::new();
            s.commit(&base);
            s.commit(&edited);
            s.storage_bytes()
        });
    });
    group.bench_function("git_near_duplicate", |b| {
        b.iter(|| {
            let mut s = GitStore::new();
            s.commit(&base);
            s.commit(&edited);
            s.storage_bytes()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_blob_ingest, bench_versioned_commit);
criterion_main!(benches);
