//! Criterion microbenchmarks: POS-Tree core operations.
//!
//! Covers bulk build, point lookup, incremental single-edit commit and
//! full scans — the primitive costs every higher-level number (Figs. 3–5)
//! decomposes into.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use forkbase_bench::workload;
use forkbase_postree::{MapEdit, PosMap, TreeConfig};
use forkbase_store::MemStore;

fn bench_build(c: &mut Criterion) {
    let cfg = TreeConfig::default_config();
    let mut group = c.benchmark_group("postree/build");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let data = workload::snapshot(n, 0xB1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                let store = MemStore::new();
                let map =
                    PosMap::build_from_sorted(&store, cfg.node, data.iter().cloned()).unwrap();
                map.root()
            });
        });
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let cfg = TreeConfig::default_config();
    let store = MemStore::new();
    let n = 100_000;
    let data = workload::snapshot(n, 0xB2);
    let map = PosMap::build_from_sorted(&store, cfg.node, data.iter().cloned()).unwrap();
    let mut group = c.benchmark_group("postree/get");
    group.bench_function(BenchmarkId::from_parameter(n), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % n;
            map.get(&data[i].0).unwrap().unwrap()
        });
    });
    group.finish();
}

fn bench_single_edit(c: &mut Criterion) {
    let cfg = TreeConfig::default_config();
    let store = MemStore::new();
    let n = 100_000;
    let data = workload::snapshot(n, 0xB3);
    let map = PosMap::build_from_sorted(&store, cfg.node, data.iter().cloned()).unwrap();
    let mut group = c.benchmark_group("postree/apply");
    group.sample_size(20);
    group.bench_function("single_edit_100k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            map.apply([MapEdit::put(
                data[i % n].0.clone(),
                bytes::Bytes::from(format!("edit-{i}")),
            )])
            .unwrap()
        });
    });
    group.bench_function("batch100_edits_100k", |b| {
        let mut round = 0usize;
        b.iter(|| {
            round += 1;
            let edits: Vec<MapEdit> = (0..100)
                .map(|j| {
                    MapEdit::put(
                        data[(j * n / 100 + round) % n].0.clone(),
                        bytes::Bytes::from(format!("edit-{round}-{j}")),
                    )
                })
                .collect();
            map.apply(edits).unwrap()
        });
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let cfg = TreeConfig::default_config();
    let store = MemStore::new();
    let n = 100_000;
    let data = workload::snapshot(n, 0xB4);
    let map = PosMap::build_from_sorted(&store, cfg.node, data.iter().cloned()).unwrap();
    let mut group = c.benchmark_group("postree/scan");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("full_scan_100k", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for e in map.iter().unwrap() {
                count += e.unwrap().key.len();
            }
            count
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_get,
    bench_single_edit,
    bench_scan
);
criterion_main!(benches);
