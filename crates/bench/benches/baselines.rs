//! Criterion benchmarks for Table I: commit and random-version read cost
//! across the five versioning strategies on the same workload.
//!
//! Storage numbers come from the `experiments table1` binary; this bench
//! adds the *time* dimension: ForkBase commits pay chunking+hashing,
//! delta stores pay set differencing, and — the structural difference —
//! delta stores pay O(chain) for random version reads where ForkBase
//! pays O(log N).

use criterion::{criterion_group, criterion_main, Criterion};
use forkbase_baselines::{CopyStore, DeltaStore, GitStore, TupleStore, VersionedStore};
use forkbase_bench::{adapter::ForkBaseStore, workload};

const N: usize = 10_000;
const VERSIONS: usize = 30;

fn build_chain() -> Vec<Vec<(bytes::Bytes, bytes::Bytes)>> {
    workload::version_chain(N, VERSIONS, 10, 0xBA5E)
}

fn bench_commit(c: &mut Criterion) {
    let chain = build_chain();
    let mut group = c.benchmark_group("table1_commit_chain");
    group.sample_size(10);

    macro_rules! bench_store {
        ($name:literal, $ctor:expr) => {
            group.bench_function($name, |b| {
                b.iter(|| {
                    let mut s = $ctor;
                    for snap in &chain {
                        s.commit(snap);
                    }
                    s.storage_bytes()
                });
            });
        };
    }
    bench_store!("forkbase", ForkBaseStore::new());
    bench_store!("copy", CopyStore::new());
    bench_store!("git", GitStore::new());
    bench_store!("tuple_rlist", TupleStore::new());
    bench_store!("tuple_delta", DeltaStore::new());
    group.finish();
}

fn bench_random_version_read(c: &mut Criterion) {
    let chain = build_chain();
    let mut group = c.benchmark_group("table1_read_oldest_version");
    group.sample_size(10);

    let mut forkbase = ForkBaseStore::new();
    let mut delta = DeltaStore::new();
    for snap in &chain {
        forkbase.commit(snap);
        delta.commit(snap);
    }
    group.bench_function("forkbase", |b| {
        b.iter(|| forkbase.get_version(0).unwrap().len());
    });
    group.bench_function("tuple_delta_replay", |b| {
        // Delta stores replay the chain; read version 0 forces the walk
        // in reverse (here chain replay from root is version 0 itself, so
        // read the LAST version instead after a long chain—symmetric cost).
        b.iter(|| delta.get_version((VERSIONS - 1) as u64).unwrap().len());
    });
    group.finish();
}

criterion_group!(benches, bench_commit, bench_random_version_read);
criterion_main!(benches);
