//! Criterion benchmarks for Fig. 5 (diff) and Fig. 3 (merge):
//! POS-Tree vs element-wise baselines at fixed N, sweeping D.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forkbase_baselines::{elementwise_diff, elementwise_merge};
use forkbase_bench::workload;
use forkbase_postree::diff::diff_maps;
use forkbase_postree::merge::{merge_maps, MergePolicy};
use forkbase_postree::{MapEdit, PosMap, TreeConfig};
use forkbase_store::MemStore;

const N: usize = 100_000;

fn bench_diff(c: &mut Criterion) {
    let cfg = TreeConfig::default_config();
    let store = MemStore::new();
    let base_data = workload::snapshot(N, 0xD1);
    let base = PosMap::build_from_sorted(&store, cfg.node, base_data.iter().cloned()).unwrap();

    let mut group = c.benchmark_group("fig5_diff");
    group.sample_size(20);
    for d in [1usize, 100] {
        let (_, keys) = workload::edit_snapshot(&base_data, d, 0xD2 ^ d as u64);
        let edited = base
            .apply(
                keys.iter()
                    .map(|k| MapEdit::put(k.clone(), bytes::Bytes::from_static(b"x"))),
            )
            .unwrap();
        group.bench_with_input(BenchmarkId::new("postree", d), &d, |b, _| {
            b.iter(|| diff_maps(&store, base.tree(), edited.tree()).unwrap());
        });
        // Element-wise includes the mandatory full materialization.
        group.bench_with_input(BenchmarkId::new("elementwise", d), &d, |b, _| {
            b.iter(|| {
                let a = base.to_vec().unwrap();
                let bb = edited.to_vec().unwrap();
                elementwise_diff(&a, &bb)
            });
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let cfg = TreeConfig::default_config();
    let store = MemStore::new();
    let base_data = workload::snapshot(N, 0xD3);
    let base = PosMap::build_from_sorted(&store, cfg.node, base_data.iter().cloned()).unwrap();
    let ours = base
        .apply(
            (0..50)
                .map(|i| MapEdit::put(base_data[i].0.clone(), bytes::Bytes::from_static(b"ours"))),
        )
        .unwrap();
    let theirs = base
        .apply((0..50).map(|i| {
            MapEdit::put(
                base_data[N - 1 - i].0.clone(),
                bytes::Bytes::from_static(b"theirs"),
            )
        }))
        .unwrap();

    let mut group = c.benchmark_group("fig3_merge");
    group.sample_size(20);
    group.bench_function("postree_disjoint50", |b| {
        b.iter(|| merge_maps(&base, &ours, &theirs, MergePolicy::Fail).unwrap());
    });
    group.bench_function("elementwise_disjoint50", |b| {
        b.iter(|| {
            let bs = base.to_vec().unwrap();
            let os = ours.to_vec().unwrap();
            let ts = theirs.to_vec().unwrap();
            elementwise_merge(&bs, &os, &ts).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_diff, bench_merge);
criterion_main!(benches);
