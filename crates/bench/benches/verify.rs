//! Criterion benchmarks for Fig. 6: tamper-evidence validation cost.
//!
//! Verification re-hashes every fetched chunk, so its cost is the price
//! of distrusting the store. Measured per value size and per history
//! depth.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forkbase::{ForkBase, PutOptions};
use forkbase_bench::workload;
use forkbase_postree::{MapEdit, TreeConfig};
use forkbase_store::MemStore;

fn bench_verify_value(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_verify_head");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let db = ForkBase::with_config(MemStore::new(), TreeConfig::default_config());
        let map = db.new_map(workload::snapshot(n, 0xE6)).unwrap();
        let commit = db.put("k", map, &PutOptions::default()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &commit.uid, |b, uid| {
            b.iter(|| db.verify_version(uid).unwrap());
        });
    }
    group.finish();
}

fn bench_verify_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_verify_chain");
    group.sample_size(10);
    for depth in [10usize, 50] {
        let db = ForkBase::with_config(MemStore::new(), TreeConfig::default_config());
        let pairs = workload::snapshot(2_000, 0xE7);
        let map = db.new_map(pairs.clone()).unwrap();
        db.put("ledger", map, &PutOptions::default()).unwrap();
        for v in 1..depth {
            db.put_map_edits(
                "ledger",
                vec![MapEdit::put(
                    pairs[v % pairs.len()].0.clone(),
                    Bytes::from(format!("u{v}")),
                )],
                &PutOptions::default(),
            )
            .unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| db.verify_branch("ledger", "master").unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verify_value, bench_verify_chain);
criterion_main!(benches);
