#![forbid(unsafe_code)]
//! Bench-regression gate: diff a fresh `BENCH_*.json` (JSON-lines, one
//! object per benchmark, written by the criterion shim when
//! `BENCH_JSON_PATH` is set) against a committed baseline and fail on
//! large throughput regressions in the gated benchmark groups.
//!
//! ```text
//! bench_compare <baseline.json> <current.json> [--threshold 0.25]
//! ```
//!
//! Only the *gated* groups fail the run — `chunk_throughput/*`,
//! `db/concurrent_commits/*`, `db/cluster_put/*`, and
//! `replication/ship_drain/*`, the numbers the ROADMAP bench history
//! tracks; everything else is reported
//! informationally. A gated bench
//! missing from the current run also fails (a silently dropped bench must
//! not read as green). Shared CI runners are noisy, so the CI job runs
//! this with `continue-on-error` and uploads the diff as an artifact; the
//! gate is a tripwire for big (>25%) regressions, not a microbenchmark
//! police.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Benchmark groups whose regressions fail the gate.
const GATED_PREFIXES: &[&str] = &[
    "chunk_throughput",
    "db/concurrent_commits",
    "db/cluster_put",
    "replication/ship_drain",
];
const DEFAULT_THRESHOLD: f64 = 0.25;

/// One parsed benchmark result line.
#[derive(Clone, Debug, PartialEq)]
struct BenchResult {
    ns_per_iter: f64,
    /// Preferred comparison metric, higher-is-better: MiB/s, elem/s, or
    /// (lacking a declared throughput) iterations/s.
    throughput: f64,
    unit: &'static str,
}

/// Extract the string value of `"key":"…"` from a JSON object line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    // Bench names never contain escaped quotes (the shim escapes them, but
    // group/function names in this workspace are plain identifiers).
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extract the numeric value of `"key":N` from a JSON object line.
fn json_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn parse_jsonl(text: &str) -> BTreeMap<String, BenchResult> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(bench) = json_str(line, "bench") else {
            continue;
        };
        let Some(ns) = json_num(line, "ns_per_iter") else {
            continue;
        };
        let (throughput, unit) = if let Some(mibps) = json_num(line, "mib_per_s") {
            (mibps, "MiB/s")
        } else if let Some(eps) = json_num(line, "elem_per_s") {
            (eps, "elem/s")
        } else {
            (1e9 / ns.max(1e-9), "iter/s")
        };
        out.insert(
            bench.to_string(),
            BenchResult {
                ns_per_iter: ns,
                throughput,
                unit,
            },
        );
    }
    out
}

fn is_gated(bench: &str) -> bool {
    GATED_PREFIXES.iter().any(|p| bench.starts_with(p))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut files = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                eprintln!("--threshold needs a numeric value");
                return ExitCode::from(2);
            };
            threshold = v;
        } else {
            files.push(a.clone());
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <current.json> [--threshold 0.25]");
        return ExitCode::from(2);
    };

    let read = |path: &str| -> Option<BTreeMap<String, BenchResult>> {
        match std::fs::read_to_string(path) {
            Ok(text) => Some(parse_jsonl(&text)),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                None
            }
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::from(2);
    };

    println!("bench-compare: {current_path} vs baseline {baseline_path}");
    println!(
        "gate: >{:.0}% regression in {GATED_PREFIXES:?}\n",
        threshold * 100.0
    );
    println!(
        "{:<56} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "baseline", "current", "delta"
    );

    let mut failures = Vec::new();
    for (bench, base) in &baseline {
        let gated = is_gated(bench);
        match current.get(bench) {
            Some(cur) => {
                // Positive delta = faster than baseline.
                let delta = (cur.throughput - base.throughput) / base.throughput;
                let regressed = delta < -threshold;
                let verdict = match (gated, regressed) {
                    (true, true) => "FAIL",
                    (true, false) => "ok (gated)",
                    (false, true) => "regressed (ungated)",
                    (false, false) => "ok",
                };
                println!(
                    "{bench:<56} {:>9.1} {u} {:>9.1} {u} {delta:>+7.1}%  {verdict}",
                    base.throughput,
                    cur.throughput,
                    u = base.unit,
                    delta = delta * 100.0,
                );
                if gated && regressed {
                    failures.push(format!(
                        "{bench}: {:.1} -> {:.1} {} ({:+.1}%)",
                        base.throughput,
                        cur.throughput,
                        base.unit,
                        delta * 100.0
                    ));
                }
            }
            None => {
                let verdict = if gated { "FAIL (missing)" } else { "missing" };
                println!(
                    "{bench:<56} {:>9.1} {u} {:>12} {:>8}  {verdict}",
                    base.throughput,
                    "-",
                    "-",
                    u = base.unit
                );
                if gated {
                    failures.push(format!("{bench}: present in baseline, missing from run"));
                }
            }
        }
    }
    for bench in current.keys() {
        if !baseline.contains_key(bench) {
            println!("{bench:<56} {:>12} (new — no baseline)", "-");
        }
    }

    if failures.is_empty() {
        println!(
            "\nPASS: no gated benchmark regressed more than {:.0}%",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!("\nFAIL: {} gated regression(s):", failures.len());
        for f in &failures {
            println!("  {f}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
{"bench":"chunk_throughput/ingest_64MiB/bulk_scan_zero_copy","ns_per_iter":50000000.0,"bytes_per_iter":67108864,"mib_per_s":1280.0}
{"bench":"db/concurrent_commits/striped/disjoint/2thr","ns_per_iter":400000.0,"elements_per_iter":300,"elem_per_s":750000}
{"bench":"store/compaction/ingest_delete_compact_reread","ns_per_iter":9000000.0}
"#;

    #[test]
    fn parses_all_metric_shapes() {
        let parsed = parse_jsonl(SAMPLE);
        assert_eq!(parsed.len(), 3);
        let ingest = &parsed["chunk_throughput/ingest_64MiB/bulk_scan_zero_copy"];
        assert_eq!(ingest.unit, "MiB/s");
        assert!((ingest.throughput - 1280.0).abs() < 1e-9);
        let commits = &parsed["db/concurrent_commits/striped/disjoint/2thr"];
        assert_eq!(commits.unit, "elem/s");
        assert!((commits.throughput - 750000.0).abs() < 1e-9);
        let compaction = &parsed["store/compaction/ingest_delete_compact_reread"];
        assert_eq!(compaction.unit, "iter/s");
        assert!((compaction.throughput - 1e9 / 9000000.0).abs() < 1e-6);
        assert!((compaction.ns_per_iter - 9e6).abs() < 1e-3);
    }

    #[test]
    fn gating_covers_exactly_the_tracked_groups() {
        assert!(is_gated("chunk_throughput/boundaries_64MiB/bulk_scan"));
        assert!(is_gated(
            "db/concurrent_commits/global_baseline/contended/8thr"
        ));
        assert!(is_gated("db/cluster_put/routed_4servelets_64keys"));
        assert!(is_gated("replication/ship_drain/drain_64keys/1replica"));
        assert!(!is_gated("store/compaction/ingest_delete_compact_reread"));
        assert!(!is_gated("db/write_batch/batch_16keys"));
        assert!(!is_gated("crypto/sha256/4096"));
    }

    #[test]
    fn json_num_handles_scientific_and_trailing_fields() {
        assert_eq!(json_num(r#"{"a":1.5e3,"b":2}"#, "a"), Some(1500.0));
        assert_eq!(json_num(r#"{"a":1.5,"b":2}"#, "b"), Some(2.0));
        assert_eq!(json_num(r#"{"a":1}"#, "missing"), None);
    }
}
