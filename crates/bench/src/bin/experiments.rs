#![forbid(unsafe_code)]
//! Regenerate every figure and table of the paper.
//!
//! ```text
//! experiments [all|fig2|fig3|fig4|fig5|fig6|table1|siri|ablation]… [--quick] [--csv-dir DIR]
//! ```
//!
//! `--quick` shrinks workloads for smoke runs; `--csv-dir` additionally
//! writes machine-readable CSVs for plotting.

use forkbase_bench::experiments::{
    ablation, fig2_structure, fig3_merge, fig4_dedup, fig5_diff, fig6_tamper, siri, table1_systems,
    Ctx,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut csv_dir = None;
    let mut which: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--csv-dir" => {
                csv_dir = it.next().map(std::path::PathBuf::from);
                if csv_dir.is_none() {
                    eprintln!("--csv-dir needs a directory");
                    std::process::exit(2);
                }
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() {
        which.push("all".to_string());
    }
    let ctx = Ctx { quick, csv_dir };

    let run_all = which.iter().any(|w| w == "all");
    let wants = |name: &str| run_all || which.iter().any(|w| w == name);

    println!(
        "ForkBase experiment suite (mode: {})",
        if quick { "quick" } else { "full" }
    );

    if wants("fig2") {
        fig2_structure::run(&ctx);
    }
    if wants("fig3") {
        fig3_merge::run(&ctx);
    }
    if wants("fig4") {
        fig4_dedup::run(&ctx);
    }
    if wants("fig5") {
        fig5_diff::run(&ctx);
    }
    if wants("fig6") {
        fig6_tamper::run(&ctx);
    }
    if wants("table1") {
        table1_systems::run(&ctx);
    }
    if wants("siri") {
        siri::run(&ctx);
    }
    if wants("ablation") {
        ablation::run(&ctx);
    }
    println!("\ndone.");
}
