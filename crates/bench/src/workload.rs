//! Deterministic workload generators.
//!
//! Everything is seeded, so experiment output is reproducible run-to-run
//! and machine-to-machine (modulo timing). The CSV generator mirrors the
//! demo's product datasets and can hit a target byte size — the paper's
//! Fig. 4 dataset is 338.54 KB, and `csv_of_size` gets within a row of
//! any requested size.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for a named experiment stage.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Pseudo-random bytes (for blob workloads).
pub fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut r = rng(seed);
    let mut out = vec![0u8; len];
    r.fill(&mut out[..]);
    out
}

/// The demo-style product CSV: `id,name,category,price,stock,notes`.
///
/// `mutate` replaces one word in one row — the Fig. 4 "single-word
/// difference" scenario.
pub fn product_csv(rows: usize, seed: u64, mutate: Option<usize>) -> String {
    let mut r = rng(seed);
    let mut out = String::with_capacity(rows * 64 + 64);
    out.push_str("id,name,category,price,stock,notes\n");
    for i in 0..rows {
        let name = if Some(i) == mutate {
            format!("product-{i}-RENAMED")
        } else {
            format!("product-{i}")
        };
        let category = format!("cat-{}", r.gen_range(0..24));
        let price = format!("{}.{:02}", r.gen_range(1..500), r.gen_range(0..100u32));
        let stock = r.gen_range(0..1000);
        let notes = format!("batch{} vendor{}", r.gen_range(0..50), r.gen_range(0..9));
        out.push_str(&format!(
            "{i:08},{name},{category},{price},{stock},{notes}\n"
        ));
    }
    out
}

/// Rows needed for `product_csv` to reach ≈ `target_bytes`.
///
/// Row width drifts with the row index (ids and names get longer), so a
/// single linear estimate can miss; refine by regenerating a few times.
pub fn rows_for_csv_size(target_bytes: usize, seed: u64) -> usize {
    let mut rows = 256usize.max(target_bytes / 64);
    for _ in 0..6 {
        let size = product_csv(rows, seed, None).len();
        if size.abs_diff(target_bytes) * 200 < target_bytes {
            break; // within 0.5%
        }
        let per_row = (size as f64 - 36.0) / rows as f64;
        rows = (((target_bytes as f64 - 36.0) / per_row).round() as usize).max(1);
    }
    rows
}

/// Sorted key/value snapshot of `n` entries (map workloads).
pub fn snapshot(n: usize, seed: u64) -> Vec<(Bytes, Bytes)> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| {
            (
                Bytes::from(format!("key-{i:010}")),
                Bytes::from(format!(
                    "value-{i}-{:016x}{:016x}",
                    r.gen::<u64>(),
                    r.gen::<u64>()
                )),
            )
        })
        .collect()
}

/// Apply `d` scattered edits to a snapshot (returns the edited copy and
/// the touched keys). Edits are value rewrites at evenly spread rows.
pub fn edit_snapshot(
    base: &[(Bytes, Bytes)],
    d: usize,
    seed: u64,
) -> (Vec<(Bytes, Bytes)>, Vec<Bytes>) {
    let mut out = base.to_vec();
    let mut keys = Vec::with_capacity(d);
    let mut r = rng(seed);
    let n = base.len().max(1);
    for j in 0..d {
        let idx = if d >= n {
            j % n
        } else {
            (j * n / d + r.gen_range(0..(n / d).max(1))) % n
        };
        out[idx].1 = Bytes::from(format!("edited-{j}-{:016x}", r.gen::<u64>()));
        keys.push(out[idx].0.clone());
    }
    (out, keys)
}

/// A chain of `versions` snapshots where each changes `edits_per_version`
/// rows of its predecessor — the Table I archival workload.
pub fn version_chain(
    n: usize,
    versions: usize,
    edits_per_version: usize,
    seed: u64,
) -> Vec<Vec<(Bytes, Bytes)>> {
    let mut out = Vec::with_capacity(versions);
    let mut current = snapshot(n, seed);
    out.push(current.clone());
    for v in 1..versions {
        let (next, _) = edit_snapshot(&current, edits_per_version, seed ^ (v as u64) << 32);
        current = next;
        out.push(current.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(product_csv(100, 7, None), product_csv(100, 7, None));
        assert_eq!(snapshot(100, 7), snapshot(100, 7));
        assert_eq!(random_bytes(1000, 7), random_bytes(1000, 7));
        assert_ne!(snapshot(100, 7), snapshot(100, 8));
    }

    #[test]
    fn csv_size_targeting() {
        // The paper's 338.54 KB dataset.
        let target = (338.54 * 1024.0) as usize;
        let rows = rows_for_csv_size(target, 42);
        let csv = product_csv(rows, 42, None);
        let err = (csv.len() as f64 - target as f64).abs() / target as f64;
        assert!(
            err < 0.02,
            "size {} vs target {target} ({err:.3})",
            csv.len()
        );
    }

    #[test]
    fn mutate_changes_exactly_one_word() {
        let a = product_csv(1000, 3, None);
        let b = product_csv(1000, 3, Some(500));
        let diff_lines: Vec<_> = a.lines().zip(b.lines()).filter(|(x, y)| x != y).collect();
        assert_eq!(diff_lines.len(), 1);
        assert!(diff_lines[0].1.contains("RENAMED"));
    }

    #[test]
    fn edit_snapshot_touches_d_rows() {
        let base = snapshot(1000, 1);
        let (edited, keys) = edit_snapshot(&base, 10, 2);
        assert_eq!(keys.len(), 10);
        let changed = base
            .iter()
            .zip(edited.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!((9..=10).contains(&changed), "changed = {changed}");
        // Keys unchanged, same order.
        assert!(base.iter().zip(edited.iter()).all(|(a, b)| a.0 == b.0));
    }

    #[test]
    fn version_chain_shape() {
        let chain = version_chain(200, 5, 3, 9);
        assert_eq!(chain.len(), 5);
        for w in chain.windows(2) {
            let changed = w[0].iter().zip(w[1].iter()).filter(|(a, b)| a != b).count();
            assert!((1..=3).contains(&changed));
        }
    }
}
