//! Fig. 6 / §II-D, §III-C: versioning for validation and tamper evidence.
//!
//! Every `Put` stamps a Base32 version uid covering value and history.
//! Under the malicious-store threat model, the client re-validates by
//! recomputing the Merkle root and hash chain. We measure (a) validation
//! latency as history deepens, and (b) detection rate when every chunk in
//! the store is corrupted in turn — the paper's guarantee is 100%.

use bytes::Bytes;
use forkbase::{ForkBase, PutOptions};
use forkbase_postree::{MapEdit, TreeConfig};
use forkbase_store::{FaultMode, FaultyStore, MemStore};

use crate::report::{fmt_duration, timed, Table};
use crate::workload;

use super::Ctx;

/// Run the experiment.
pub fn run(ctx: &Ctx) {
    let rows = ctx.scale(5_000, 1_000);
    let versions = ctx.scale(100, 25);

    // (a) Validation latency vs history depth.
    let db = ForkBase::with_config(MemStore::new(), TreeConfig::default_config());
    let pairs = workload::snapshot(rows, 0xF6);
    let map = db.new_map(pairs.clone()).unwrap();
    db.put("ledger", map, &PutOptions::default()).unwrap();
    let mut checkpoints = Vec::new();
    for v in 1..versions {
        db.put_map_edits(
            "ledger",
            vec![MapEdit::put(
                pairs[v % rows].0.clone(),
                Bytes::from(format!("update-{v}")),
            )],
            &PutOptions::default().message(format!("update {v}")),
        )
        .unwrap();
        if v == versions / 4 || v == versions / 2 || v + 1 == versions {
            checkpoints.push(v + 1);
        }
    }

    let mut table = Table::new(
        format!("Fig. 6a — validation latency ({rows}-row dataset)"),
        &[
            "history depth",
            "head verify",
            "full-chain verify",
            "versions checked",
        ],
    );
    for &depth in &checkpoints {
        // Verify just the head…
        let head = db.head("ledger", "master").unwrap();
        let (_, head_time) = timed(|| db.verify_version(&head).unwrap());
        // …and the whole chain (bounded to `depth` by branching from it).
        let (checked, chain_time) = timed(|| db.verify_branch("ledger", "master").unwrap());
        table.row(&[
            depth.to_string(),
            fmt_duration(head_time),
            fmt_duration(chain_time),
            checked.to_string(),
        ]);
    }
    table.emit(ctx.csv_dir.as_deref(), "fig6_latency");

    // (b) Detection rate under per-chunk corruption.
    let inner = MemStore::new();
    let db = ForkBase::with_config(FaultyStore::new(inner), TreeConfig::default_config());
    let map = db.new_map(workload::snapshot(rows, 0xF6F6)).unwrap();
    let commit = db.put("target", map, &PutOptions::default()).unwrap();

    let mut victims = Vec::new();
    db.store().inner().for_each_chunk(|h, _| victims.push(*h));
    type FaultCtor = fn(usize) -> FaultMode;
    let modes: [(&str, FaultCtor); 3] = [
        ("bit flip", |_| FaultMode::FlipBit { byte: 3 }),
        ("truncate", |_| FaultMode::Truncate(5)),
        ("drop", |_| FaultMode::Drop),
    ];
    let mut table = Table::new(
        format!(
            "Fig. 6b — tamper detection rate ({} chunks × 3 corruption modes)",
            victims.len()
        ),
        &["corruption", "chunks attacked", "detected", "rate"],
    );
    for (name, make) in modes {
        let mut detected = 0usize;
        for (i, v) in victims.iter().enumerate() {
            db.store().inject(*v, make(i));
            if db.verify_version(&commit.uid).is_err() {
                detected += 1;
            }
            db.store().heal_all();
        }
        table.row(&[
            name.to_string(),
            victims.len().to_string(),
            detected.to_string(),
            format!("{:.1}%", 100.0 * detected as f64 / victims.len() as f64),
        ]);
    }
    table.emit(ctx.csv_dir.as_deref(), "fig6_detection");

    // Show a version stamp like the demo UI does.
    let head = db.head("target", "master").unwrap();
    println!("example version stamp (RFC 4648 Base32): {head}");
    println!(
        "shape check: detection is 100% for every corruption mode; verify\n\
              latency is flat for the head and linear in chain length for full audits."
    );
}
