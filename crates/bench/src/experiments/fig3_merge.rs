//! Fig. 3 / §II-B: three-way merge reuses disjointly-modified sub-trees.
//!
//! Two branches edit disjoint regions of a large map; the merge must be
//! built almost entirely from existing pages ("Calculated" vs "Reused" in
//! the figure). We count pages created by the merge and compare wall time
//! against the element-wise merge baseline, sweeping the edit width.

use forkbase_baselines::elementwise_merge;
use forkbase_postree::merge::{merge_maps, MergePolicy};
use forkbase_postree::{MapEdit, PosMap, TreeConfig};
use forkbase_store::{ChunkStore, MemStore};

use crate::report::{fmt_duration, timed, Table};
use crate::workload;

use super::{collect_pages, Ctx};

/// Run the experiment.
pub fn run(ctx: &Ctx) {
    let cfg = TreeConfig::default_config();
    let n = ctx.scale(200_000, 20_000);
    let edit_widths = [10usize, 100, 1000];

    let mut table = Table::new(
        format!("Fig. 3 — three-way merge sub-tree reuse (N = {n})"),
        &[
            "edits/side",
            "merge time",
            "pages created",
            "pages reused",
            "reuse %",
            "element-wise time",
            "speedup",
        ],
    );

    for &w in &edit_widths {
        let store = MemStore::new();
        let base_data = workload::snapshot(n, 0xF3);
        let base = PosMap::build_from_sorted(&store, cfg.node, base_data.iter().cloned()).unwrap();

        // A edits the first w keys, B the last w keys (the figure's
        // disjoint sub-tree scenario).
        let ours = base
            .apply((0..w).map(|i| {
                MapEdit::put(
                    base_data[i].0.clone(),
                    bytes::Bytes::from(format!("ours-{i}")),
                )
            }))
            .unwrap();
        let theirs = base
            .apply((0..w).map(|i| {
                let idx = n - 1 - i;
                MapEdit::put(
                    base_data[idx].0.clone(),
                    bytes::Bytes::from(format!("theirs-{i}")),
                )
            }))
            .unwrap();

        let chunks_before = store.chunk_count();
        let (outcome, merge_time) =
            timed(|| merge_maps(&base, &ours, &theirs, MergePolicy::Fail).unwrap());
        let created = (store.chunk_count() - chunks_before) as u64;
        let merged_pages = collect_pages(&store, &outcome.merged.root());
        let reused = merged_pages.len() as u64 - created.min(merged_pages.len() as u64);
        let reuse_pct = 100.0 * reused as f64 / merged_pages.len().max(1) as f64;

        // Element-wise baseline: materialize all three sides, merge maps
        // entry by entry.
        let (ours_snap, theirs_snap, base_snap) = (
            ours.to_vec().unwrap(),
            theirs.to_vec().unwrap(),
            base.to_vec().unwrap(),
        );
        let (_elem, elem_time) =
            timed(|| elementwise_merge(&base_snap, &ours_snap, &theirs_snap).unwrap());

        table.row(&[
            w.to_string(),
            fmt_duration(merge_time),
            created.to_string(),
            reused.to_string(),
            format!("{reuse_pct:.1}%"),
            fmt_duration(elem_time),
            format!("{:.1}x", elem_time.as_secs_f64() / merge_time.as_secs_f64()),
        ]);
    }
    table.emit(ctx.csv_dir.as_deref(), "fig3_merge");
    println!(
        "shape check: reuse stays >90% and the POS-Tree merge beats the\n\
         element-wise baseline by a growing factor as edits shrink relative to N."
    );
}
