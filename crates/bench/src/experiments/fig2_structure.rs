//! Fig. 2 / §II-A: POS-Tree structure.
//!
//! The paper claims the POS-Tree is "a probabilistically balanced search
//! tree" whose nodes are pattern-split pages. This experiment builds trees
//! across four orders of magnitude and reports height, node counts, page
//! sizes and fanout — the numbers behind the Fig. 2 sketch.

use forkbase_postree::{Node, PosMap, TreeConfig};
use forkbase_store::{ChunkStore, MemStore};

use crate::report::{fmt_bytes, Table};
use crate::workload;

use super::Ctx;

/// Per-tree structural statistics.
struct TreeStats {
    height: u8,
    nodes: u64,
    leaves: u64,
    avg_leaf_entries: f64,
    avg_page_bytes: f64,
    max_page_bytes: u64,
}

fn measure(store: &MemStore, root: forkbase_crypto::Hash) -> TreeStats {
    let mut nodes = 0u64;
    let mut leaves = 0u64;
    let mut leaf_entries = 0u64;
    let mut total_bytes = 0u64;
    let mut max_bytes = 0u64;
    let mut height = 0u8;
    let mut stack = vec![root];
    let mut seen = std::collections::HashSet::new();
    while let Some(h) = stack.pop() {
        if !seen.insert(h) {
            continue;
        }
        let bytes = store.get(&h).unwrap().unwrap();
        total_bytes += bytes.len() as u64;
        max_bytes = max_bytes.max(bytes.len() as u64);
        nodes += 1;
        let node = Node::decode(&bytes).unwrap();
        height = height.max(node.level());
        match node {
            Node::Leaf(entries) => {
                leaves += 1;
                leaf_entries += entries.len() as u64;
            }
            Node::Index { children, .. } => stack.extend(children.iter().map(|c| c.hash)),
        }
    }
    TreeStats {
        height,
        nodes,
        leaves,
        avg_leaf_entries: leaf_entries as f64 / leaves.max(1) as f64,
        avg_page_bytes: total_bytes as f64 / nodes.max(1) as f64,
        max_page_bytes: max_bytes,
    }
}

/// Run the experiment.
pub fn run(ctx: &Ctx) {
    let cfg = TreeConfig::default_config();
    let sizes: Vec<usize> = if ctx.quick {
        vec![1_000, 10_000, 50_000]
    } else {
        vec![1_000, 10_000, 100_000, 1_000_000]
    };

    let mut table = Table::new(
        "Fig. 2 — POS-Tree structure (probabilistic balance)",
        &[
            "entries",
            "height",
            "nodes",
            "leaves",
            "avg entries/leaf",
            "avg page",
            "max page",
            "log_f(N)",
        ],
    );

    for &n in &sizes {
        let store = MemStore::new();
        let data = workload::snapshot(n, 0xF162);
        let map = PosMap::build_from_sorted(&store, cfg.node, data).unwrap();
        let stats = measure(&store, map.root());
        // Expected height if perfectly balanced with observed fanout.
        let fanout =
            (stats.nodes as f64 - 1.0).max(1.0) / (stats.nodes - stats.leaves).max(1) as f64;
        let expected_height = (n as f64).ln() / fanout.max(2.0).ln();
        table.row(&[
            n.to_string(),
            stats.height.to_string(),
            stats.nodes.to_string(),
            stats.leaves.to_string(),
            format!("{:.1}", stats.avg_leaf_entries),
            fmt_bytes(stats.avg_page_bytes as u64),
            fmt_bytes(stats.max_page_bytes),
            format!("{expected_height:.1}"),
        ]);
    }
    table.emit(ctx.csv_dir.as_deref(), "fig2_structure");
    println!(
        "shape check: height grows logarithmically; avg page ≈ {} target; \
         no page exceeds the 64 KiB bound.",
        fmt_bytes(1 << cfg.node.pattern_bits)
    );
}
