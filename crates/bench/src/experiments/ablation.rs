//! Ablation: the page-size knob (§II-A's `q` parameter).
//!
//! Every headline number trades off through expected page size `2^q`:
//! smaller pages dedup finer (Fig. 4 ratio improves) but mean more nodes
//! per tree (more metadata, more hashing, slower scans). This experiment
//! sweeps `q` and reports both sides of the trade, plus the effect of the
//! min-size floor — the design decisions DESIGN.md calls out.

use forkbase_chunk::ChunkerConfig;
use forkbase_postree::diff::diff_maps;
use forkbase_postree::{PosMap, TreeConfig};
use forkbase_store::{ChunkStore, MemStore};

use crate::report::{fmt_bytes, fmt_duration, timed, Table};
use crate::workload;

use super::Ctx;

fn config_for(q: u32) -> TreeConfig {
    let node = ChunkerConfig {
        window: 48,
        pattern_bits: q,
        min_size: (1usize << q) / 8,
        max_size: (1usize << q) * 16,
    };
    TreeConfig { node, data: node }
}

/// Run the experiment.
pub fn run(ctx: &Ctx) {
    let n = ctx.scale(100_000, 20_000);
    let qs = [8u32, 10, 12, 14];

    let mut table = Table::new(
        format!("Ablation — page size 2^q vs dedup and speed (N = {n})"),
        &[
            "q (avg page)",
            "pages",
            "build time",
            "1-edit delta",
            "delta %",
            "1-edit diff",
            "full scan",
        ],
    );

    for &q in &qs {
        let cfg = config_for(q);
        let store = MemStore::new();
        let data = workload::snapshot(n, 0xAB1A);
        let (base, build_time) =
            timed(|| PosMap::build_from_sorted(&store, cfg.node, data.iter().cloned()).unwrap());
        let pages = store.chunk_count();
        let before = store.stored_bytes();

        // One scattered edit: new storage = the page-size cost of an edit.
        let edited = base
            .insert(data[n / 2].0.clone(), bytes::Bytes::from_static(b"edited"))
            .unwrap();
        let delta = store.stored_bytes() - before;

        let (_, diff_time) = timed(|| diff_maps(&store, base.tree(), edited.tree()).unwrap());
        let (_, scan_time) = timed(|| {
            let mut total = 0usize;
            for e in base.iter().unwrap() {
                total += e.unwrap().value.len();
            }
            total
        });

        table.row(&[
            format!("{q} ({})", fmt_bytes(1 << q)),
            pages.to_string(),
            fmt_duration(build_time),
            fmt_bytes(delta),
            format!("{:.3}%", 100.0 * delta as f64 / before as f64),
            fmt_duration(diff_time),
            fmt_duration(scan_time),
        ]);
    }
    table.emit(ctx.csv_dir.as_deref(), "ablation_pagesize");
    println!(
        "shape check: smaller pages shrink the per-edit delta (finer dedup)\n\
         but multiply page count and hashing work — Fig. 4's +0.04 KB needs\n\
         small q; Fig. 5's diff latency prefers large q. 2^12 is the paper's\n\
         sweet spot for mixed workloads."
    );

    // Second ablation: the window size of the rolling hash.
    let mut table = Table::new(
        format!("Ablation — rolling-hash window (N = {n}, q = 12)"),
        &["window", "pages", "resync delta after 1 edit"],
    );
    for window in [16usize, 48, 128] {
        let node = ChunkerConfig {
            window,
            pattern_bits: 12,
            min_size: 512,
            max_size: 64 * 1024,
        };
        let store = MemStore::new();
        let data = workload::snapshot(n, 0xAB1B);
        let base = PosMap::build_from_sorted(&store, node, data.iter().cloned()).unwrap();
        let before = store.stored_bytes();
        let _e = base
            .insert(data[n / 3].0.clone(), bytes::Bytes::from_static(b"w"))
            .unwrap();
        let delta = store.stored_bytes() - before;
        table.row(&[
            window.to_string(),
            store.chunk_count().to_string(),
            fmt_bytes(delta),
        ]);
    }
    table.emit(ctx.csv_dir.as_deref(), "ablation_window");
    println!(
        "shape check: the window size barely moves the numbers — boundary\n\
         decisions depend on pattern statistics, not window width, which is\n\
         why the paper fixes it and exposes only q."
    );
}
