//! Table I: comparison with related data versioning systems.
//!
//! The paper's table is qualitative; we make it quantitative by running
//! every system's storage strategy over the same archival workload — a
//! table evolving through V versions with a fraction of rows edited per
//! version — and reporting total physical storage. The qualitative
//! feature matrix is printed alongside for completeness.

use forkbase_baselines::{
    snapshot_bytes, CopyStore, DeltaStore, GitStore, TupleStore, VersionedStore,
};

use crate::adapter::ForkBaseStore;
use crate::report::{fmt_bytes, Table};
use crate::workload;

use super::Ctx;

/// Run the experiment.
pub fn run(ctx: &Ctx) {
    // Qualitative matrix straight from the paper.
    let mut matrix = Table::new(
        "Table I — qualitative comparison (from the paper)",
        &[
            "system",
            "data model",
            "dedup",
            "tamper evidence",
            "branching",
        ],
    );
    for row in [
        [
            "ForkBase",
            "structured/unstructured, immutable",
            "page level",
            "Merkle DAG root hash",
            "Git-like",
        ],
        [
            "DataHub & Decibel",
            "structured (table), mutable",
            "table oriented",
            "none",
            "ad-hoc",
        ],
        [
            "OrpheusDB",
            "structured (table), mutable",
            "table oriented",
            "none",
            "ad-hoc",
        ],
        [
            "MusaeusDB",
            "structured (table), mutable",
            "table oriented",
            "none",
            "none",
        ],
        [
            "RStore",
            "unstructured, mutable KV",
            "none",
            "none",
            "ad-hoc",
        ],
    ] {
        matrix.row(&row.map(String::from));
    }
    matrix.emit(ctx.csv_dir.as_deref(), "table1_matrix");

    // Quantitative storage comparison.
    let n = ctx.scale(20_000, 4_000);
    let versions = ctx.scale(20, 8);
    let edit_fractions = [0.0001f64, 0.001, 0.01, 0.10];

    let mut table = Table::new(
        format!("Table I (quantitative) — storage after {versions} versions of an {n}-row table"),
        &[
            "edits/version",
            "logical",
            "ForkBase",
            "git(object)",
            "tuple+rlist",
            "tuple+delta",
            "copy",
            "FB vs copy",
        ],
    );

    for &frac in &edit_fractions {
        let edits = ((n as f64 * frac).round() as usize).max(1);
        let chain = workload::version_chain(n, versions, edits, 0x7AB1 ^ edits as u64);
        let logical: u64 = chain.iter().map(snapshot_bytes).sum();

        let mut forkbase = ForkBaseStore::new();
        let mut git = GitStore::new();
        let mut rlist = TupleStore::new();
        let mut delta = DeltaStore::new();
        let mut copy = CopyStore::new();
        for snap in &chain {
            forkbase.commit(snap);
            git.commit(snap);
            rlist.commit(snap);
            delta.commit(snap);
            copy.commit(snap);
        }

        table.row(&[
            format!("{edits} ({:.2}%)", frac * 100.0),
            fmt_bytes(logical),
            fmt_bytes(forkbase.storage_bytes()),
            fmt_bytes(git.storage_bytes()),
            fmt_bytes(rlist.storage_bytes()),
            fmt_bytes(delta.storage_bytes()),
            fmt_bytes(copy.storage_bytes()),
            format!(
                "{:.1}x smaller",
                copy.storage_bytes() as f64 / forkbase.storage_bytes() as f64
            ),
        ]);
    }
    table.emit(ctx.csv_dir.as_deref(), "table1_storage");
    println!(
        "shape check: copy ≈ git ≈ logical (no cross-version sharing for\n\
         scattered edits); tuple stores shed value redundancy but pay per-\n\
         version id lists; ForkBase tracks the tuple+delta floor while ALSO\n\
         giving O(log N) random-version access and tamper evidence —\n\
         the structural advantages the qualitative matrix records."
    );
}
