//! SIRI Definition 1: the three properties, measured.
//!
//! 1. **Structurally invariant** — every construction path for the same
//!    record set must produce the identical page set.
//! 2. **Recursively identical** — adding one record must change far fewer
//!    pages than it shares with the original (`|P(I₂)−P(I₁)| ≪
//!    |P(I₂)∩P(I₁)|`).
//! 3. **Universally reusable** — a larger instance reuses the pages of a
//!    smaller one it subsumes.

use forkbase_postree::{MapEdit, PosMap, TreeConfig};
use forkbase_store::MemStore;
use rand::seq::SliceRandom;

use crate::report::Table;
use crate::workload;

use super::{collect_pages, Ctx};

/// Run the experiment.
pub fn run(ctx: &Ctx) {
    let cfg = TreeConfig::default_config();
    let n = ctx.scale(50_000, 10_000);

    // Property 1: structural invariance over construction order.
    let store = MemStore::new();
    let data = workload::snapshot(n, 0x5171);
    let bulk = PosMap::build_from_sorted(&store, cfg.node, data.iter().cloned()).unwrap();
    let mut roots = vec![bulk.root()];
    let mut r = workload::rng(0x5172);
    for trial in 0..3 {
        let mut shuffled = data.clone();
        shuffled.shuffle(&mut r);
        // Insert in random order via batches of varying size.
        let mut m = PosMap::empty(&store, cfg.node).unwrap();
        let batch = 1usize << (8 + trial * 2);
        for chunk in shuffled.chunks(batch) {
            m = m
                .apply(
                    chunk
                        .iter()
                        .map(|(k, v)| MapEdit::put(k.clone(), v.clone())),
                )
                .unwrap();
        }
        roots.push(m.root());
    }
    roots.dedup();
    let mut table = Table::new(
        format!("SIRI property 1 — structural invariance (N = {n})"),
        &["construction paths", "distinct roots", "invariant"],
    );
    table.row(&[
        "bulk + 3 shuffled batch orders".into(),
        roots.len().to_string(),
        (roots.len() == 1).to_string(),
    ]);
    table.emit(ctx.csv_dir.as_deref(), "siri_p1");

    // Property 2: recursively identical.
    let pages_before = collect_pages(&store, &bulk.root());
    let mut table = Table::new(
        format!("SIRI property 2 — pages changed by one insert (N = {n})"),
        &["trial", "new pages", "shared pages", "new/shared"],
    );
    for trial in 0..5 {
        let key = bytes::Bytes::from(format!("key-{:010}-new{trial}", trial * n / 5));
        let updated = bulk
            .insert(key, bytes::Bytes::from_static(b"inserted"))
            .unwrap();
        let pages_after = collect_pages(&store, &updated.root());
        let new = pages_after.difference(&pages_before).count();
        let shared = pages_after.intersection(&pages_before).count();
        table.row(&[
            trial.to_string(),
            new.to_string(),
            shared.to_string(),
            format!("{:.4}", new as f64 / shared.max(1) as f64),
        ]);
    }
    table.emit(ctx.csv_dir.as_deref(), "siri_p2");

    // Property 3: universal reuse across instance sizes.
    let mut table = Table::new(
        "SIRI property 3 — page reuse between instances of different cardinality",
        &[
            "small N",
            "large N",
            "small pages",
            "reused by large",
            "reuse %",
        ],
    );
    for &(small_n, large_n) in &[(n / 4, n / 2), (n / 2, n)] {
        let small =
            PosMap::build_from_sorted(&store, cfg.node, data[..small_n].iter().cloned()).unwrap();
        let large =
            PosMap::build_from_sorted(&store, cfg.node, data[..large_n].iter().cloned()).unwrap();
        let p_small = collect_pages(&store, &small.root());
        let p_large = collect_pages(&store, &large.root());
        let reused = p_small.intersection(&p_large).count();
        table.row(&[
            small_n.to_string(),
            large_n.to_string(),
            p_small.len().to_string(),
            reused.to_string(),
            format!(
                "{:.1}%",
                100.0 * reused as f64 / p_small.len().max(1) as f64
            ),
        ]);
    }
    table.emit(ctx.csv_dir.as_deref(), "siri_p3");
    println!(
        "shape check: exactly one distinct root (P1); new/shared ratio near\n\
         zero (P2); the large instance reuses nearly all of the small one's\n\
         pages except the boundary region (P3)."
    );
}
