//! Fig. 5 / §II-B, §III-B: fast differential queries.
//!
//! Claim: `Diff` costs `O(D log N)` node visits by pruning equal-hash
//! sub-trees, versus the element-wise baseline's `O(N)`. We sweep both N
//! (map size) and D (number of differing rows), reporting wall time and
//! the node-visit counter, and fit the visits against `D·log N`.

use forkbase_baselines::elementwise_diff;
use forkbase_postree::diff::diff_maps;
use forkbase_postree::{MapEdit, PosMap, TreeConfig};
use forkbase_store::MemStore;

use crate::report::{fmt_duration, timed, Table};
use crate::workload;

use super::Ctx;

/// Run the experiment.
pub fn run(ctx: &Ctx) {
    let cfg = TreeConfig::default_config();
    let sizes: Vec<usize> = if ctx.quick {
        vec![10_000, 50_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    };
    let ds = [1usize, 10, 100, 1000];

    let mut table = Table::new(
        "Fig. 5 — differential query: POS-Tree diff vs element-wise (O(D log N) vs O(N))",
        &[
            "N",
            "D",
            "postree diff",
            "nodes visited",
            "visits/(D·log2 N)",
            "element-wise",
            "speedup",
        ],
    );

    for &n in &sizes {
        let store = MemStore::new();
        let base_data = workload::snapshot(n, 0xF5);
        let base = PosMap::build_from_sorted(&store, cfg.node, base_data.iter().cloned()).unwrap();
        for &d in &ds {
            if d > n {
                continue;
            }
            let (_, keys) = workload::edit_snapshot(&base_data, d, 0xF5F5 ^ d as u64);
            let edited = base
                .apply(keys.iter().enumerate().map(|(j, k)| {
                    MapEdit::put(k.clone(), bytes::Bytes::from(format!("edited-{j}")))
                }))
                .unwrap();

            let (diff, pos_time) = timed(|| diff_maps(&store, base.tree(), edited.tree()).unwrap());
            assert!(diff.entries.len() <= d, "diff larger than edit set");

            // Element-wise: must materialize both sides from storage, then
            // walk every entry.
            let (count, elem_time) = timed(|| {
                let a = base.to_vec().unwrap();
                let b = edited.to_vec().unwrap();
                elementwise_diff(&a, &b).len()
            });
            assert_eq!(count, diff.entries.len());

            let dlogn = d as f64 * (n as f64).log2();
            table.row(&[
                n.to_string(),
                d.to_string(),
                fmt_duration(pos_time),
                diff.stats.nodes_loaded.to_string(),
                format!("{:.2}", diff.stats.nodes_loaded as f64 / dlogn),
                fmt_duration(elem_time),
                format!("{:.0}x", elem_time.as_secs_f64() / pos_time.as_secs_f64()),
            ]);
        }
    }
    table.emit(ctx.csv_dir.as_deref(), "fig5_diff");
    println!(
        "shape check: visits/(D·log2 N) stays roughly constant (the O(D log N)\n\
         claim); the element-wise baseline degrades with N while POS-Tree diff\n\
         depends on D — the speedup column explodes for small D on large N."
    );
}
