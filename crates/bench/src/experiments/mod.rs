//! One module per paper exhibit. See `DESIGN.md` §5 for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured results.

pub mod ablation;
pub mod fig2_structure;
pub mod fig3_merge;
pub mod fig4_dedup;
pub mod fig5_diff;
pub mod fig6_tamper;
pub mod siri;
pub mod table1_systems;

use std::path::PathBuf;

/// Shared experiment context.
pub struct Ctx {
    /// Reduce workload sizes for smoke runs.
    pub quick: bool,
    /// Where to drop machine-readable CSVs (`None` = print only).
    pub csv_dir: Option<PathBuf>,
}

impl Ctx {
    /// Pick `full` or `quick` depending on the mode.
    pub fn scale(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Collect every page (node/chunk hash) reachable from a map tree —
/// the `P(I)` of SIRI Definition 1.
pub fn collect_pages<S: forkbase_store::ChunkStore>(
    store: &S,
    root: &forkbase_crypto::Hash,
) -> std::collections::HashSet<forkbase_crypto::Hash> {
    let mut pages = std::collections::HashSet::new();
    let mut stack = vec![*root];
    while let Some(h) = stack.pop() {
        if !pages.insert(h) {
            continue;
        }
        let node = forkbase_postree::Node::load(store, &h).expect("tree readable");
        if let forkbase_postree::Node::Index { children, .. } = node {
            stack.extend(children.iter().map(|c| c.hash));
        }
    }
    pages
}
