//! Fig. 4 / §III-A: fine-grained data deduplication.
//!
//! The demo loads a 338.54 KB CSV as Dataset-1, then a second CSV that
//! differs by a single word as Dataset-2; the UI reports "+338.54 KB"
//! then "+0.04 KB". We replay the exact scenario at three granularities —
//! row-map storage with default (4 KiB) and fine (512 B) pages, and raw
//! blob storage — and also archive a 100-version chain to show growth
//! over deep histories.

use forkbase::{ForkBase, PutOptions};
use forkbase_chunk::ChunkerConfig;
use forkbase_postree::TreeConfig;
use forkbase_store::{ChunkStore, MemStore};
use forkbase_table::TableStore;

use crate::report::{fmt_bytes, Table};
use crate::workload;

use super::Ctx;

/// Fine-page configuration (~512 B pages) for the granularity ablation.
fn fine_config() -> TreeConfig {
    TreeConfig {
        node: ChunkerConfig {
            window: 48,
            pattern_bits: 9,
            min_size: 64,
            max_size: 16 * 1024,
        },
        data: ChunkerConfig {
            window: 48,
            pattern_bits: 9,
            min_size: 64,
            max_size: 16 * 1024,
        },
    }
}

/// One scenario: load two near-identical CSVs, report the storage deltas.
fn scenario(name: &str, cfg: TreeConfig, csv1: &str, csv2: &str, as_blob: bool, table: &mut Table) {
    let db = ForkBase::with_config(MemStore::new(), cfg);
    let (first, second) = if as_blob {
        let v1 = db.new_blob(csv1.as_bytes()).unwrap();
        db.put("dataset-1", v1, &PutOptions::default()).unwrap();
        let first = db.store().stored_bytes();
        let v2 = db.new_blob(csv2.as_bytes()).unwrap();
        db.put("dataset-2", v2, &PutOptions::default()).unwrap();
        (first, db.store().stored_bytes() - first)
    } else {
        let tables = TableStore::new(&db);
        tables
            .load_csv("dataset-1", csv1, 0, &PutOptions::default())
            .unwrap();
        let first = db.store().stored_bytes();
        tables
            .load_csv("dataset-2", csv2, 0, &PutOptions::default())
            .unwrap();
        (first, db.store().stored_bytes() - first)
    };
    table.row(&[
        name.to_string(),
        fmt_bytes(csv1.len() as u64),
        fmt_bytes(first),
        fmt_bytes(second),
        format!("{:.3}%", 100.0 * second as f64 / first as f64),
    ]);
}

/// Run the experiment.
pub fn run(ctx: &Ctx) {
    // The paper's exact dataset size.
    let target = (338.54 * 1024.0) as usize;
    let rows = workload::rows_for_csv_size(target, 0xF4);
    let csv1 = workload::product_csv(rows, 0xF4, None);
    let csv2 = workload::product_csv(rows, 0xF4, Some(rows / 2));

    let mut table = Table::new(
        "Fig. 4 — loading two CSVs that differ by one word (paper: +338.54 KB, then +0.04 KB)",
        &[
            "storage granularity",
            "CSV size",
            "first load",
            "second load",
            "second/first",
        ],
    );
    scenario(
        "rows, 4 KiB pages",
        TreeConfig::default_config(),
        &csv1,
        &csv2,
        false,
        &mut table,
    );
    scenario(
        "rows, 512 B pages",
        fine_config(),
        &csv1,
        &csv2,
        false,
        &mut table,
    );
    scenario(
        "blob, 4 KiB chunks",
        TreeConfig::default_config(),
        &csv1,
        &csv2,
        true,
        &mut table,
    );
    scenario(
        "blob, 512 B chunks",
        fine_config(),
        &csv1,
        &csv2,
        true,
        &mut table,
    );
    table.emit(ctx.csv_dir.as_deref(), "fig4_dedup");
    println!(
        "shape check: the second load costs a tiny fraction of the first.\n\
         The paper's +0.04 KB corresponds to the finest granularity; the\n\
         ratio tracks page size, which is the tunable trade-off of §II-A."
    );

    // Deep-history archive: V versions, each editing one row.
    let versions = ctx.scale(100, 20);
    let mut table = Table::new(
        format!("Fig. 4b — archiving {versions} versions (1-row edit each)"),
        &["versions", "logical bytes", "stored bytes", "dedup ratio"],
    );
    let db = ForkBase::with_config(MemStore::new(), TreeConfig::default_config());
    let tables = TableStore::new(&db);
    tables
        .load_csv("archive", &csv1, 0, &PutOptions::default())
        .unwrap();
    let mut logical = csv1.len() as u64;
    for v in 1..versions {
        let edited = workload::product_csv(rows, 0xF4, Some(v % rows));
        logical += edited.len() as u64;
        tables
            .load_csv("archive", &edited, 0, &PutOptions::default())
            .unwrap();
        if v == versions / 4 || v == versions / 2 || v + 1 == versions {
            let stored = db.store().stored_bytes();
            table.row(&[
                (v + 1).to_string(),
                fmt_bytes(logical),
                fmt_bytes(stored),
                format!("{:.1}x", logical as f64 / stored as f64),
            ]);
        }
    }
    table.emit(ctx.csv_dir.as_deref(), "fig4_archive");
}
