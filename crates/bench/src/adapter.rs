//! ForkBase adapter for the baselines' [`VersionedStore`] interface, so the
//! Table I experiment sweeps every system through identical workloads.

use bytes::Bytes;
use forkbase_baselines::{Snapshot, VersionedStore};
use forkbase_postree::{PosMap, TreeConfig, TreeRef};
use forkbase_store::{ChunkStore, MemStore};

/// ForkBase's page-level strategy behind the common benchmark interface:
/// each version is a POS-Tree map; physical cost is the deduplicated
/// chunk store footprint.
pub struct ForkBaseStore {
    store: MemStore,
    cfg: TreeConfig,
    versions: Vec<TreeRef>,
}

impl ForkBaseStore {
    /// New empty store with production chunking.
    pub fn new() -> Self {
        Self::with_config(TreeConfig::default_config())
    }

    /// New empty store with explicit chunking.
    pub fn with_config(cfg: TreeConfig) -> Self {
        ForkBaseStore {
            store: MemStore::new(),
            cfg,
            versions: Vec::new(),
        }
    }

    /// Access the underlying chunk store (for page-count probes).
    pub fn chunk_store(&self) -> &MemStore {
        &self.store
    }
}

impl Default for ForkBaseStore {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionedStore for ForkBaseStore {
    fn name(&self) -> &'static str {
        "ForkBase (page-level dedup)"
    }

    fn commit(&mut self, snapshot: &Snapshot) -> u64 {
        let map = PosMap::build_from_sorted(&self.store, self.cfg.node, snapshot.iter().cloned())
            .expect("mem store cannot fail");
        self.versions.push(map.tree());
        (self.versions.len() - 1) as u64
    }

    fn storage_bytes(&self) -> u64 {
        // Chunk payloads plus a 40-byte ref per version.
        self.store.stored_bytes() + 40 * self.versions.len() as u64
    }

    fn get_version(&self, version: u64) -> Option<Snapshot> {
        let tree = *self.versions.get(version as usize)?;
        let map = PosMap::open(&self.store, self.cfg.node, tree);
        let mut out: Snapshot = Vec::with_capacity(tree.count as usize);
        for item in map.iter().ok()? {
            let e = item.ok()?;
            out.push((e.key, e.value));
        }
        Some(out)
    }

    fn version_count(&self) -> u64 {
        self.versions.len() as u64
    }
}

/// Convenience: commit a snapshot built from raw pairs.
pub fn to_snapshot(pairs: &[(Bytes, Bytes)]) -> Snapshot {
    pairs.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn conformance_with_baseline_interface() {
        let mut s = ForkBaseStore::with_config(TreeConfig::test_config());
        let s1 = workload::snapshot(500, 1);
        let (s2, _) = workload::edit_snapshot(&s1, 5, 2);
        let v1 = s.commit(&s1);
        let v2 = s.commit(&s2);
        assert_eq!(s.get_version(v1).as_deref(), Some(&s1[..]));
        assert_eq!(s.get_version(v2).as_deref(), Some(&s2[..]));
        assert_eq!(s.get_version(99), None);
        assert_eq!(s.version_count(), 2);
    }

    #[test]
    fn near_identical_versions_cost_little() {
        let mut s = ForkBaseStore::with_config(TreeConfig::test_config());
        let base = workload::snapshot(2000, 3);
        s.commit(&base);
        let one = s.storage_bytes();
        for i in 0..9 {
            let (v, _) = workload::edit_snapshot(&base, 2, 100 + i);
            s.commit(&v);
        }
        let ten = s.storage_bytes();
        assert!(
            ten < one * 2,
            "page-level dedup failed: {one} -> {ten} over 10 versions"
        );
    }
}
