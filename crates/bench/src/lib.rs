#![forbid(unsafe_code)]
//! Benchmark and experiment harness for the ForkBase reproduction.
//!
//! Every figure and table of the paper's demonstration maps to a module
//! under [`experiments`]; the `experiments` binary regenerates them all.
//! Deterministic workload generation lives in [`workload`]; the ForkBase
//! adapter implementing the baselines' [`forkbase_baselines::VersionedStore`]
//! interface lives in [`adapter`].

pub mod adapter;
pub mod experiments;
pub mod report;
pub mod workload;
