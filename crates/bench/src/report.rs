//! Plain-text table rendering for experiment output.
//!
//! The `experiments` binary prints the same rows/series the paper's
//! exhibits report; these helpers keep the formatting consistent and
//! also emit machine-readable CSV next to the human tables.

use std::fmt::Write as _;

/// A simple aligned-column table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let mut line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, c) in row.iter().enumerate() {
                let _ = write!(line, "{:<w$}  ", c, w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Render as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Print the table and, if `csv_dir` is set, write `<name>.csv` there.
    pub fn emit(&self, csv_dir: Option<&std::path::Path>, name: &str) {
        println!("{}", self.render());
        if let Some(dir) = csv_dir {
            let _ = std::fs::create_dir_all(dir);
            let _ = std::fs::write(dir.join(format!("{name}.csv")), self.to_csv());
        }
    }
}

/// Format bytes with KB/MB units, matching the paper's "338.54 KB" style.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1024.0 * 1024.0 {
        format!("{:.2} MB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.2} KB", b / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} µs")
    }
}

/// Time a closure, returning `(result, duration)`.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let mut t = Table::new("Demo", &["col_a", "b"]);
        t.row(&["1".into(), "long value".into()]);
        t.row(&["22".into(), "x".into()]);
        let text = t.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("col_a"));
        assert!(text.contains("long value"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "col_a,b");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(346_664), "338.54 KB");
        assert_eq!(fmt_bytes(2 * 1024 * 1024), "2.00 MB");
    }

    #[test]
    fn duration_formatting() {
        assert!(fmt_duration(std::time::Duration::from_micros(50)).contains("µs"));
        assert!(fmt_duration(std::time::Duration::from_millis(5)).contains("ms"));
        assert!(fmt_duration(std::time::Duration::from_secs(2)).contains("s"));
    }
}
