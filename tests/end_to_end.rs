//! Workspace-level integration tests: end-to-end flows spanning every
//! crate (chunker → trees → stores → database → tables), mirroring the
//! paper's demonstration workflow (§III) plus durability and scale
//! scenarios the demo implies but cannot show in a UI.

use bytes::Bytes;
use forkbase_suite::core::{ForkBase, PutOptions, VersionSpec};
use forkbase_suite::postree::{MergePolicy, TreeConfig};
use forkbase_suite::store::{ChunkStore, FileStore, MemStore};
use forkbase_suite::table::TableStore;
use forkbase_suite::types::Value;

fn csv(rows: usize, mutate: Option<usize>) -> String {
    let mut out = String::from("id,region,revenue,quarter\n");
    for i in 0..rows {
        let region = if Some(i) == mutate { "MUTATED" } else { "emea" };
        out.push_str(&format!(
            "{i:07},{region},{},{}\n",
            i * 17 % 9999,
            i % 4 + 1
        ));
    }
    out
}

/// The complete demo workflow of §III on one database: load, branch,
/// edit, diff at all scopes, merge, validate — while the storage layer
/// deduplicates underneath.
#[test]
fn paper_demonstration_workflow() {
    let db = ForkBase::new(MemStore::new());
    let tables = TableStore::new(&db);

    // §III-A: load two near-identical datasets; the second is nearly free.
    let csv1 = csv(4000, None);
    let csv2 = csv(4000, Some(2000));
    tables
        .load_csv("dataset-1", &csv1, 0, &PutOptions::default())
        .unwrap();
    let first_load = db.store().stored_bytes();
    tables
        .load_csv("dataset-2", &csv2, 0, &PutOptions::default())
        .unwrap();
    let second_load = db.store().stored_bytes() - first_load;
    assert!(
        (second_load as f64) < first_load as f64 * 0.05,
        "Fig. 4 shape: second load {second_load} of {first_load}"
    );

    // §III-B: branch dataset-1 for VendorX, edit, and diff both scopes.
    db.branch("dataset-1", "master", "VendorX").unwrap();
    tables
        .update_cell(
            "dataset-1",
            "0000123",
            "revenue",
            "0",
            &PutOptions::on_branch("VendorX").author("vendor-x"),
        )
        .unwrap();
    let diff = tables
        .diff(
            "dataset-1",
            &VersionSpec::branch("master"),
            &VersionSpec::branch("VendorX"),
        )
        .unwrap();
    assert_eq!(diff.counts(), (0, 0, 1));
    assert_eq!(diff.changed_cells(), 1);

    // Merge it back.
    db.merge(
        "dataset-1",
        "master",
        "VendorX",
        MergePolicy::Fail,
        &PutOptions::default(),
    )
    .unwrap();
    let row = tables
        .row("dataset-1", &VersionSpec::branch("master"), "0000123")
        .unwrap()
        .unwrap();
    assert_eq!(row[2], "0");

    // §III-C: every version carries a Base32 tamper-evident uid, and the
    // full chain re-validates.
    let head = db.head("dataset-1", "master").unwrap();
    assert!(head.to_base32().len() >= 52);
    let versions = db.verify_branch("dataset-1", "master").unwrap();
    // Master never moved after the load, so the merge fast-forwards:
    // the chain is load → vendor edit (no separate merge node).
    assert_eq!(versions, 2);
}

/// Cross-object dedup: loading the same dataset under different keys and
/// on different branches shares pages across all of them.
#[test]
fn pages_shared_across_keys_and_branches() {
    let db = ForkBase::new(MemStore::new());
    let tables = TableStore::new(&db);
    let text = csv(3000, None);
    tables
        .load_csv("a", &text, 0, &PutOptions::default())
        .unwrap();
    let after_a = db.store().stored_bytes();
    tables
        .load_csv("b", &text, 0, &PutOptions::default())
        .unwrap();
    let delta_b = db.store().stored_bytes() - after_a;
    // Key "b" shares every page of the map; only its FNode is new.
    assert!(delta_b < 500, "cross-key sharing failed: {delta_b}");
}

/// Full durability loop: commit on a FileStore-backed database, reopen
/// the store from disk, restore refs, and verify everything.
#[test]
fn durable_database_survives_restart() {
    let dir = std::env::temp_dir().join(format!("fkb-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let refs_text;
    let head_before;
    {
        let db = ForkBase::new(FileStore::open(&dir).unwrap());
        let tables = TableStore::new(&db);
        tables
            .load_csv("sales", &csv(1000, None), 0, &PutOptions::default())
            .unwrap();
        db.branch("sales", "master", "audit").unwrap();
        tables
            .update_cell("sales", "0000001", "revenue", "42", &PutOptions::default())
            .unwrap();
        head_before = db.head("sales", "master").unwrap();
        refs_text = db.dump_refs();
        db.store().sync().unwrap();
    }

    // Restart: new process view over the same directory.
    let db = ForkBase::new(FileStore::open(&dir).unwrap());
    db.load_refs(&refs_text).unwrap();
    assert_eq!(db.head("sales", "master").unwrap(), head_before);
    assert_eq!(db.list_branches("sales").unwrap().len(), 2);
    // Everything re-validates after the round trip through disk.
    assert_eq!(db.verify_branch("sales", "master").unwrap(), 2);
    let tables = TableStore::new(&db);
    let row = tables
        .row("sales", &VersionSpec::branch("master"), "0000001")
        .unwrap()
        .unwrap();
    assert_eq!(row[2], "42");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Structural invariance end-to-end: two databases that arrive at the
/// same logical state by different edit histories agree on every value
/// root (and disagree on uids, which cover history).
#[test]
fn logical_state_determines_value_roots() {
    let db1 = ForkBase::new(MemStore::new());
    let db2 = ForkBase::new(MemStore::new());

    // db1: build the final state directly.
    let final_state: Vec<(Bytes, Bytes)> = (0..500)
        .map(|i| {
            (
                Bytes::from(format!("k{i:04}")),
                Bytes::from(format!("final-{i}")),
            )
        })
        .collect();
    let v1 = db1.new_map(final_state.clone()).unwrap();
    db1.put("obj", v1.clone(), &PutOptions::default()).unwrap();

    // db2: build something else first, then edit into the same state.
    let initial: Vec<(Bytes, Bytes)> = (0..500)
        .map(|i| {
            (
                Bytes::from(format!("k{i:04}")),
                Bytes::from(format!("draft-{i}")),
            )
        })
        .collect();
    let v2 = db2.new_map(initial).unwrap();
    db2.put("obj", v2, &PutOptions::default()).unwrap();
    let edits: Vec<forkbase_suite::postree::MapEdit> = (0..500)
        .map(|i| {
            forkbase_suite::postree::MapEdit::put(
                Bytes::from(format!("k{i:04}")),
                Bytes::from(format!("final-{i}")),
            )
        })
        .collect();
    db2.put_map_edits("obj", edits, &PutOptions::default())
        .unwrap();

    let root1 = db1.get("obj", "master").unwrap().value.tree_ref().unwrap();
    let root2 = db2.get("obj", "master").unwrap().value.tree_ref().unwrap();
    assert_eq!(root1, root2, "same records ⟹ same tree (SIRI)");
    assert_ne!(
        db1.head("obj", "master").unwrap(),
        db2.head("obj", "master").unwrap(),
        "uids still differ: history differs"
    );
}

/// Mixed value types coexist under one key's branches.
#[test]
fn heterogeneous_values_across_branches() {
    let db = ForkBase::with_config(MemStore::new(), TreeConfig::test_config());
    db.put("thing", Value::string("text form"), &PutOptions::default())
        .unwrap();
    db.branch("thing", "master", "as-blob").unwrap();
    let blob = db.new_blob(b"binary form of the thing").unwrap();
    db.put("thing", blob, &PutOptions::on_branch("as-blob"))
        .unwrap();
    db.branch("thing", "master", "as-list").unwrap();
    let list = db
        .new_list(vec![
            Bytes::from_static(b"item1"),
            Bytes::from_static(b"item2"),
        ])
        .unwrap();
    db.put("thing", list, &PutOptions::on_branch("as-list"))
        .unwrap();

    assert_eq!(
        db.get("thing", "master").unwrap().value.value_type(),
        forkbase_suite::types::ValueType::Str
    );
    assert_eq!(
        db.blob_read(&db.get("thing", "as-blob").unwrap().value)
            .unwrap(),
        b"binary form of the thing"
    );
    assert_eq!(
        db.list_elements(&db.get("thing", "as-list").unwrap().value)
            .unwrap()
            .len(),
        2
    );
    // Each branch verifies independently.
    for b in ["master", "as-blob", "as-list"] {
        db.verify_branch("thing", b).unwrap();
    }
}

/// A deep branch tree: fork-of-fork-of-fork, edits at every level, merges
/// cascading back to master.
#[test]
fn deep_fork_tree_merges_cleanly() {
    let db = ForkBase::with_config(MemStore::new(), TreeConfig::test_config());
    let base: Vec<(Bytes, Bytes)> = (0..800)
        .map(|i| (Bytes::from(format!("k{i:04}")), Bytes::from("base")))
        .collect();
    let map = db.new_map(base).unwrap();
    db.put("doc", map, &PutOptions::default()).unwrap();

    // master -> l1 -> l2 -> l3, each editing its own key region.
    let mut parent = "master".to_string();
    for (level, region) in [(1, 100usize), (2, 300), (3, 500)] {
        let child = format!("l{level}");
        db.branch("doc", &parent, &child).unwrap();
        db.put_map_edits(
            "doc",
            (0..10)
                .map(|j| {
                    forkbase_suite::postree::MapEdit::put(
                        Bytes::from(format!("k{:04}", region + j)),
                        Bytes::from(format!("edit-l{level}")),
                    )
                })
                .collect(),
            &PutOptions::on_branch(&child),
        )
        .unwrap();
        parent = child;
    }

    // Merge l3 -> l2 -> l1 -> master.
    db.merge("doc", "l2", "l3", MergePolicy::Fail, &PutOptions::default())
        .unwrap();
    db.merge("doc", "l1", "l2", MergePolicy::Fail, &PutOptions::default())
        .unwrap();
    db.merge(
        "doc",
        "master",
        "l1",
        MergePolicy::Fail,
        &PutOptions::default(),
    )
    .unwrap();

    let head = db.get("doc", "master").unwrap();
    for region in [100usize, 300, 500] {
        let v = db
            .map_get(&head.value, format!("k{region:04}").as_bytes())
            .unwrap()
            .unwrap();
        assert!(v.starts_with(b"edit-l"), "region {region} merged");
    }
    db.verify_branch("doc", "master").unwrap();
}
