//! Docs gate: every relative markdown link in the top-level docs must
//! point at a file that exists, and every `#anchor` must match a heading
//! in the target document. Runs in the CI `docs` job so a renamed file
//! or section breaks the build, not the reader.

use std::path::{Path, PathBuf};

/// The curated doc set the gate covers (repo-root relative). ISSUE.md /
/// PAPER.md / PAPERS.md / SNIPPETS.md are generated driver inputs, not
/// maintained docs, so they are not linted.
const DOCS: &[&str] = &["README.md", "ARCHITECTURE.md", "PROTOCOL.md", "ROADMAP.md"];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extract `[text](target)` link targets from markdown source. A dumb
/// scanner is enough: the docs never put `](` in code spans.
fn link_targets(markdown: &str) -> Vec<String> {
    let bytes = markdown.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = markdown[i..].find("](") {
        let start = i + pos + 2;
        let Some(rel_end) = markdown[start..].find(')') else {
            break;
        };
        out.push(markdown[start..start + rel_end].to_string());
        i = start + rel_end + 1;
    }
    debug_assert!(i <= bytes.len());
    out
}

/// GitHub-style heading slug: lowercase, alphanumerics and existing
/// hyphens/underscores kept, spaces become hyphens, everything else
/// (punctuation, `&`, backticks) dropped.
fn slugify(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| match c {
            ' ' => Some('-'),
            '-' | '_' => Some(c),
            c if c.is_alphanumeric() => Some(c.to_ascii_lowercase()),
            _ => None,
        })
        .collect()
}

fn heading_slugs(markdown: &str) -> Vec<String> {
    let mut in_code_fence = false;
    markdown
        .lines()
        .filter(|line| {
            if line.trim_start().starts_with("```") {
                in_code_fence = !in_code_fence;
            }
            !in_code_fence && line.starts_with('#')
        })
        .map(|line| slugify(line.trim_start_matches('#')))
        .collect()
}

fn check_anchor(doc: &str, target_path: &Path, anchor: &str, errors: &mut Vec<String>) {
    let target_md = match std::fs::read_to_string(target_path) {
        Ok(s) => s,
        Err(e) => {
            errors.push(format!("{doc}: cannot read {target_path:?}: {e}"));
            return;
        }
    };
    if !heading_slugs(&target_md).iter().any(|s| s == anchor) {
        errors.push(format!(
            "{doc}: anchor #{anchor} matches no heading in {target_path:?}"
        ));
    }
}

#[test]
fn doc_links_resolve() {
    let root = repo_root();
    let mut errors = Vec::new();
    for doc in DOCS {
        let path = root.join(doc);
        let markdown =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"));
        for target in link_targets(&markdown) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue; // external: not checkable offline
            }
            let (file_part, anchor) = match target.split_once('#') {
                Some((f, a)) => (f, Some(a)),
                None => (target.as_str(), None),
            };
            // Pure in-page anchor: resolve against the current doc.
            let target_path = if file_part.is_empty() {
                path.clone()
            } else {
                path.parent().unwrap().join(file_part)
            };
            if !target_path.exists() {
                errors.push(format!("{doc}: broken link to {target}"));
                continue;
            }
            if let Some(anchor) = anchor {
                check_anchor(doc, &target_path, anchor, &mut errors);
            }
        }
    }
    assert!(
        errors.is_empty(),
        "broken doc links:\n{}",
        errors.join("\n")
    );
}

/// The docs the gate lints must actually exist and cross-link: README
/// must point readers at the architecture map and the protocol spec.
#[test]
fn readme_links_the_architecture_and_protocol_docs() {
    let readme = std::fs::read_to_string(repo_root().join("README.md")).unwrap();
    let targets = link_targets(&readme);
    for must in ["ARCHITECTURE.md", "PROTOCOL.md"] {
        assert!(
            targets.iter().any(|t| t == must),
            "README.md does not link {must}"
        );
    }
}
