//! Workspace-level property tests: whole-database invariants under
//! randomized operation sequences, spanning the core + table layers.

use bytes::Bytes;
use forkbase_suite::core::{ForkBase, PutOptions, VersionSpec};
use forkbase_suite::postree::{MapEdit, MergePolicy, TreeConfig};
use forkbase_suite::store::MemStore;
use proptest::prelude::*;

fn db() -> ForkBase<MemStore> {
    ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
}

/// One randomized operation against a single key's branch set.
#[derive(Clone, Debug)]
enum Op {
    Put { branch: u8, n_edits: u8 },
    Branch { from: u8, name: u8 },
    Merge { dst: u8, src: u8 },
    Delete { branch: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 1u8..10).prop_map(|(branch, n_edits)| Op::Put { branch, n_edits }),
        (0u8..4, 0u8..4).prop_map(|(from, name)| Op::Branch { from, name }),
        (0u8..4, 0u8..4).prop_map(|(dst, src)| Op::Merge { dst, src }),
        (1u8..4).prop_map(|branch| Op::Delete { branch }),
    ]
}

fn branch_name(i: u8) -> String {
    if i == 0 {
        "master".to_string()
    } else {
        format!("branch-{i}")
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// After ANY sequence of put/branch/merge/delete operations, every
    /// surviving branch fully verifies from its head uid — the database
    /// can never reach a state that fails its own tamper check.
    #[test]
    fn all_reachable_state_always_verifies(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        let db = db();
        // Seed master with a map.
        let base: Vec<(Bytes, Bytes)> = (0..200)
            .map(|i| (Bytes::from(format!("k{i:04}")), Bytes::from("seed")))
            .collect();
        let map = db.new_map(base).unwrap();
        db.put("obj", map, &PutOptions::default()).unwrap();

        let mut commit_counter = 0u32;
        for op in &ops {
            match op {
                Op::Put { branch, n_edits } => {
                    let b = branch_name(*branch);
                    if db.head("obj", &b).is_err() {
                        continue;
                    }
                    commit_counter += 1;
                    let edits: Vec<MapEdit> = (0..*n_edits)
                        .map(|j| MapEdit::put(
                            Bytes::from(format!("k{:04}", (commit_counter * 7 + j as u32) % 300)),
                            Bytes::from(format!("c{commit_counter}-{j}")),
                        ))
                        .collect();
                    db.put_map_edits("obj", edits, &PutOptions::on_branch(b)).unwrap();
                }
                Op::Branch { from, name } => {
                    let from = branch_name(*from);
                    let name = branch_name(*name);
                    if from == name || db.head("obj", &from).is_err() {
                        continue;
                    }
                    let _ = db.branch("obj", &from, &name); // may already exist
                }
                Op::Merge { dst, src } => {
                    let dst = branch_name(*dst);
                    let src = branch_name(*src);
                    if dst == src
                        || db.head("obj", &dst).is_err()
                        || db.head("obj", &src).is_err()
                    {
                        continue;
                    }
                    // Policy Theirs: merges always succeed when possible.
                    let _ = db.merge("obj", &dst, &src, MergePolicy::Theirs,
                                     &PutOptions::default());
                }
                Op::Delete { branch } => {
                    let b = branch_name(*branch);
                    let _ = db.delete_branch("obj", &b);
                }
            }
        }

        // Invariant: every surviving branch verifies completely.
        for info in db.list_branches("obj").unwrap() {
            let checked = db.verify_branch("obj", &info.name).unwrap();
            prop_assert!(checked >= 1);
            // And its history walk terminates without cycles.
            let hist = db.history("obj", &VersionSpec::branch(&info.name)).unwrap();
            prop_assert!(!hist.is_empty());
        }

        // Invariant: GC never breaks reachable state.
        forkbase_suite::core::gc::collect(&db).unwrap();
        for info in db.list_branches("obj").unwrap() {
            db.verify_branch("obj", &info.name).unwrap();
        }
    }

    /// Export/import round trip through CSV preserves datasets exactly.
    #[test]
    fn csv_roundtrip_preserves_datasets(
        rows in proptest::collection::vec(
            (1u32..100_000, 0u32..1000, proptest::string::string_regex("[a-z ]{0,12}").unwrap()),
            1..40,
        )
    ) {
        let db = db();
        let tables = forkbase_suite::table::TableStore::new(&db);
        // Unique ids required: index rows by position.
        let mut csv = String::from("id,qty,note\n");
        for (i, (a, b, note)) in rows.iter().enumerate() {
            csv.push_str(&format!("{i:06}-{a},{b},{note}\n"));
        }
        tables.load_csv("ds", &csv, 0, &PutOptions::default()).unwrap();
        let exported = tables.export_csv("ds", &VersionSpec::branch("master")).unwrap();
        let reparsed = forkbase_suite::table::parse_csv(&exported).unwrap();
        let original = forkbase_suite::table::parse_csv(&csv).unwrap();
        // Row order may differ (key order vs input order); compare as sets.
        let mut a = original[1..].to_vec();
        let mut b = reparsed[1..].to_vec();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        prop_assert_eq!(&original[0], &reparsed[0], "header preserved");
    }
}
