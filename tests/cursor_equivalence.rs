//! Property tests for the PR 4 streaming read paths: on randomized trees,
//! cursor iteration (`Snapshot::map_range`, `Snapshot::list_iter`,
//! `Snapshot::blob_reader`) must be byte-identical to the materializing
//! verbs (`map_entries`/`map_select`, `list_elements`, `blob_read`) and to
//! the ground-truth model the values were built from.

use std::collections::BTreeMap;
use std::io::Read;

use bytes::Bytes;
use forkbase_suite::core::{ForkBase, PutOptions, VersionSpec};
use forkbase_suite::postree::TreeConfig;
use forkbase_suite::store::MemStore;
use proptest::prelude::*;

fn db() -> ForkBase<MemStore> {
    ForkBase::with_config(MemStore::new(), TreeConfig::test_config())
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::num::u8::ANY, 1..12)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::num::u8::ANY, 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Map scans: full iteration and random sub-ranges agree with the
    /// BTreeMap model and with the materializing verbs.
    #[test]
    fn map_cursor_matches_materialized_and_model(
        pairs in proptest::collection::vec((key_strategy(), value_strategy()), 0..300),
        lo in key_strategy(),
        hi in key_strategy(),
    ) {
        let db = db();
        let model: BTreeMap<Bytes, Bytes> = pairs
            .iter()
            .map(|(k, v)| (Bytes::from(k.clone()), Bytes::from(v.clone())))
            .collect();
        let map = db
            .new_map(model.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap();
        db.put("t", map, &PutOptions::default()).unwrap();
        let got = db.get("t", "master").unwrap();
        let snap = db.snapshot("t", &VersionSpec::default()).unwrap();

        // Full scan: cursor == materializing verb == model.
        let streamed: Vec<(Bytes, Bytes)> =
            snap.map_iter().unwrap().map(|e| e.unwrap()).collect();
        let materialized = db.map_entries(&got.value).unwrap();
        let want: Vec<(Bytes, Bytes)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(&streamed, &materialized);
        prop_assert_eq!(&streamed, &want);

        // Random range [lo, hi): cursor == Select == model range.
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let ranged: Vec<(Bytes, Bytes)> = snap
            .map_range(lo.as_slice()..hi.as_slice())
            .unwrap()
            .map(|e| e.unwrap())
            .collect();
        let selected = db
            .map_select(&got.value, Some(&lo), Some(&hi))
            .unwrap();
        let want_range: Vec<(Bytes, Bytes)> = model
            .range(Bytes::from(lo.clone())..Bytes::from(hi.clone()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(&ranged, &selected);
        prop_assert_eq!(&ranged, &want_range);
    }

    /// List scans: streamed elements equal the materializing verb and the
    /// source element sequence.
    #[test]
    fn list_cursor_matches_materialized_and_model(
        elements in proptest::collection::vec(value_strategy(), 0..400),
    ) {
        let db = db();
        let want: Vec<Bytes> = elements.into_iter().map(Bytes::from).collect();
        let list = db.new_list(want.clone()).unwrap();
        db.put("l", list, &PutOptions::default()).unwrap();
        let got = db.get("l", "master").unwrap();
        let snap = db.snapshot("l", &VersionSpec::default()).unwrap();

        let streamed: Vec<Bytes> = snap.list_iter().unwrap().map(|e| e.unwrap()).collect();
        prop_assert_eq!(&streamed, &db.list_elements(&got.value).unwrap());
        prop_assert_eq!(&streamed, &want);
    }

    /// Blob streaming: reading through `blob_reader` with a randomized
    /// buffer size reproduces exactly the bytes `blob_read` materializes
    /// and the original content.
    #[test]
    fn blob_reader_matches_materialized_and_model(
        content in proptest::collection::vec(proptest::num::u8::ANY, 0..60_000),
        buf_size in 1usize..8192,
    ) {
        let db = db();
        db.put_blob("b", Bytes::from(content.clone()), &PutOptions::default())
            .unwrap();
        let got = db.get("b", "master").unwrap();
        let snap = db.snapshot("b", &VersionSpec::default()).unwrap();

        let mut reader = snap.blob_reader().unwrap();
        let mut buf = vec![0u8; buf_size];
        let mut streamed = Vec::new();
        loop {
            let n = reader.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            streamed.extend_from_slice(&buf[..n]);
        }
        prop_assert_eq!(&streamed, &db.blob_read(&got.value).unwrap());
        prop_assert_eq!(&streamed, &content);
    }
}
