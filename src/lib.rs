#![forbid(unsafe_code)]
//! Umbrella crate for the ForkBase reproduction workspace.
//!
//! This crate exists to host workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). The actual functionality lives in
//! the `crates/` members; see the workspace `README.md` for an overview.
//!
//! Re-exports the public facade so examples can `use forkbase_suite::*`.

pub use forkbase as core;
pub use forkbase_baselines as baselines;
pub use forkbase_chunk as chunk;
pub use forkbase_crypto as crypto;
pub use forkbase_postree as postree;
pub use forkbase_store as store;
pub use forkbase_table as table;
pub use forkbase_types as types;
